"""Tests for CVSS v2 vector parsing and base-score computation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.enums import AccessVector
from repro.core.exceptions import CVSSError
from repro.core.models import CVSSVector
from repro.nvd.cvss import (
    cvss_base_score,
    format_cvss_vector,
    parse_cvss_vector,
    severity_label,
)


class TestParse:
    def test_standard_vector(self):
        cvss = parse_cvss_vector("AV:N/AC:L/Au:N/C:P/I:P/A:P")
        assert cvss.access_vector is AccessVector.NETWORK
        assert cvss.access_complexity == "LOW"
        assert cvss.authentication == "NONE"
        # Reference value from the CVSS v2 specification.
        assert cvss.base_score == 7.5

    def test_parenthesised_vector(self):
        cvss = parse_cvss_vector("(AV:L/AC:H/Au:S/C:C/I:C/A:C)")
        assert cvss.access_vector is AccessVector.LOCAL
        assert cvss.base_score == 6.0

    def test_complete_remote_compromise_scores_ten(self):
        cvss = parse_cvss_vector("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert cvss.base_score == 10.0

    def test_no_impact_scores_zero(self):
        cvss = parse_cvss_vector("AV:N/AC:L/Au:N/C:N/I:N/A:N")
        assert cvss.base_score == 0.0

    def test_adjacent_network(self):
        cvss = parse_cvss_vector("AV:A/AC:M/Au:N/C:P/I:N/A:N")
        assert cvss.access_vector is AccessVector.ADJACENT_NETWORK
        assert cvss.is_remote

    def test_temporal_metrics_are_ignored(self):
        cvss = parse_cvss_vector("AV:N/AC:L/Au:N/C:P/I:P/A:P/E:POC/RL:OF/RC:C")
        assert cvss.base_score == 7.5

    @pytest.mark.parametrize(
        "bad",
        ["", "AV:N/AC:L", "AV:X/AC:L/Au:N/C:P/I:P/A:P", "AV:N|AC:L|Au:N", None],
    )
    def test_malformed_vectors_raise(self, bad):
        with pytest.raises(CVSSError):
            parse_cvss_vector(bad)


class TestFormat:
    def test_roundtrip(self):
        vector = "AV:N/AC:M/Au:S/C:C/I:P/A:N"
        assert format_cvss_vector(parse_cvss_vector(vector)) == vector

    def test_format_rejects_unknown_metric_values(self):
        broken = CVSSVector(access_vector=AccessVector.NETWORK, access_complexity="BOGUS")
        with pytest.raises(CVSSError):
            format_cvss_vector(broken)


class TestScore:
    def test_score_bounds(self):
        cvss = CVSSVector(
            access_vector=AccessVector.NETWORK,
            confidentiality_impact="COMPLETE",
            integrity_impact="COMPLETE",
            availability_impact="COMPLETE",
        )
        assert 0.0 <= cvss_base_score(cvss) <= 10.0

    def test_unknown_metric_raises(self):
        broken = CVSSVector(access_vector=AccessVector.NETWORK, authentication="MAYBE")
        with pytest.raises(CVSSError):
            cvss_base_score(broken)

    @pytest.mark.parametrize(
        "score,label",
        [(0.0, "Low"), (3.9, "Low"), (4.0, "Medium"), (6.9, "Medium"), (7.0, "High"), (10.0, "High")],
    )
    def test_severity_labels(self, score, label):
        assert severity_label(score) == label

    def test_severity_rejects_out_of_range(self):
        with pytest.raises(CVSSError):
            severity_label(11.0)


_AV = st.sampled_from(["L", "A", "N"])
_AC = st.sampled_from(["H", "M", "L"])
_AU = st.sampled_from(["M", "S", "N"])
_IMPACT = st.sampled_from(["N", "P", "C"])


@given(av=_AV, ac=_AC, au=_AU, c=_IMPACT, i=_IMPACT, a=_IMPACT)
def test_every_valid_vector_parses_and_roundtrips(av, ac, au, c, i, a):
    vector = f"AV:{av}/AC:{ac}/Au:{au}/C:{c}/I:{i}/A:{a}"
    parsed = parse_cvss_vector(vector)
    assert 0.0 <= parsed.base_score <= 10.0
    assert format_cvss_vector(parsed) == vector
    # Scores increase (weakly) with network accessibility, all else equal.
    if av == "N":
        local = parse_cvss_vector(f"AV:L/AC:{ac}/Au:{au}/C:{c}/I:{i}/A:{a}")
        assert parsed.base_score >= local.base_score
