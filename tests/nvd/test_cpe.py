"""Tests for CPE 2.2 URI parsing, formatting and matching."""

import pytest
from hypothesis import given, strategies as st

from repro.core.enums import CPEPart
from repro.core.exceptions import CPEError
from repro.core.models import CPEName
from repro.nvd.cpe import cpe_matches, format_cpe_uri, operating_system_cpes, parse_cpe_uri


class TestParse:
    def test_full_os_uri(self):
        cpe = parse_cpe_uri("cpe:/o:debian:debian_linux:4.0")
        assert cpe.part is CPEPart.OPERATING_SYSTEM
        assert cpe.vendor == "debian"
        assert cpe.product == "debian_linux"
        assert cpe.version == "4.0"

    def test_uri_without_version(self):
        cpe = parse_cpe_uri("cpe:/o:openbsd:openbsd")
        assert cpe.version == ""

    def test_application_uri(self):
        cpe = parse_cpe_uri("cpe:/a:apache:http_server:2.2.8")
        assert cpe.part is CPEPart.APPLICATION
        assert not cpe.is_operating_system

    def test_hardware_uri(self):
        cpe = parse_cpe_uri("cpe:/h:cisco:router:800")
        assert cpe.part is CPEPart.HARDWARE

    def test_percent_decoding(self):
        cpe = parse_cpe_uri("cpe:/o:microsoft:windows_server%202003:sp1")
        assert cpe.product == "windows_server 2003"

    def test_case_insensitive_prefix(self):
        cpe = parse_cpe_uri("CPE:/o:sun:solaris:10")
        assert cpe.product == "solaris"

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-cpe",
            "cpe:/",
            "cpe:/x:vendor:product",
            "cpe:/o::",  # OS CPE without product
            42,
        ],
    )
    def test_malformed_uris_raise(self, bad):
        with pytest.raises(CPEError):
            parse_cpe_uri(bad)


class TestFormat:
    def test_roundtrip(self):
        uri = "cpe:/o:debian:debian_linux:4.0"
        assert format_cpe_uri(parse_cpe_uri(uri)) == uri

    def test_trailing_empty_fields_dropped(self):
        cpe = CPEName(CPEPart.OPERATING_SYSTEM, "openbsd", "openbsd")
        assert format_cpe_uri(cpe) == "cpe:/o:openbsd:openbsd"


@given(
    vendor=st.text(alphabet="abcdefghij_", min_size=1, max_size=10),
    product=st.text(alphabet="abcdefghij_", min_size=1, max_size=12),
    version=st.text(alphabet="0123456789.", min_size=0, max_size=6),
)
def test_format_parse_roundtrip_property(vendor, product, version):
    original = CPEName(CPEPart.OPERATING_SYSTEM, vendor, product, version)
    parsed = parse_cpe_uri(format_cpe_uri(original))
    assert parsed.vendor == vendor
    assert parsed.product == product
    assert parsed.version == version


class TestMatching:
    def test_filter_operating_systems(self):
        cpes = [
            parse_cpe_uri("cpe:/o:debian:debian_linux:4.0"),
            parse_cpe_uri("cpe:/a:apache:http_server:2.2"),
        ]
        assert len(operating_system_cpes(cpes)) == 1

    def test_versionless_spec_matches_any_version(self):
        spec = parse_cpe_uri("cpe:/o:sun:solaris")
        candidate = parse_cpe_uri("cpe:/o:sun:solaris:10")
        assert cpe_matches(spec, candidate)

    def test_version_prefix_matching(self):
        spec = parse_cpe_uri("cpe:/o:debian:debian_linux:4.0")
        assert cpe_matches(spec, parse_cpe_uri("cpe:/o:debian:debian_linux:4.0.3"))
        assert not cpe_matches(spec, parse_cpe_uri("cpe:/o:debian:debian_linux:5.0"))

    def test_part_and_product_must_match(self):
        spec = parse_cpe_uri("cpe:/o:debian:debian_linux")
        assert not cpe_matches(spec, parse_cpe_uri("cpe:/a:debian:debian_linux"))
        assert not cpe_matches(spec, parse_cpe_uri("cpe:/o:debian:other_product"))
