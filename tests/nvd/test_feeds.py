"""Tests for the XML and JSON feed parsers/writers (including round-trips)."""

import datetime as dt
import io
import textwrap

import pytest

from repro.core.exceptions import FeedParseError
from repro.nvd.feed_parser import RawFeedEntry, feed_statistics, parse_xml_feed, parse_xml_feeds
from repro.nvd.feed_writer import build_feed_tree, write_xml_feed, write_yearly_feeds
from repro.nvd.json_feed import dump_json_feed, entry_from_dict, entry_to_dict, parse_json_feed

SAMPLE_FEED = textwrap.dedent(
    """\
    <?xml version="1.0" encoding="utf-8"?>
    <nvd nvd_xml_version="2.0" pub_date="2010-09-30">
      <entry id="CVE-2008-0001">
        <cve-id>CVE-2008-0001</cve-id>
        <published-datetime>2008-03-02T00:00:00</published-datetime>
        <cvss><base_metrics><vector>AV:N/AC:L/Au:N/C:P/I:P/A:P</vector></base_metrics></cvss>
        <vulnerable-software-list>
          <product>cpe:/o:debian:debian_linux:4.0</product>
          <product>cpe:/o:redhat:enterprise_linux:5.0</product>
          <product>not-a-valid-cpe</product>
        </vulnerable-software-list>
        <summary>The kernel allows remote attackers to cause a denial of service.</summary>
      </entry>
      <entry id="CVE-2008-0002">
        <cve-id>CVE-2008-0002</cve-id>
        <published-datetime>2008-07-15T00:00:00</published-datetime>
        <summary>Unknown vulnerability in the base system.</summary>
        <vulnerable-software-list>
          <product>cpe:/o:openbsd:openbsd:4.2</product>
        </vulnerable-software-list>
      </entry>
    </nvd>
    """
)


def _raw(cve_id="CVE-2005-0100", year=2005, uris=("cpe:/o:debian:debian_linux:3.1",)):
    return RawFeedEntry(
        cve_id=cve_id,
        published=dt.date(year, 5, 20),
        summary="A flaw in the kernel allows attackers to crash the system.",
        cvss_vector="AV:N/AC:L/Au:N/C:P/I:P/A:P",
        cpe_uris=tuple(uris),
    )


class TestXMLParsing:
    def test_parse_sample_feed(self, tmp_path):
        path = tmp_path / "feed.xml"
        path.write_text(SAMPLE_FEED)
        entries = parse_xml_feed(path)
        assert len(entries) == 2
        first = entries[0]
        assert first.cve_id == "CVE-2008-0001"
        assert first.published == dt.date(2008, 3, 2)
        assert first.cvss_vector == "AV:N/AC:L/Au:N/C:P/I:P/A:P"
        assert len(first.cpe_uris) == 2
        assert first.invalid_cpes == ("not-a-valid-cpe",)

    def test_parse_from_file_object(self):
        entries = parse_xml_feed(io.StringIO(SAMPLE_FEED))
        assert len(entries) == 2

    def test_parsed_cpes_skips_invalid(self, tmp_path):
        path = tmp_path / "feed.xml"
        path.write_text(SAMPLE_FEED)
        entry = parse_xml_feed(path)[0]
        assert len(entry.parsed_cpes()) == 2

    def test_parsed_cpes_propagates_parser_bugs(self, monkeypatch):
        # Only CPEError marks a URI as malformed; anything else is a bug in
        # the CPE parser and must surface instead of silently dropping data.
        import repro.nvd.feed_parser as feed_parser

        entry = _raw()
        monkeypatch.setattr(
            feed_parser, "parse_cpe_uri",
            lambda uri: (_ for _ in ()).throw(RuntimeError("parser bug")),
        )
        with pytest.raises(RuntimeError):
            entry.parsed_cpes()

    def test_entry_parsing_propagates_parser_bugs(self, monkeypatch):
        import repro.nvd.feed_parser as feed_parser

        monkeypatch.setattr(
            feed_parser, "parse_cpe_uri",
            lambda uri: (_ for _ in ()).throw(RuntimeError("parser bug")),
        )
        with pytest.raises(RuntimeError):
            parse_xml_feed(io.StringIO(SAMPLE_FEED))

    def test_malformed_xml_raises(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text("<nvd><entry>")
        with pytest.raises(FeedParseError):
            parse_xml_feed(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FeedParseError):
            parse_xml_feed(tmp_path / "missing.xml")

    def test_entry_without_date_raises(self):
        feed = "<nvd><entry id='CVE-1999-0001'><summary>x</summary></entry></nvd>"
        with pytest.raises(FeedParseError):
            parse_xml_feed(io.StringIO(feed))

    def test_duplicate_entries_across_feeds_keep_last(self, tmp_path):
        one = tmp_path / "a.xml"
        two = tmp_path / "b.xml"
        write_xml_feed([_raw(summary_marker := "CVE-2005-0100")], one)  # noqa: F841
        updated = _raw()
        updated.summary = "Updated summary text mentioning the kernel."
        write_xml_feed([updated], two)
        entries = parse_xml_feeds([one, two])
        assert len(entries) == 1
        assert "Updated" in entries[0].summary

    def test_feed_statistics(self):
        entries = parse_xml_feed(io.StringIO(SAMPLE_FEED))
        stats = feed_statistics(entries)
        assert stats["entries"] == 2
        assert stats["years"] == [2008]
        assert stats["invalid_cpes"] == 1


class TestXMLWriting:
    def test_write_and_reparse_roundtrip(self, tmp_path):
        original = [_raw(), _raw("CVE-2006-0200", 2006, ("cpe:/o:openbsd:openbsd",))]
        path = write_xml_feed(original, tmp_path / "out.xml")
        parsed = parse_xml_feed(path)
        assert [e.cve_id for e in parsed] == [e.cve_id for e in original]
        assert parsed[0].cpe_uris == original[0].cpe_uris
        assert parsed[0].published == original[0].published
        assert parsed[0].cvss_vector == original[0].cvss_vector

    def test_build_feed_tree_root_attributes(self):
        tree = build_feed_tree([_raw()], feed_name="2005")
        assert tree.getroot().get("feed") == "2005"
        assert len(list(tree.getroot())) == 1

    def test_yearly_feeds_split_and_absorb_pre_2002(self, tmp_path):
        entries = [
            _raw("CVE-1999-0001", 1999),
            _raw("CVE-2001-0001", 2001),
            _raw("CVE-2005-0001", 2005),
        ]
        paths = write_yearly_feeds(entries, tmp_path)
        names = [p.name for p in paths]
        # Pre-2002 entries are absorbed into the 2002 feed, as with real NVD.
        assert names == ["nvdcve-2.0-2002.xml", "nvdcve-2.0-2005.xml"]
        assert len(parse_xml_feed(paths[0])) == 2


class TestJSONFeed:
    def test_dict_roundtrip(self):
        raw = _raw()
        assert entry_from_dict(entry_to_dict(raw)) == raw

    def test_file_roundtrip(self, tmp_path):
        entries = [_raw(), _raw("CVE-2007-0300", 2007)]
        path = dump_json_feed(entries, tmp_path / "feed.json")
        parsed = parse_json_feed(path)
        assert parsed == entries

    def test_missing_id_raises(self):
        with pytest.raises(FeedParseError):
            entry_from_dict({"publishedDate": "2008-01-01"})

    def test_missing_items_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(FeedParseError):
            parse_json_feed(path)

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FeedParseError):
            parse_json_feed(path)

    def test_xml_and_json_parsers_agree(self, tmp_path):
        entries = [_raw(), _raw("CVE-2009-0004", 2009, ("cpe:/o:sun:solaris:10",))]
        xml_path = write_xml_feed(entries, tmp_path / "feed.xml")
        json_path = dump_json_feed(entries, tmp_path / "feed.json")
        assert parse_xml_feed(xml_path) == parse_json_feed(json_path)
