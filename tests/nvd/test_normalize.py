"""Tests for product/vendor normalisation onto the 11-OS catalogue."""

import pytest

from repro.nvd.cpe import parse_cpe_uri
from repro.nvd.normalize import ProductNormalizer


@pytest.fixture()
def normalizer():
    return ProductNormalizer()


class TestResolve:
    def test_debian_aliases_resolve_to_same_os(self, normalizer):
        a = parse_cpe_uri("cpe:/o:debian:debian_linux:4.0")
        b = parse_cpe_uri("cpe:/o:debian:linux:2.2")
        assert normalizer.resolve(a) == "Debian"
        assert normalizer.resolve(b) == "Debian"

    def test_redhat_enterprise_and_classic_both_map_to_redhat(self, normalizer):
        classic = parse_cpe_uri("cpe:/o:redhat:linux:7.3")
        enterprise = parse_cpe_uri("cpe:/o:redhat:enterprise_linux:5.0")
        assert normalizer.resolve(classic) == "RedHat"
        assert normalizer.resolve(enterprise) == "RedHat"

    def test_case_insensitive(self, normalizer):
        cpe = parse_cpe_uri("cpe:/o:OpenBSD:OpenBSD:4.5")
        assert normalizer.resolve(cpe) == "OpenBSD"

    def test_non_os_cpe_is_ignored(self, normalizer):
        cpe = parse_cpe_uri("cpe:/a:mozilla:firefox:3.0")
        assert normalizer.resolve(cpe) is None
        assert normalizer.report.non_os == 1

    def test_unknown_os_is_recorded(self, normalizer):
        cpe = parse_cpe_uri("cpe:/o:apple:mac_os_x:10.5")
        assert normalizer.resolve(cpe) is None
        assert ("mac_os_x", "apple") in normalizer.report.unmatched_keys

    def test_add_alias(self, normalizer):
        cpe = parse_cpe_uri("cpe:/o:microsoft:windows_2000_server:sp4")
        assert normalizer.resolve(cpe) is None
        normalizer.add_alias(("windows_2000_server", "microsoft"), "Windows2000")
        assert normalizer.resolve(cpe) == "Windows2000"

    def test_add_alias_rejects_unknown_os(self, normalizer):
        with pytest.raises(KeyError):
            normalizer.add_alias(("beos", "be"), "BeOS")

    def test_aliases_for(self, normalizer):
        assert ("debian_linux", "debian") in normalizer.aliases_for("Debian")


class TestResolveMany:
    def test_versions_collected_per_os(self, normalizer):
        cpes = [
            parse_cpe_uri("cpe:/o:debian:debian_linux:3.1"),
            parse_cpe_uri("cpe:/o:debian:debian_linux:4.0"),
            parse_cpe_uri("cpe:/o:redhat:enterprise_linux:5.0"),
        ]
        affected, versions = normalizer.resolve_many(cpes)
        assert affected == {"Debian", "RedHat"}
        assert versions["Debian"] == ("3.1", "4.0")
        assert versions["RedHat"] == ("5.0",)

    def test_versionless_cpe_means_all_versions(self, normalizer):
        cpes = [
            parse_cpe_uri("cpe:/o:debian:debian_linux:4.0"),
            parse_cpe_uri("cpe:/o:debian:debian_linux"),
        ]
        _affected, versions = normalizer.resolve_many(cpes)
        assert versions["Debian"] == ()

    def test_unmatched_products_do_not_pollute_result(self, normalizer):
        cpes = [
            parse_cpe_uri("cpe:/o:apple:mac_os_x:10.5"),
            parse_cpe_uri("cpe:/o:sun:solaris:10"),
        ]
        affected, _versions = normalizer.resolve_many(cpes)
        assert affected == {"Solaris"}

    def test_every_catalog_alias_resolves(self, normalizer):
        from repro.core.constants import OS_CATALOG
        from repro.core.enums import CPEPart
        from repro.core.models import CPEName

        for os_name, os_obj in OS_CATALOG.items():
            for product, vendor in os_obj.cpe_aliases:
                cpe = CPEName(CPEPart.OPERATING_SYSTEM, vendor, product, "")
                assert normalizer.resolve(cpe) == os_name
