"""Test package."""
