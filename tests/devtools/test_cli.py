"""The lint CLI: the self-check gate, exit codes, JSON output, baselines."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.devtools.cli import run_lint

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "violations"


def _lint(argv):
    out = io.StringIO()
    status = run_lint(argv, stdout=out)
    return status, out.getvalue()


class TestSelfCheck:
    def test_the_repository_source_tree_is_clean(self):
        # The tier-1 gate: `repro lint` over the real src/ must pass with
        # the checked-in baseline.  A new violation fails this test before
        # it ever reaches CI.
        status, output = _lint(["--lint-root", str(ROOT)])
        assert status == 0, output

    def test_the_baseline_has_no_stale_entries(self):
        status, output = _lint(["--lint-root", str(ROOT)])
        assert "stale" not in output, output


class TestExitCodes:
    def test_fixture_tree_fails_without_baseline(self):
        status, output = _lint(
            ["--lint-root", str(FIXTURES), "--no-baseline", "src"]
        )
        assert status == 1
        assert "DET001" in output

    def test_missing_path_is_a_usage_error(self):
        status, _ = _lint(["--lint-root", str(FIXTURES), "no/such/dir"])
        assert status == 2

    def test_unknown_select_code_is_a_usage_error(self):
        status, _ = _lint(["--lint-root", str(FIXTURES), "--select", "ZZZ999"])
        assert status == 2

    def test_unparseable_file_fails_the_lint(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        status, output = _lint(["--lint-root", str(tmp_path), str(bad)])
        assert status == 1
        assert "broken.py" in output


class TestJsonOutput:
    def test_json_report_shape(self, golden):
        status, output = _lint(
            ["--lint-root", str(FIXTURES), "--no-baseline", "--format", "json", "src"]
        )
        assert status == 1
        report = json.loads(output)
        assert report["version"] == 1
        assert report["ok"] is False
        assert report["suppressed"] == 1
        assert sum(report["counts"].values()) == len(report["findings"])
        golden("devtools_lint.json", output)

    def test_clean_tree_reports_ok(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        status, output = _lint(
            ["--lint-root", str(tmp_path), "--format", "json", str(clean)]
        )
        assert status == 0
        report = json.loads(output)
        assert report["ok"] is True
        assert report["findings"] == []


class TestBaselineFlow:
    def test_write_baseline_then_lint_is_clean(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "app.py").write_text(
            "def f(x=[]):\n    return x\n", encoding="utf-8"
        )
        baseline = tmp_path / "baseline.json"
        status, output = _lint(
            [
                "--lint-root", str(tmp_path),
                "--baseline", str(baseline),
                "--write-baseline", "src",
            ]
        )
        assert status == 0
        assert "wrote 1 finding(s)" in output
        status, output = _lint(
            ["--lint-root", str(tmp_path), "--baseline", str(baseline), "src"]
        )
        assert status == 0
        assert "1 grandfathered" in output

    def test_fixed_finding_surfaces_as_stale(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        source = tree / "app.py"
        source.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        _lint(
            [
                "--lint-root", str(tmp_path),
                "--baseline", str(baseline),
                "--write-baseline", "src",
            ]
        )
        source.write_text("def f(x=None):\n    return x\n", encoding="utf-8")
        status, output = _lint(
            ["--lint-root", str(tmp_path), "--baseline", str(baseline), "src"]
        )
        assert status == 0
        assert "1 stale baseline entry" in output


class TestListRules:
    def test_every_code_is_listed(self):
        from repro.devtools import all_rules

        status, output = _lint(["--list-rules"])
        assert status == 0
        for rule in all_rules():
            assert rule.code in output
