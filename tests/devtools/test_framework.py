"""Unit tests for the lint framework: name resolution, noqa, baseline."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.devtools.findings import Baseline, Finding, scan_noqa
from repro.devtools.framework import (
    ModuleInfo,
    direct_async_body,
    module_name,
    rule_by_code,
)


def _module(source: str, module: str = "repro.example") -> ModuleInfo:
    from repro.devtools.framework import _import_aliases

    source = textwrap.dedent(source)
    tree = ast.parse(source)
    return ModuleInfo(
        path=None,
        relpath="src/" + module.replace(".", "/") + ".py",
        module=module,
        source=source,
        tree=tree,
        imports=_import_aliases(tree),
    )


def _first_call(info: ModuleInfo) -> ast.Call:
    return next(
        node for node in ast.walk(info.tree) if isinstance(node, ast.Call)
    )


class TestCanonicalNames:
    def test_aliased_import_resolves(self):
        info = _module("import datetime as _dt\n_dt.datetime.now()\n")
        assert info.canonical(_first_call(info).func) == "datetime.datetime.now"

    def test_plain_import_resolves(self):
        info = _module("import datetime\ndatetime.datetime.now()\n")
        assert info.canonical(_first_call(info).func) == "datetime.datetime.now"

    def test_from_import_resolves(self):
        info = _module("from datetime import datetime\ndatetime.now()\n")
        assert info.canonical(_first_call(info).func) == "datetime.datetime.now"

    def test_local_chain_comes_back_verbatim(self):
        info = _module("def f(conn):\n    conn.execute()\n")
        assert info.canonical(_first_call(info).func) == "conn.execute"

    def test_non_chain_is_none(self):
        info = _module("items = [min]\nitems[0]()\n")
        assert info.canonical(_first_call(info).func) is None


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name("src/repro/service/server.py") == "repro.service.server"

    def test_init_maps_to_the_package(self):
        assert module_name("src/repro/devtools/__init__.py") == "repro.devtools"

    def test_unprefixed_path(self):
        assert module_name("tools/gen_api_docs.py") == "tools.gen_api_docs"


class TestNoqa:
    def test_single_code(self):
        assert scan_noqa("x = 1  # repro: noqa[DET001]\n") == {
            1: frozenset({"DET001"})
        }

    def test_multiple_codes_and_rationale(self):
        noqa = scan_noqa(
            "y = 2  # repro: noqa[DET001, GEN301] -- boundary, see docs\n"
        )
        assert noqa == {1: frozenset({"DET001", "GEN301"})}

    def test_plain_noqa_comments_do_not_match(self):
        assert scan_noqa("z = 3  # noqa: BLE001\n") == {}


class TestDirectAsyncBody:
    def test_nested_def_is_excluded(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                async def outer():
                    import time
                    time.sleep(1)
                    def inner():
                        time.sleep(2)
                """
            )
        )
        func = next(
            node for node in ast.walk(tree)
            if isinstance(node, ast.AsyncFunctionDef)
        )
        calls = [
            node for node in direct_async_body(func)
            if isinstance(node, ast.Call)
        ]
        assert len(calls) == 1
        assert calls[0].lineno == 4


class TestBaseline:
    def _finding(self, path="src/a.py", code="GEN302", message="m", line=1):
        return Finding(path=path, line=line, col=0, code=code, message=message)

    def test_split_partitions_and_counts_stale(self):
        baseline = Baseline(
            [
                {"path": "src/a.py", "code": "GEN302", "message": "m"},
                {"path": "src/b.py", "code": "GEN301", "message": "gone"},
            ]
        )
        new, grandfathered, stale = baseline.split(
            [self._finding(), self._finding(path="src/c.py")]
        )
        assert [finding.path for finding in grandfathered] == ["src/a.py"]
        assert [finding.path for finding in new] == ["src/c.py"]
        assert stale == 1

    def test_multiplicity_is_respected(self):
        baseline = Baseline(
            [{"path": "src/a.py", "code": "GEN302", "message": "m"}]
        )
        new, grandfathered, stale = baseline.split(
            [self._finding(line=1), self._finding(line=9)]
        )
        assert len(grandfathered) == 1
        assert len(new) == 1
        assert stale == 0

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()], rationale="why").dump(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0]["rationale"] == "why"

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestRegistry:
    def test_unknown_code_raises_with_known_codes_listed(self):
        with pytest.raises(KeyError, match="DET001"):
            rule_by_code("ZZZ999")

    def test_every_rule_documents_itself(self):
        from repro.devtools import all_rules

        for rule in all_rules():
            assert rule.code and rule.name and rule.family and rule.rationale
