"""Every rule fires exactly where the fixture tree says it should.

The fixture tree under ``fixtures/violations/`` mirrors the ``src/repro``
layout so module-scoped rules resolve real scopes.  Each violating line
carries a trailing ``# expect: CODE[,CODE]`` marker; the tests assert the
lint output matches the markers exactly -- no missing findings, no extras
-- and that the marker set covers every registered rule.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

from repro.devtools import all_rules, lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "violations"

EXPECT_MARKER = re.compile(
    r"#\s*expect:\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


def expected_findings() -> Counter:
    """(relpath, line, code) -> count, read off the fixture markers."""
    expected: Counter = Counter()
    for path in sorted(FIXTURES.rglob("*.py")):
        relpath = path.relative_to(FIXTURES).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for line_number, line in enumerate(lines, start=1):
            match = EXPECT_MARKER.search(line)
            if match is None:
                continue
            for code in match.group("codes").split(","):
                expected[(relpath, line_number, code.strip())] += 1
    return expected


class TestFixtureTree:
    def test_every_marker_fires_and_nothing_else(self):
        result = lint_paths([FIXTURES], FIXTURES)
        actual = Counter(
            (finding.path, finding.line, finding.code)
            for finding in result.findings
        )
        assert actual == expected_findings()
        assert not result.errors

    def test_markers_cover_every_registered_rule(self):
        covered = {code for (_, _, code) in expected_findings()}
        assert covered == {rule.code for rule in all_rules()}

    def test_registry_has_the_advertised_rule_count(self):
        rules = all_rules()
        assert len(rules) == 14
        families = Counter(rule.family for rule in rules)
        assert families == {"DET": 4, "ASY": 4, "ENG": 2, "GEN": 3, "OBS": 1}

    def test_suppression_fixture_is_counted_not_reported(self):
        result = lint_paths(
            [FIXTURES / "src" / "repro" / "service" / "suppressed.py"], FIXTURES
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_select_narrows_to_one_rule(self):
        result = lint_paths([FIXTURES], FIXTURES, select=["DET001"])
        assert {finding.code for finding in result.findings} == {"DET001"}
        assert len(result.findings) == 5
