"""DET004 fixture: unsorted set iteration feeding a digest/merge path."""


def digest_parts(entries, removed):
    parts = []
    for cve_id in set(entries):  # expect: DET004
        parts.append(cve_id)
    fresh = [cve_id for cve_id in set(entries) - set(removed)]  # expect: DET004
    ordered = [cve_id for cve_id in sorted(set(entries))]
    total = sum(1 for cve_id in set(entries))
    return parts, fresh, ordered, total
