"""ENG fixture: a drifted engine pair and lopsided pickle support.

``PackedIndex`` is missing ``breadth()``, drifts the ``count_for`` and
``widest_pair`` signatures, and lacks pickle support; ``Lopsided`` defines
only one half of the pickle pair.
"""


class IncidenceIndex:
    def count_for(self, os_name):
        return 0

    def shared_count(self, os_names):
        return 0

    def shared_entries(self, os_names):
        return ()

    def breadth(self):
        return {}

    def affecting_at_least(self, threshold):
        return 0

    def breadth_histogram(self):
        return {}

    def pair_matrix(self, os_names):
        return {}

    def k_set_totals(self, os_names, k):
        return {}

    def compromising_entries(self, os_names, threshold=2):
        return ()

    def widest_pair(self):
        return None

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.state = state


class PackedIndex:  # expect: ENG201,ENG202
    def count_for(self, os_name, exact):  # expect: ENG201
        return 0

    def shared_count(self, os_names):
        return 0

    def shared_entries(self, os_names):
        return ()

    def affecting_at_least(self, threshold):
        return 0

    def breadth_histogram(self):
        return {}

    def pair_matrix(self, os_names):
        return {}

    def k_set_totals(self, os_names, k):
        return {}

    def compromising_entries(self, os_names, threshold=2):
        return ()

    def widest_pair(self, limit):  # expect: ENG201
        return None


class Lopsided:  # expect: ENG202
    def __getstate__(self):
        return {}
