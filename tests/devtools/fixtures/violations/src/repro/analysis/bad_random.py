"""DET001 fixture: process-global and unseeded RNG calls.

Every line with an ``# expect: CODE`` marker must produce exactly that
finding; unmarked lines must stay clean.  The file is parsed, never
imported.
"""

import random

import numpy
from random import shuffle


def draw(seed):
    noise = random.random()  # expect: DET001
    rng = random.Random()  # expect: DET001
    good = random.Random(seed)
    arr = numpy.random.rand(3)  # expect: DET001
    gen = numpy.random.default_rng()  # expect: DET001
    seeded = numpy.random.default_rng(seed)
    shuffle([1, 2, 3])  # expect: DET001
    return noise, rng, good, arr, gen, seeded
