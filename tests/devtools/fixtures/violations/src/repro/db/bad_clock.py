"""DET002/DET003 fixture: wall-clock and environment reads in a digest path."""

import datetime as _dt
import os
import time
from os import environ


def stamp():
    started = time.time()  # expect: DET002
    now = _dt.datetime.now(_dt.timezone.utc)  # expect: DET002
    today = _dt.date.today()  # expect: DET002
    return started, now, today


def configured():
    explicit = os.environ["REPRO_DB"]  # expect: DET003
    fallback = os.getenv("REPRO_DB")  # expect: DET003
    aliased = environ.get("REPRO_DB")  # expect: DET003
    return explicit, fallback, aliased
