"""GEN fixture: broad excepts, float equality, mutable defaults."""


def coerce(value, cache={}):  # expect: GEN303
    try:
        return float(value)
    except Exception:  # expect: GEN301
        return None


def is_saturated(rate):
    return rate == 1.0  # expect: GEN302


def collect(values, into=[]):  # expect: GEN303
    try:
        into.extend(values)
    except:  # expect: GEN301
        pass
    return into
