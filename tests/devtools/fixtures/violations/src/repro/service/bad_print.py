"""OBS401 fixture: bare prints in library code bypass the structured log."""


def report_progress(count):
    print(f"{count} entries ingested")  # expect: OBS401


def warn(message):
    print("warning:", message)  # expect: OBS401
