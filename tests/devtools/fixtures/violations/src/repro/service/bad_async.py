"""ASY fixture: blocking calls on the coroutine path of the serving layer.

The nested ``def offloaded`` and the awaited ``writer.drain()`` are the
negative cases: code handed to an executor and coroutine APIs must not be
flagged.
"""

import sqlite3
import subprocess
import time

from repro.db.database import VulnerabilityDatabase


async def handle(app, request, writer):
    time.sleep(0.1)  # expect: ASY101
    connection = sqlite3.connect("cache.db")  # expect: ASY102
    payload = open("payload.bin")  # expect: ASY102
    subprocess.run(["ls"])  # expect: ASY103
    database = VulnerabilityDatabase()  # expect: ASY104
    response = app.dispatch(request)  # expect: ASY104
    await writer.drain()

    def offloaded():
        time.sleep(1.0)

    return connection, payload, database, response, offloaded
