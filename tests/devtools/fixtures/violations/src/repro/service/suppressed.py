"""Suppression fixture: an inline noqa silences one ASY101 finding."""

import time


async def tick():
    time.sleep(0.5)  # repro: noqa[ASY101] -- fixture: proves suppressions are counted
