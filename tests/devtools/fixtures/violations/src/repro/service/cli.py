"""Entry-point exemption fixture: ``cli`` modules own the terminal.

No ``# expect`` marker here -- OBS401 must NOT fire on modules whose final
name segment is ``cli`` or ``__main__``; print() is their output channel.
"""


def main():
    print("human-facing terminal output")
