"""Boundary behaviour of :func:`wilson_interval` at 0 and ``n`` successes.

The analytic Wilson bounds at the boundaries are exactly 0 and 1: with zero
successes the score equation's lower root is 0, with all successes the upper
root is 1.  Naive evaluation of the closed form perturbs them by float
rounding for some trial counts (``trials=3`` used to yield a lower bound of
~5.6e-17 and ``trials=10`` an upper bound of 0.9999999999999999), so the
implementation pins the boundary sides exactly.  These tests hold that pin
and the interval's interior sanity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import SimulationError
from repro.itsys.simulation import wilson_interval

#: Trial counts with historically imperfect rounding (3, 10) plus a spread
#: of small, golden-run (8) and large counts.
TRIALS = (1, 2, 3, 5, 8, 10, 25, 100, 1000, 12345)


class TestExactBoundaries:
    @pytest.mark.parametrize("trials", TRIALS)
    def test_zero_successes_lower_bound_is_exactly_zero(self, trials):
        lower, upper = wilson_interval(0, trials)
        assert lower == 0.0
        # The other side stays informative: still room above zero.
        assert 0.0 < upper < 1.0

    @pytest.mark.parametrize("trials", TRIALS)
    def test_all_successes_upper_bound_is_exactly_one(self, trials):
        lower, upper = wilson_interval(trials, trials)
        assert upper == 1.0
        assert 0.0 < lower < 1.0

    def test_boundary_intervals_mirror_each_other(self):
        for trials in TRIALS:
            none_lower, none_upper = wilson_interval(0, trials)
            all_lower, all_upper = wilson_interval(trials, trials)
            # p -> 1 - p symmetry of the score interval.
            assert none_upper == pytest.approx(1.0 - all_lower)
            assert none_lower == pytest.approx(1.0 - all_upper)


class TestInterior:
    @given(
        trials=st.integers(min_value=2, max_value=5000),
        data=st.data(),
    )
    def test_interior_intervals_bracket_the_point_estimate(self, trials, data):
        successes = data.draw(st.integers(min_value=1, max_value=trials - 1))
        lower, upper = wilson_interval(successes, trials)
        p = successes / trials
        assert 0.0 < lower < p < upper < 1.0

    def test_wider_at_fewer_trials(self):
        narrow = wilson_interval(50, 100)
        wide = wilson_interval(5, 10)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])


class TestValidation:
    @pytest.mark.parametrize("successes,trials", [
        (0, 0), (1, 0), (0, -3), (-1, 10), (11, 10),
    ])
    def test_bad_inputs_rejected(self, successes, trials):
        with pytest.raises(SimulationError):
            wilson_interval(successes, trials)
