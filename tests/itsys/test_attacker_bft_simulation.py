"""Tests for the attacker model, the BFT service model and the Monte-Carlo simulation."""

import pytest

from repro.core.enums import AccessVector, ComponentClass, ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.itsys.attacker import Attacker, ExploitEvent
from repro.itsys.bft import BFTService, ServiceState
from repro.itsys.replica import ReplicaGroup
from repro.itsys.simulation import CompromiseSimulation
from tests.conftest import make_entry


@pytest.fixture()
def small_pool():
    return [
        make_entry(cve_id="CVE-2005-0001", oses=("Debian",)),
        make_entry(cve_id="CVE-2005-0002", oses=("Debian", "RedHat")),
        make_entry(cve_id="CVE-2006-0003", oses=("OpenBSD",), year=2006),
        make_entry(cve_id="CVE-2007-0004", oses=("Windows2003",), year=2007),
        make_entry(cve_id="CVE-2008-0005", oses=("Debian",), year=2008,
                   component_class=ComponentClass.APPLICATION),
        make_entry(cve_id="CVE-2008-0006", oses=("Solaris",), year=2008,
                   access=AccessVector.LOCAL),
    ]


class TestAttacker:
    def test_pool_respects_configuration_filter(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.ISOLATED_THIN)
        assert attacker.pool_size == 4  # drops the application and local entries
        fat = Attacker(small_pool, ServerConfiguration.FAT)
        assert fat.pool_size == 6

    def test_empty_pool_rejected(self, small_pool):
        local_only = [e for e in small_pool if not e.is_remote]
        with pytest.raises(SimulationError):
            Attacker(local_only, ServerConfiguration.ISOLATED_THIN)

    def test_pool_for_os(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        assert len(attacker.pool_for_os("Debian")) == 3

    def test_poisson_campaign_times_within_horizon(self, small_pool):
        attacker = Attacker(small_pool, seed=3)
        events = attacker.poisson_campaign(rate=2.0, horizon=20.0)
        assert events, "expected at least one exploit at rate 2 over 20 time units"
        assert all(0 < event.time <= 20.0 for event in events)

    def test_poisson_campaign_is_deterministic_per_seed(self, small_pool):
        a = Attacker(small_pool, seed=11).poisson_campaign(1.0, 10.0)
        b = Attacker(small_pool, seed=11).poisson_campaign(1.0, 10.0)
        assert a == b

    def test_poisson_campaign_targeted(self, small_pool):
        attacker = Attacker(small_pool, seed=5)
        events = attacker.poisson_campaign(2.0, 30.0, targeted_os=["OpenBSD"])
        assert events
        assert all("OpenBSD" in event.affected_os for event in events)

    def test_poisson_campaign_targeting_unknown_os_yields_nothing(self, small_pool):
        attacker = Attacker(small_pool, seed=5)
        assert attacker.poisson_campaign(2.0, 30.0, targeted_os=["Windows2008"]) == []

    def test_poisson_campaign_validates_parameters(self, small_pool):
        attacker = Attacker(small_pool)
        with pytest.raises(SimulationError):
            attacker.poisson_campaign(0.0, 10.0)
        with pytest.raises(SimulationError):
            attacker.poisson_campaign(1.0, 0.0)

    def test_publication_replay_preserves_order(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        events = attacker.publication_replay()
        times = [event.time for event in events]
        assert times == sorted(times)
        assert events[0].time == 0.0

    def test_publication_replay_zero_day_lead(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        normal = attacker.publication_replay()
        early = attacker.publication_replay(zero_day_lead=30.0)
        assert all(e.time <= n.time for e, n in zip(early, normal))

    def test_best_single_exploit(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        cve, coverage = attacker.best_single_exploit(["Debian", "RedHat", "OpenBSD"])
        assert cve == "CVE-2005-0002"
        assert coverage == 2


class TestBFTService:
    def _exploit(self, time, oses, cve="CVE-X"):
        return ExploitEvent(time=time, cve_id=cve, affected_os=frozenset(oses), remote=True)

    def test_execute_request_requires_quorum(self):
        service = BFTService(ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"]))
        record = service.execute_request(1.0)
        assert record.sequence_number == 1
        assert len(record.quorum) == 3

    def test_execute_request_fails_without_quorum(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        group.apply_exploit(1.0, "CVE-1", {"Debian"})
        group.apply_exploit(2.0, "CVE-2", {"OpenBSD"})
        # Two compromised out of four: safety is already gone (f=1).
        with pytest.raises(SimulationError):
            service.execute_request(3.0)

    def test_campaign_homogeneous_group_falls_to_single_exploit(self):
        group = ReplicaGroup.homogeneous("Debian", 4)
        service = BFTService(group)
        timeline = service.run_campaign([self._exploit(1.0, ["Debian"])])
        assert timeline.state is ServiceState.SAFETY_VIOLATED
        assert timeline.safety_violation_time == 1.0
        assert not timeline.survived

    def test_campaign_diverse_group_survives_single_exploit(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign([self._exploit(1.0, ["Debian"])])
        assert timeline.state is ServiceState.DEGRADED
        assert timeline.survived
        assert timeline.safety_violation_time is None

    def test_campaign_common_vulnerability_defeats_diversity(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign([self._exploit(2.0, ["Debian", "OpenBSD"])])
        assert timeline.state is ServiceState.SAFETY_VIOLATED

    def test_campaign_with_requests_builds_log(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign(
            [self._exploit(5.0, ["Debian"])], request_interval=1.0, horizon=10.0
        )
        assert len(timeline.executed) == 10
        sequence_numbers = [record.sequence_number for record in timeline.executed]
        assert sequence_numbers == sorted(sequence_numbers)

    def test_campaign_with_proactive_recovery_restores_liveness(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        exploits = [self._exploit(1.0, ["Debian"], "CVE-1")]
        timeline = service.run_campaign(exploits, recovery_interval=2.0, horizon=6.0)
        assert timeline.state is ServiceState.CORRECT
        assert group.compromised_count() == 0

    def test_liveness_loss_recorded(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        exploits = [
            self._exploit(1.0, ["Debian"], "CVE-1"),
            self._exploit(2.0, ["OpenBSD"], "CVE-2"),
        ]
        timeline = service.run_campaign(exploits)
        assert timeline.liveness_loss_time == 2.0


class TestCompromiseSimulation:
    def test_run_configuration_basic(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=3)
        result = simulation.run_configuration(
            "diverse", ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=20, exploit_rate=1.0, horizon=5.0,
        )
        assert result.runs == 20
        assert 0.0 <= result.safety_violation_probability <= 1.0
        assert 0.0 <= result.mean_compromised <= 4.0
        assert "diverse" in result.summary()

    def test_rejects_non_positive_runs(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries)
        with pytest.raises(SimulationError):
            simulation.run_configuration("x", ("Debian",), runs=0)

    def test_homogeneous_group_is_weaker_than_diverse(self, corpus):
        """The paper's core claim, measured end to end on the corpus."""
        simulation = CompromiseSimulation(corpus.valid_entries, seed=11)
        homogeneous, diverse = simulation.homogeneous_vs_diverse(
            "Debian",
            ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=40,
            exploit_rate=1.0,
            horizon=4.0,
        )
        assert homogeneous.safety_violation_probability >= diverse.safety_violation_probability
        assert homogeneous.mean_compromised >= diverse.mean_compromised

    def test_diversity_gain_non_negative(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=23)
        gain = simulation.diversity_gain(
            "Windows2003",
            ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=30,
            exploit_rate=1.0,
            horizon=4.0,
        )
        assert -0.2 <= gain <= 1.0

    def test_compare_returns_one_result_per_configuration(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=5)
        results = simulation.compare(
            {"homogeneous": ("Debian",) * 4, "set1": ("Debian", "OpenBSD", "Solaris", "Windows2003")},
            runs=10, horizon=3.0,
        )
        assert [result.name for result in results] == ["homogeneous", "set1"]

    def test_single_exploit_analysis_contrast(self, corpus):
        """A single exploit defeats a homogeneous group far more often than Set1."""
        simulation = CompromiseSimulation(corpus.valid_entries)
        homogeneous = simulation.single_exploit_analysis("4xDebian", ("Debian",) * 4)
        diverse = simulation.single_exploit_analysis(
            "Set1", ("Windows2003", "Solaris", "Debian", "OpenBSD")
        )
        assert homogeneous.single_attack_defeat_probability == 1.0
        assert diverse.single_attack_defeat_probability < 0.1
        assert homogeneous.mean_replicas_per_exploit == 4.0
        assert diverse.mean_replicas_per_exploit < 1.5

    def test_single_exploit_analysis_empty_group_os(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries)
        analysis = simulation.single_exploit_analysis(
            "pair", ("OpenSolaris", "Windows2008")
        )
        assert analysis.relevant_exploits > 0
        assert 0.0 <= analysis.single_attack_defeat_probability <= 1.0

    def test_results_are_reproducible(self, corpus):
        a = CompromiseSimulation(corpus.valid_entries, seed=9).run_configuration(
            "x", ("Debian", "OpenBSD", "Solaris", "Windows2003"), runs=10, horizon=3.0
        )
        b = CompromiseSimulation(corpus.valid_entries, seed=9).run_configuration(
            "x", ("Debian", "OpenBSD", "Solaris", "Windows2003"), runs=10, horizon=3.0
        )
        assert a == b
