"""Tests for the attacker model, the BFT service model and the Monte-Carlo simulation."""

import pytest

from repro.core.enums import AccessVector, ComponentClass, ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.itsys.attacker import Attacker, ExploitEvent
from repro.itsys.bft import BFTService, ServiceState
from repro.itsys.replica import ReplicaGroup
from repro.itsys.simulation import CompromiseSimulation
from tests.conftest import make_entry


@pytest.fixture()
def small_pool():
    return [
        make_entry(cve_id="CVE-2005-0001", oses=("Debian",)),
        make_entry(cve_id="CVE-2005-0002", oses=("Debian", "RedHat")),
        make_entry(cve_id="CVE-2006-0003", oses=("OpenBSD",), year=2006),
        make_entry(cve_id="CVE-2007-0004", oses=("Windows2003",), year=2007),
        make_entry(cve_id="CVE-2008-0005", oses=("Debian",), year=2008,
                   component_class=ComponentClass.APPLICATION),
        make_entry(cve_id="CVE-2008-0006", oses=("Solaris",), year=2008,
                   access=AccessVector.LOCAL),
    ]


class TestAttacker:
    def test_pool_respects_configuration_filter(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.ISOLATED_THIN)
        assert attacker.pool_size == 4  # drops the application and local entries
        fat = Attacker(small_pool, ServerConfiguration.FAT)
        assert fat.pool_size == 6

    def test_empty_pool_rejected(self, small_pool):
        local_only = [e for e in small_pool if not e.is_remote]
        with pytest.raises(SimulationError):
            Attacker(local_only, ServerConfiguration.ISOLATED_THIN)

    def test_pool_for_os(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        assert len(attacker.pool_for_os("Debian")) == 3

    def test_poisson_campaign_times_within_horizon(self, small_pool):
        attacker = Attacker(small_pool, seed=3)
        events = attacker.poisson_campaign(rate=2.0, horizon=20.0)
        assert events, "expected at least one exploit at rate 2 over 20 time units"
        assert all(0 < event.time <= 20.0 for event in events)

    def test_poisson_campaign_is_deterministic_per_seed(self, small_pool):
        a = Attacker(small_pool, seed=11).poisson_campaign(1.0, 10.0)
        b = Attacker(small_pool, seed=11).poisson_campaign(1.0, 10.0)
        assert a == b

    def test_poisson_campaign_targeted(self, small_pool):
        attacker = Attacker(small_pool, seed=5)
        events = attacker.poisson_campaign(2.0, 30.0, targeted_os=["OpenBSD"])
        assert events
        assert all("OpenBSD" in event.affected_os for event in events)

    def test_poisson_campaign_targeting_unknown_os_yields_nothing(self, small_pool):
        attacker = Attacker(small_pool, seed=5)
        assert attacker.poisson_campaign(2.0, 30.0, targeted_os=["Windows2008"]) == []

    def test_poisson_campaign_validates_parameters(self, small_pool):
        attacker = Attacker(small_pool)
        with pytest.raises(SimulationError):
            attacker.poisson_campaign(0.0, 10.0)
        with pytest.raises(SimulationError):
            attacker.poisson_campaign(1.0, 0.0)

    def test_publication_replay_preserves_order(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        events = attacker.publication_replay()
        times = [event.time for event in events]
        assert times == sorted(times)
        assert events[0].time == 0.0

    def test_publication_replay_zero_day_lead(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        normal = attacker.publication_replay()
        early = attacker.publication_replay(zero_day_lead=30.0)
        assert all(e.time <= n.time for e, n in zip(early, normal))

    def test_best_single_exploit(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        cve, coverage = attacker.best_single_exploit(["Debian", "RedHat", "OpenBSD"])
        assert cve == "CVE-2005-0002"
        assert coverage == 2

    def test_opening_exploit_is_the_best_single_exploit(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        opening = attacker.opening_exploit(["Debian", "RedHat", "OpenBSD"])
        assert opening is not None
        assert opening.cve_id == "CVE-2005-0002"
        assert opening.time == 0.0

    def test_opening_exploit_none_when_pool_misses_group(self, small_pool):
        attacker = Attacker(small_pool, ServerConfiguration.FAT)
        assert attacker.opening_exploit(["Windows2008"]) is None

    def test_aging_campaign_times_within_horizon(self, small_pool):
        attacker = Attacker(small_pool, seed=3)
        events = attacker.aging_campaign(rate=2.0, shape=1.5, horizon=20.0)
        assert events
        assert all(0 < event.time <= 20.0 for event in events)
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_aging_campaign_is_deterministic_per_seed(self, small_pool):
        a = Attacker(small_pool, seed=11).aging_campaign(1.0, 0.8, 10.0)
        b = Attacker(small_pool, seed=11).aging_campaign(1.0, 0.8, 10.0)
        assert a == b

    def test_aging_campaign_validates_shape(self, small_pool):
        attacker = Attacker(small_pool)
        with pytest.raises(SimulationError):
            attacker.aging_campaign(1.0, 0.0, 10.0)

    def test_aging_shape_below_one_bursts_early(self, small_pool):
        """A sub-exponential shape front-loads arrivals relative to aging."""
        burst = Attacker(small_pool, seed=5).aging_campaign(1.0, 0.5, 30.0)
        aging = Attacker(small_pool, seed=5).aging_campaign(1.0, 2.5, 30.0)
        assert burst and aging
        assert burst[0].time < aging[0].time


class TestBFTService:
    def _exploit(self, time, oses, cve="CVE-X"):
        return ExploitEvent(time=time, cve_id=cve, affected_os=frozenset(oses), remote=True)

    def test_execute_request_requires_quorum(self):
        service = BFTService(ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"]))
        record = service.execute_request(1.0)
        assert record.sequence_number == 1
        assert len(record.quorum) == 3

    def test_execute_request_fails_without_quorum(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        group.apply_exploit(1.0, "CVE-1", {"Debian"})
        group.apply_exploit(2.0, "CVE-2", {"OpenBSD"})
        # Two compromised out of four: safety is already gone (f=1).
        with pytest.raises(SimulationError):
            service.execute_request(3.0)

    def test_campaign_homogeneous_group_falls_to_single_exploit(self):
        group = ReplicaGroup.homogeneous("Debian", 4)
        service = BFTService(group)
        timeline = service.run_campaign([self._exploit(1.0, ["Debian"])])
        assert timeline.state is ServiceState.SAFETY_VIOLATED
        assert timeline.safety_violation_time == 1.0
        assert not timeline.survived

    def test_campaign_diverse_group_survives_single_exploit(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign([self._exploit(1.0, ["Debian"])])
        assert timeline.state is ServiceState.DEGRADED
        assert timeline.survived
        assert timeline.safety_violation_time is None

    def test_campaign_common_vulnerability_defeats_diversity(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign([self._exploit(2.0, ["Debian", "OpenBSD"])])
        assert timeline.state is ServiceState.SAFETY_VIOLATED

    def test_campaign_with_requests_builds_log(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign(
            [self._exploit(5.0, ["Debian"])], request_interval=1.0, horizon=10.0
        )
        assert len(timeline.executed) == 10
        sequence_numbers = [record.sequence_number for record in timeline.executed]
        assert sequence_numbers == sorted(sequence_numbers)

    def test_campaign_with_proactive_recovery_restores_liveness(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        exploits = [self._exploit(1.0, ["Debian"], "CVE-1")]
        timeline = service.run_campaign(exploits, recovery_interval=2.0, horizon=6.0)
        assert timeline.state is ServiceState.CORRECT
        assert group.compromised_count() == 0

    def test_liveness_loss_recorded(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        exploits = [
            self._exploit(1.0, ["Debian"], "CVE-1"),
            self._exploit(2.0, ["OpenBSD"], "CVE-2"),
        ]
        timeline = service.run_campaign(exploits)
        assert timeline.liveness_loss_time == 2.0


class TestBFTEventOrdering:
    """Same-timestamp semantics: exploit < request < recovery priorities."""

    def _exploit(self, time, oses, cve="CVE-X"):
        return ExploitEvent(time=time, cve_id=cve, affected_os=frozenset(oses), remote=True)

    def test_exploit_beats_recovery_at_same_timestamp(self):
        """An exploit landing exactly at a recovery tick is processed first,
        so the compromise is recorded (and immediately healed)."""
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign(
            [self._exploit(2.0, ["Debian"], "CVE-1")],
            recovery_interval=2.0,
            horizon=2.0,
        )
        assert timeline.compromised_events == [(2.0, "CVE-1", 1)]
        assert timeline.peak_compromised == 1
        assert group.compromised_count() == 0  # the same-tick recovery healed it
        assert timeline.state.value == "correct"

    def test_exploit_beats_request_at_same_timestamp(self):
        """A safety-violating exploit at a request tick suppresses the request."""
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        timeline = service.run_campaign(
            [self._exploit(1.0, ["Debian", "OpenBSD"], "CVE-1")],
            request_interval=1.0,
            horizon=2.0,
        )
        assert timeline.safety_violation_time == 1.0
        assert timeline.executed == []

    def test_request_beats_recovery_at_same_timestamp(self):
        """At a shared tick the request still sees the compromised group."""
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        # Two compromised replicas out of four: unsafe and no quorum, so the
        # requests at 1.0 and 2.0 are refused -- the 2.0 one because requests
        # sort *before* the co-timed recovery.  Once recovered, 3.0 executes.
        timeline = service.run_campaign(
            [self._exploit(0.5, ["Debian", "OpenBSD"], "CVE-1")],
            request_interval=1.0,
            recovery_interval=2.0,
            horizon=3.0,
        )
        executed_times = [record.time for record in timeline.executed]
        assert executed_times == [3.0]
        assert timeline.peak_compromised == 2

    def test_liveness_latch_survives_proactive_recovery(self):
        """Once liveness was lost, a later recovery must not clear the time."""
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        exploits = [
            self._exploit(1.0, ["Debian"], "CVE-1"),
            self._exploit(1.5, ["OpenBSD"], "CVE-2"),  # two down: liveness lost
            self._exploit(4.0, ["Solaris"], "CVE-3"),  # after full recovery at 3.0
        ]
        timeline = service.run_campaign(exploits, recovery_interval=3.0, horizon=5.0)
        assert timeline.liveness_loss_time == 1.5
        assert timeline.safety_violation_time == 1.5
        # The recovery healed the group (only the 4.0 exploit is live at the
        # end) but the latched loss times are untouched.
        assert group.compromised_count() == 1
        assert timeline.peak_compromised == 2

    def test_peak_compromised_not_reset_by_recovery(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        service = BFTService(group)
        exploits = [
            self._exploit(0.5, ["Debian"], "CVE-1"),
            self._exploit(1.0, ["OpenBSD"], "CVE-2"),
        ]
        timeline = service.run_campaign(exploits, recovery_interval=2.0, horizon=2.0)
        assert group.compromised_count() == 0
        assert timeline.peak_compromised == 2


class TestCompromiseSimulation:
    def test_run_configuration_basic(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=3)
        result = simulation.run_configuration(
            "diverse", ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=20, exploit_rate=1.0, horizon=5.0,
        )
        assert result.runs == 20
        assert 0.0 <= result.safety_violation_probability <= 1.0
        assert 0.0 <= result.mean_compromised <= 4.0
        assert "diverse" in result.summary()

    def test_rejects_non_positive_runs(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries)
        with pytest.raises(SimulationError):
            simulation.run_configuration("x", ("Debian",), runs=0)

    def test_homogeneous_group_is_weaker_than_diverse(self, corpus):
        """The paper's core claim, measured end to end on the corpus."""
        simulation = CompromiseSimulation(corpus.valid_entries, seed=11)
        homogeneous, diverse = simulation.homogeneous_vs_diverse(
            "Debian",
            ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=40,
            exploit_rate=1.0,
            horizon=4.0,
        )
        assert homogeneous.safety_violation_probability >= diverse.safety_violation_probability
        assert homogeneous.mean_compromised >= diverse.mean_compromised

    def test_diversity_gain_non_negative(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=23)
        gain = simulation.diversity_gain(
            "Windows2003",
            ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=30,
            exploit_rate=1.0,
            horizon=4.0,
        )
        assert -0.2 <= gain <= 1.0

    def test_compare_returns_one_result_per_configuration(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=5)
        results = simulation.compare(
            {"homogeneous": ("Debian",) * 4, "set1": ("Debian", "OpenBSD", "Solaris", "Windows2003")},
            runs=10, horizon=3.0,
        )
        assert [result.name for result in results] == ["homogeneous", "set1"]

    def test_single_exploit_analysis_contrast(self, corpus):
        """A single exploit defeats a homogeneous group far more often than Set1."""
        simulation = CompromiseSimulation(corpus.valid_entries)
        homogeneous = simulation.single_exploit_analysis("4xDebian", ("Debian",) * 4)
        diverse = simulation.single_exploit_analysis(
            "Set1", ("Windows2003", "Solaris", "Debian", "OpenBSD")
        )
        assert homogeneous.single_attack_defeat_probability == 1.0
        assert diverse.single_attack_defeat_probability < 0.1
        assert homogeneous.mean_replicas_per_exploit == 4.0
        assert diverse.mean_replicas_per_exploit < 1.5

    def test_single_exploit_analysis_empty_group_os(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries)
        analysis = simulation.single_exploit_analysis(
            "pair", ("OpenSolaris", "Windows2008")
        )
        assert analysis.relevant_exploits > 0
        assert 0.0 <= analysis.single_attack_defeat_probability <= 1.0

    def test_results_are_reproducible(self, corpus):
        a = CompromiseSimulation(corpus.valid_entries, seed=9).run_configuration(
            "x", ("Debian", "OpenBSD", "Solaris", "Windows2003"), runs=10, horizon=3.0
        )
        b = CompromiseSimulation(corpus.valid_entries, seed=9).run_configuration(
            "x", ("Debian", "OpenBSD", "Solaris", "Windows2003"), runs=10, horizon=3.0
        )
        assert a == b

    def test_rejects_unknown_engine_and_arrival(self, corpus):
        with pytest.raises(SimulationError):
            CompromiseSimulation(corpus.valid_entries, engine="quantum")
        simulation = CompromiseSimulation(corpus.valid_entries)
        with pytest.raises(SimulationError):
            simulation.run_configuration("x", ("Debian",), runs=5, arrival="fractal")

    def test_mean_compromised_counts_recovered_replicas(self):
        """Regression: proactive recovery must not erase observed damage.

        The pool only targets Debian, so every run peaks at exactly one
        compromised replica; with the recovery interval equal to the horizon
        the group is always clean *at the end* of the campaign, which the old
        end-state accounting reported as zero damage.
        """
        pool = [make_entry(cve_id="CVE-2005-0001", oses=("Debian",))]
        simulation = CompromiseSimulation(pool, seed=3)
        result = simulation.run_configuration(
            "diverse",
            ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            runs=20,
            exploit_rate=4.0,
            horizon=3.0,
            recovery_interval=3.0,
        )
        assert result.mean_compromised == 1.0
        # The end state really is clean: replaying one campaign shows the
        # recovery wiping the compromise that the peak accounting preserves.
        attacker = Attacker(pool, seed=3)
        group = ReplicaGroup(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        timeline = BFTService(group).run_campaign(
            attacker.poisson_campaign(4.0, 3.0, targeted_os=["Debian"]),
            recovery_interval=3.0,
            horizon=3.0,
        )
        assert group.compromised_count() == 0
        assert timeline.peak_compromised == 1

    def test_compare_forwards_targeted_and_smart(self, corpus):
        """Regression: compare() used to silently drop campaign parameters."""
        simulation = CompromiseSimulation(corpus.valid_entries, seed=5)
        configurations = {"set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")}
        campaign = dict(runs=10, exploit_rate=1.0, horizon=3.0,
                        targeted=False, smart=True, quorum_model="2f+1")
        (compared,) = simulation.compare(configurations, **campaign)
        direct = simulation.run_configuration("set1", configurations["set1"], **campaign)
        assert compared == direct

    def test_homogeneous_vs_diverse_forwards_quorum_and_recovery(self, corpus):
        """Regression: quorum_model/recovery_interval were dropped entirely."""
        simulation = CompromiseSimulation(corpus.valid_entries, seed=5)
        diverse_os = ("Windows2003", "Solaris", "Debian", "OpenBSD")
        campaign = dict(runs=10, exploit_rate=1.0, horizon=3.0,
                        quorum_model="2f+1", recovery_interval=1.0)
        homogeneous, diverse = simulation.homogeneous_vs_diverse(
            "Debian", diverse_os, **campaign
        )
        assert homogeneous == simulation.run_configuration(
            "homogeneous-Debian", ("Debian",) * 4, **campaign
        )
        assert diverse == simulation.run_configuration(
            "diverse-" + "+".join(diverse_os), diverse_os, **campaign
        )

    def test_diversity_gain_none_when_baseline_has_no_violations(self):
        """A violation-free baseline is 'nothing to reduce', not 'no gain'."""
        # The pool only affects OpenBSD, so a Debian-homogeneous baseline
        # never gets compromised -- the gain ratio is undefined.
        pool = [make_entry(cve_id="CVE-2005-0001", oses=("OpenBSD",))]
        simulation = CompromiseSimulation(pool, seed=3)
        gain = simulation.diversity_gain(
            "Debian",
            ("Debian", "RedHat", "Solaris", "Windows2003"),
            runs=5,
            exploit_rate=1.0,
            horizon=2.0,
            targeted=False,
        )
        assert gain is None

    def test_recovery_sweep_rejects_conflicting_kwarg(self, corpus):
        simulation = CompromiseSimulation(corpus.valid_entries, seed=3)
        with pytest.raises(SimulationError):
            simulation.recovery_sweep(
                "x", ("Debian",), [None, 1.0], runs=5, recovery_interval=2.0
            )

    def test_smart_adversary_never_survives_longer(self, corpus):
        """Opening with the best exploit can only hurt the defenders."""
        simulation = CompromiseSimulation(corpus.valid_entries, seed=13)
        group = ("Windows2003", "Solaris", "Debian", "OpenBSD")
        campaign = dict(runs=30, exploit_rate=1.0, horizon=3.0)
        plain = simulation.run_configuration("plain", group, **campaign)
        smart = simulation.run_configuration("smart", group, smart=True, **campaign)
        assert smart.safety_violation_probability >= plain.safety_violation_probability
        assert smart.mean_compromised >= plain.mean_compromised


class TestWilsonInterval:
    def test_bounds_and_midpoint(self):
        from repro.itsys.simulation import wilson_interval

        low, high = wilson_interval(0, 20)
        assert low == 0.0 and 0.0 < high < 0.25
        low, high = wilson_interval(20, 20)
        assert 0.75 < low < 1.0 and high == 1.0
        low, high = wilson_interval(10, 20)
        assert low < 0.5 < high

    def test_more_trials_narrow_the_interval(self):
        from repro.itsys.simulation import wilson_interval

        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_inputs_rejected(self):
        from repro.itsys.simulation import wilson_interval

        with pytest.raises(SimulationError):
            wilson_interval(1, 0)
        with pytest.raises(SimulationError):
            wilson_interval(5, 3)

    def test_result_carries_wilson_intervals(self, corpus):
        from repro.itsys.simulation import wilson_interval

        simulation = CompromiseSimulation(corpus.valid_entries, seed=3)
        result = simulation.run_configuration(
            "x", ("Debian", "OpenBSD", "Solaris", "Windows2003"), runs=25, horizon=3.0
        )
        violations = round(result.safety_violation_probability * result.runs)
        assert result.safety_violation_ci == wilson_interval(violations, result.runs)
        low, high = result.safety_violation_ci
        assert low <= result.safety_violation_probability <= high
        assert "95% CI" in result.summary()
