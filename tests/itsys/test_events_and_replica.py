"""Tests for the event queue and the replica/replica-group model."""

import pytest

from repro.core.exceptions import SimulationError
from repro.itsys.events import EventQueue
from repro.itsys.replica import Replica, ReplicaGroup


class TestEventQueue:
    def test_events_delivered_in_time_order(self):
        queue = EventQueue()
        queue.schedule(3.0, "c")
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_clock_advances(self):
        queue = EventQueue()
        queue.schedule(5.0, "x")
        assert queue.now == 0.0
        queue.pop()
        assert queue.now == 5.0

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(5.0, "x")
        queue.pop()
        with pytest.raises(ValueError):
            queue.schedule(1.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_consume(self):
        queue = EventQueue()
        queue.schedule(1.0, "x")
        assert queue.peek().kind == "x"
        assert len(queue) == 1

    def test_run_with_horizon(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        queue.schedule(10.0, "c")
        processed = queue.run(lambda event: seen.append(event.kind), until=5.0)
        assert processed == 2
        assert seen == ["a", "b"]
        assert queue.now == 5.0

    def test_run_handler_can_schedule_more_events(self):
        queue = EventQueue()
        seen = []

        def handler(event):
            seen.append(event.time)
            if event.time < 3:
                queue.schedule(event.time + 1, "next")

        queue.schedule(1.0, "start")
        queue.run(handler)
        assert seen == [1.0, 2.0, 3.0]

    def test_run_max_events(self):
        queue = EventQueue()
        for t in range(10):
            queue.schedule(float(t), "tick")
        assert queue.run(lambda e: None, max_events=4) == 4
        assert len(queue) == 6

    def test_drain(self):
        queue = EventQueue()
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        assert [event.kind for event in queue.drain()] == ["a", "b"]


class TestReplica:
    def test_os_name_normalised(self):
        assert Replica(0, "win2003").os_name == "Windows2003"

    def test_unknown_os_rejected(self):
        with pytest.raises(KeyError):
            Replica(0, "TempleOS")

    def test_vulnerable_and_compromise(self):
        replica = Replica(0, "Debian")
        assert replica.is_vulnerable_to("CVE-1", {"Debian", "RedHat"})
        replica.compromise(3.0, "CVE-1")
        assert replica.compromised
        assert replica.compromised_at == 3.0
        assert not replica.is_vulnerable_to("CVE-2", {"Debian"})

    def test_patch_blocks_exploit(self):
        replica = Replica(0, "Debian")
        replica.patch("CVE-1")
        assert not replica.is_vulnerable_to("CVE-1", {"Debian"})
        assert replica.is_vulnerable_to("CVE-2", {"Debian"})

    def test_recover(self):
        replica = Replica(0, "Debian")
        replica.compromise(1.0, "CVE-1")
        replica.recover()
        assert not replica.compromised
        assert replica.compromised_by is None

    def test_first_compromise_wins(self):
        replica = Replica(0, "Debian")
        replica.compromise(1.0, "CVE-1")
        replica.compromise(2.0, "CVE-2")
        assert replica.compromised_by == "CVE-1"


class TestReplicaGroup:
    def test_sizing_3f1(self):
        group = ReplicaGroup.homogeneous("Debian", 4)
        assert group.n == 4
        assert group.f == 1
        assert group.quorum_size == 3

    def test_sizing_2f1(self):
        group = ReplicaGroup(["Debian", "OpenBSD", "Solaris"], quorum_model="2f+1")
        assert group.f == 1
        assert group.quorum_size == 2

    def test_empty_group_rejected(self):
        with pytest.raises(SimulationError):
            ReplicaGroup([])

    def test_unknown_quorum_model_rejected(self):
        with pytest.raises(SimulationError):
            ReplicaGroup(["Debian"], quorum_model="4f+2")

    def test_diverse_constructor_rejects_duplicates(self):
        with pytest.raises(SimulationError):
            ReplicaGroup.diverse(["Debian", "Debian"])

    def test_is_diverse(self):
        assert ReplicaGroup.diverse(["Debian", "OpenBSD"]).is_diverse
        assert not ReplicaGroup.homogeneous("Debian", 3).is_diverse

    def test_safety_violated_after_f_plus_one_compromises(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        assert group.f == 1
        group.replicas[0].compromise(1.0, "CVE-1")
        assert not group.safety_violated
        group.replicas[1].compromise(2.0, "CVE-2")
        assert group.safety_violated

    def test_apply_exploit_homogeneous_group_falls_at_once(self):
        group = ReplicaGroup.homogeneous("Debian", 4)
        hit = group.apply_exploit(1.0, "CVE-1", {"Debian"})
        assert hit == 4
        assert group.safety_violated

    def test_apply_exploit_diverse_group_limited_damage(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD", "Solaris", "Windows2003"])
        hit = group.apply_exploit(1.0, "CVE-1", {"Debian"})
        assert hit == 1
        assert not group.safety_violated

    def test_proactive_recovery(self):
        group = ReplicaGroup.homogeneous("Debian", 4)
        group.apply_exploit(1.0, "CVE-1", {"Debian"})
        recovered = group.proactive_recovery()
        assert recovered == 4
        assert group.compromised_count() == 0

    def test_reset_clears_patches_and_compromises(self):
        group = ReplicaGroup.diverse(["Debian", "OpenBSD"])
        group.replicas[0].patch("CVE-1")
        group.apply_exploit(1.0, "CVE-2", {"OpenBSD"})
        group.reset()
        assert group.compromised_count() == 0
        assert group.replicas[0].patched == frozenset()

    def test_vulnerable_replicas_respects_patching(self):
        group = ReplicaGroup.homogeneous("Debian", 3)
        group.replicas[1].patch("CVE-1")
        vulnerable = group.vulnerable_replicas("CVE-1", {"Debian"})
        assert [replica.replica_id for replica in vulnerable] == [0, 2]
