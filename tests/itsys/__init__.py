"""Test package."""
