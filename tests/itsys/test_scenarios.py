"""Property suite for the adversary scenario library.

Three contracts gate every scenario family (``campaign``, ``patch-race``,
``epidemic``, ``adaptive``):

* **engine identity** -- the scenario event loop is shared by all engine
  labels, so ``bitset``, ``naive`` and ``packed`` simulations must return
  bit-for-bit identical ``SimulationResult`` values per seed;
* **split-merge identity** -- scenario runs keep the per-run seeding
  contract (``seed + 7919 * i``), so a campaign split into disjoint run
  ranges, executed in any order and merged via :func:`merge_run_ranges`
  reproduces the single-range campaign exactly;
* **classic degeneration** -- ``campaign`` with one adversary consumes the
  per-run RNG in exactly the classic loop's order, so it must reproduce the
  scenario-less campaign bit for bit.

Plus deterministic unit coverage of spec normalisation, parsing, labels and
the policy/arrival building blocks.
"""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SimulationError
from repro.itsys.scenarios import (
    CLOSURE_MODELS,
    SCENARIOS,
    AdaptivePolicy,
    EpidemicPolicy,
    PatchRacePolicy,
    ScenarioSpec,
    SuperposedArrivals,
    build_scenario,
    gompertz_closure_time,
    parse_scenario,
)
from repro.itsys.simulation import CompromiseSimulation, merge_run_ranges
from tests.itsys.test_simulation_equivalence import GROUP_OSES, POOL, campaigns

#: One strategy per family, exercising every family-specific knob.
scenario_specs = st.one_of(
    st.builds(
        ScenarioSpec,
        family=st.just("campaign"),
        adversaries=st.integers(min_value=1, max_value=4),
    ),
    st.builds(
        ScenarioSpec,
        family=st.just("patch-race"),
        closure=st.just("gompertz"),
        closure_scale=st.floats(min_value=0.5, max_value=4.0),
        closure_shape=st.floats(min_value=0.5, max_value=3.0),
    ),
    st.builds(
        ScenarioSpec,
        family=st.just("patch-race"),
        closure=st.just("empirical"),
        lifetimes=st.lists(
            st.floats(min_value=0.1, max_value=8.0), min_size=1, max_size=6
        ).map(tuple),
    ),
    st.builds(
        ScenarioSpec,
        family=st.just("epidemic"),
        spread=st.floats(min_value=0.05, max_value=1.0),
    ),
    st.builds(
        ScenarioSpec,
        family=st.just("adaptive"),
        explore=st.floats(min_value=0.0, max_value=1.0),
    ),
)

groups = st.lists(st.sampled_from(GROUP_OSES), min_size=1, max_size=6)


class _FixedRandom:
    """Stub RNG replaying a scripted sequence of ``random()`` values."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0)

    def choice(self, sequence):
        return sequence[0]


# -- the three campaign-level contracts -------------------------------------------


@given(
    spec=scenario_specs,
    campaign=campaigns,
    os_names=groups,
    seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_every_engine_produces_identical_scenario_results(
    spec, campaign, os_names, seed
):
    base = CompromiseSimulation(POOL, seed=seed, engine="bitset")
    result = base.run_configuration("cfg", os_names, scenario=spec, **campaign)
    for engine in ("naive", "packed"):
        assert base.with_engine(engine).run_configuration(
            "cfg", os_names, scenario=spec, **campaign
        ) == result, f"engine {engine!r} diverged for {spec.label}"


@given(
    spec=scenario_specs,
    campaign=campaigns,
    os_names=groups,
    seed=st.integers(0, 10_000),
    split=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_split_runs_merge_back_to_the_full_campaign(
    spec, campaign, os_names, seed, split
):
    campaign = dict(campaign)
    runs = campaign.pop("runs") + 1  # ensure >= 2 so the split is proper
    split = min(split, runs - 1)
    simulation = CompromiseSimulation(POOL, seed=seed, engine="bitset")
    whole = simulation.run_range(
        os_names, 0, runs, scenario=spec, **campaign
    )
    # Execute the back half first: ranges must be order-independent.
    back = simulation.run_range(
        os_names, split, runs, scenario=spec, **campaign
    )
    front = simulation.run_range(
        os_names, 0, split, scenario=spec, **campaign
    )
    assert merge_run_ranges([back, front]) == whole


@given(campaign=campaigns, os_names=groups, seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_single_adversary_campaign_degenerates_to_the_classic_loop(
    campaign, os_names, seed
):
    simulation = CompromiseSimulation(POOL, seed=seed, engine="bitset")
    classic = simulation.run_configuration("cfg", os_names, **campaign)
    lone = simulation.run_configuration(
        "cfg",
        os_names,
        scenario=ScenarioSpec(family="campaign", adversaries=1),
        **campaign,
    )
    assert dataclasses.asdict(lone) == dataclasses.asdict(classic)


@given(spec=scenario_specs, seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_scenario_runs_are_seed_deterministic(spec, seed):
    group = ("Debian", "OpenBSD", "Windows2003", "Solaris")
    campaign = dict(runs=6, exploit_rate=1.0, horizon=3.0)
    first = CompromiseSimulation(POOL, seed=seed).run_configuration(
        "cfg", group, scenario=spec, **campaign
    )
    again = CompromiseSimulation(POOL, seed=seed).run_configuration(
        "cfg", group, scenario=spec, **campaign
    )
    assert first == again


# -- spec normalisation and validation --------------------------------------------


class TestScenarioSpec:
    def test_irrelevant_knobs_normalise_to_defaults(self):
        noisy = ScenarioSpec(
            family="epidemic", adversaries=7, closure_scale=9.0,
            explore=0.9, spread=0.4,
        )
        assert noisy == ScenarioSpec(family="epidemic", spread=0.4)
        assert hash(noisy) == hash(ScenarioSpec(family="epidemic", spread=0.4))

    def test_empirical_lifetimes_stored_sorted(self):
        spec = ScenarioSpec(
            family="patch-race", closure="empirical", lifetimes=(3.0, 1, 2.5)
        )
        assert spec.lifetimes == (1.0, 2.5, 3.0)
        shuffled = ScenarioSpec(
            family="patch-race", closure="empirical", lifetimes=(2.5, 3, 1.0)
        )
        assert spec == shuffled

    def test_gompertz_spec_drops_lifetimes(self):
        spec = ScenarioSpec(family="patch-race", lifetimes=(1.0, 2.0))
        assert spec.closure == "gompertz"
        assert spec.lifetimes == ()

    @pytest.mark.parametrize("kwargs", [
        dict(family="botnet"),
        dict(family="campaign", adversaries=0),
        dict(family="campaign", adversaries=1.5),
        dict(family="patch-race", closure="linear"),
        dict(family="patch-race", closure="empirical"),
        dict(family="patch-race", closure="empirical", lifetimes=(1.0, -2.0)),
        dict(family="patch-race", closure_scale=0.0),
        dict(family="patch-race", closure_shape=-1.0),
        dict(family="epidemic", spread=0.0),
        dict(family="epidemic", spread=1.5),
        dict(family="adaptive", explore=-0.1),
        dict(family="adaptive", explore=1.1),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            ScenarioSpec(**kwargs)

    def test_labels_identify_the_family_and_knobs(self):
        assert ScenarioSpec(family="campaign", adversaries=3).label == (
            "campaign(n=3)"
        )
        assert ScenarioSpec(
            family="patch-race", closure_scale=1.5, closure_shape=2.0
        ).label == "patch-race(gompertz,s=1.5,k=2)"
        assert ScenarioSpec(
            family="patch-race", closure="empirical", lifetimes=(1.0, 2.0)
        ).label == "patch-race(empirical,2)"
        assert ScenarioSpec(family="epidemic", spread=0.4).label == (
            "epidemic(p=0.4)"
        )
        assert ScenarioSpec(family="adaptive", explore=0.1).label == (
            "adaptive(eps=0.1)"
        )

    @given(spec=scenario_specs)
    @settings(max_examples=40, deadline=None)
    def test_params_are_canonical_and_json_safe(self, spec):
        params = spec.params()
        assert params["family"] in SCENARIOS
        assert params["closure"] in CLOSURE_MODELS
        # Canonical: two equal specs serialise identically, and params
        # carries every knob (the cache key depends on this).
        assert set(params) == {
            "family", "adversaries", "closure", "closure_scale",
            "closure_shape", "lifetimes", "spread", "explore",
        }
        assert params == ScenarioSpec(**{
            key: tuple(value) if key == "lifetimes" else value
            for key, value in params.items()
        }).params()


class TestParseScenario:
    @pytest.mark.parametrize("token,expected", [
        ("campaign", ScenarioSpec(family="campaign")),
        ("campaign:adversaries=3", ScenarioSpec(family="campaign", adversaries=3)),
        (
            "patch-race:closure=gompertz,scale=1.5,shape=2",
            ScenarioSpec(
                family="patch-race", closure_scale=1.5, closure_shape=2.0
            ),
        ),
        (
            "patch-race:closure=empirical,lifetimes=0.5;1.25;4",
            ScenarioSpec(
                family="patch-race", closure="empirical",
                lifetimes=(0.5, 1.25, 4.0),
            ),
        ),
        ("epidemic:spread=0.4", ScenarioSpec(family="epidemic", spread=0.4)),
        ("adaptive:explore=0.1", ScenarioSpec(family="adaptive", explore=0.1)),
        (" epidemic : spread = 0.4 ", ScenarioSpec(family="epidemic", spread=0.4)),
    ])
    def test_round_trips(self, token, expected):
        assert parse_scenario(token) == expected

    @pytest.mark.parametrize("token", [
        "bogus",
        "campaign:adversaries",
        "campaign:=3",
        "campaign:adversaries=three",
        "epidemic:velocity=0.4",
        "patch-race:lifetimes=a;b",
    ])
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises(SimulationError):
            parse_scenario(token)


# -- building blocks --------------------------------------------------------------


class TestGompertzClosure:
    def test_inverse_cdf_round_trips(self):
        scale, shape = 2.0, 1.5
        for u in (0.01, 0.25, 0.5, 0.9, 0.999):
            t = gompertz_closure_time(_FixedRandom([u]), scale, shape)
            assert t > 0.0
            cdf = -math.expm1(-shape * math.expm1(t / scale))
            assert cdf == pytest.approx(u, abs=1e-12)

    def test_consumes_exactly_one_draw(self):
        rng = _FixedRandom([0.5, 0.9])
        gompertz_closure_time(rng, 1.0, 1.0)
        assert rng._values == [0.9]


class TestSuperposedArrivals:
    @given(
        streams=st.integers(min_value=1, max_value=5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_events_are_nondecreasing_and_bounded(self, streams, seed):
        import random

        rng = random.Random(seed)
        horizon = 4.0
        times = list(
            SuperposedArrivals(
                lambda r: r.expovariate(1.0), streams
            ).events(rng, horizon)
        )
        assert all(t <= horizon for t in times)
        assert times == sorted(times)

    def test_zero_streams_rejected(self):
        with pytest.raises(SimulationError):
            SuperposedArrivals(lambda rng: 1.0, 0)


class TestPolicies:
    def test_patch_race_fizzles_closed_entries(self):
        spec = ScenarioSpec(
            family="patch-race", closure="empirical", lifetimes=(2.0,)
        )
        policy = PatchRacePolicy(spec, pool_size=3)
        policy.reset(_FixedRandom([]))  # empirical choice() needs no random()
        assert policy._closures == (2.0, 2.0, 2.0)
        live = policy.choose(_FixedRandom([]), now=1.0, compromised=0)
        assert live == 0
        fizzled = policy.choose(_FixedRandom([]), now=3.0, compromised=0)
        assert fizzled is None

    def test_epidemic_adjacency_is_the_or_of_covering_masks(self):
        spec = ScenarioSpec(family="epidemic", spread=1.0)
        # Replica 0 shares vulns with 1 (mask 0b011) and 2 (mask 0b101).
        policy = EpidemicPolicy(spec, victim_masks=(0b011, 0b101), replicas=3)
        assert policy._adjacency == (0b111, 0b011, 0b101)
        # spread=1.0: replica 0 infects its whole neighbourhood; replicas 1
        # and 2, now compromised, draw too (one draw per compromised
        # replica in ascending bit order).
        rng = _FixedRandom([0.0, 0.0, 0.0])
        assert policy.propagate(rng, compromised=0b001) == 0b111
        assert rng._values == []

    def test_adaptive_greedy_maximises_new_damage_lowest_index_ties(self):
        spec = ScenarioSpec(family="adaptive", explore=0.0)
        policy = AdaptivePolicy(spec, victim_masks=(0b0011, 0b1100, 0b1110))
        # Nothing compromised: mask 2 newly takes 3 replicas.
        assert policy.choose(_FixedRandom([0.9]), 0.0, compromised=0) == 2
        # With 0b1100 already down, masks 0 and 2 both add limited damage;
        # mask 0 adds 2, mask 2 adds 1 -> mask 0 wins.
        assert policy.choose(_FixedRandom([0.9]), 0.0, compromised=0b1100) == 0
        # Equal damage everywhere -> lowest index.
        tied = AdaptivePolicy(spec, victim_masks=(0b01, 0b10))
        assert tied.choose(_FixedRandom([0.9]), 0.0, compromised=0) == 0

    def test_build_scenario_dispatches_per_family(self):
        masks = (0b01, 0b10)

        def gap(rng):
            return 1.0

        arrivals, policy = build_scenario(
            ScenarioSpec(family="campaign", adversaries=3), gap, masks, 2
        )
        assert isinstance(arrivals, SuperposedArrivals)
        _, policy = build_scenario(
            ScenarioSpec(family="patch-race"), gap, masks, 2
        )
        assert isinstance(policy, PatchRacePolicy)
        _, policy = build_scenario(
            ScenarioSpec(family="epidemic"), gap, masks, 2
        )
        assert isinstance(policy, EpidemicPolicy)
        _, policy = build_scenario(
            ScenarioSpec(family="adaptive"), gap, masks, 2
        )
        assert isinstance(policy, AdaptivePolicy)
