"""Property-based equivalence of the bitset and naive simulation engines.

The bitset engine compiles the exploitable pool and per-exploit victim
bitmasks once, then replays each run's random stream; the naive engine builds
an ``Attacker``/``ReplicaGroup``/``BFTService`` per run.  For any fixed seed
and campaign parameters the two must produce bit-for-bit identical
``SimulationResult`` dataclasses -- probabilities, means, violation times and
Wilson intervals included.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.enums import AccessVector, ComponentClass
from repro.itsys.scenarios import ScenarioSpec
from repro.itsys.simulation import CompromiseSimulation
from tests.conftest import make_entry

#: A compact corpus with deliberate overlap structure: per-OS entries, pairs,
#: one wide 4-OS entry, application/local entries that the default
#: Isolated-Thin configuration filter must drop.
POOL = [
    make_entry(cve_id="CVE-2004-0001", oses=("Debian",), year=2004),
    make_entry(cve_id="CVE-2004-0002", oses=("RedHat",), year=2004),
    make_entry(cve_id="CVE-2005-0003", oses=("Debian", "RedHat"), year=2005),
    make_entry(cve_id="CVE-2005-0004", oses=("OpenBSD",), year=2005),
    make_entry(cve_id="CVE-2005-0005", oses=("OpenBSD", "NetBSD", "FreeBSD"), year=2005),
    make_entry(cve_id="CVE-2006-0006", oses=("Windows2003",), year=2006),
    make_entry(cve_id="CVE-2006-0007", oses=("Windows2000", "Windows2003"), year=2006),
    make_entry(cve_id="CVE-2007-0008", oses=("Solaris",), year=2007),
    make_entry(
        cve_id="CVE-2007-0009",
        oses=("Debian", "OpenBSD", "Solaris", "Windows2003"),
        year=2007,
    ),
    make_entry(cve_id="CVE-2008-0010", oses=("NetBSD",), year=2008),
    make_entry(cve_id="CVE-2008-0011", oses=("Debian",), year=2008,
               component_class=ComponentClass.APPLICATION),
    make_entry(cve_id="CVE-2008-0012", oses=("Solaris",), year=2008,
               access=AccessVector.LOCAL),
]

GROUP_OSES = (
    "Debian", "RedHat", "OpenBSD", "NetBSD", "FreeBSD",
    "Windows2000", "Windows2003", "Solaris",
)

campaigns = st.fixed_dictionaries(
    {
        "runs": st.integers(min_value=1, max_value=8),
        "exploit_rate": st.floats(min_value=0.25, max_value=4.0,
                                  allow_nan=False, allow_infinity=False),
        "horizon": st.floats(min_value=0.5, max_value=8.0,
                             allow_nan=False, allow_infinity=False),
        "quorum_model": st.sampled_from(("3f+1", "2f+1")),
        "targeted": st.booleans(),
        "recovery_interval": st.one_of(
            st.none(),
            st.floats(min_value=0.25, max_value=3.0,
                      allow_nan=False, allow_infinity=False),
        ),
        "arrival": st.sampled_from(("poisson", "aging")),
        "shape": st.floats(min_value=0.5, max_value=2.5,
                           allow_nan=False, allow_infinity=False),
        "smart": st.booleans(),
    }
)

groups = st.lists(st.sampled_from(GROUP_OSES), min_size=1, max_size=6)


@given(campaign=campaigns, os_names=groups, seed=st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_engines_produce_identical_results(campaign, os_names, seed):
    fast = CompromiseSimulation(POOL, seed=seed, engine="bitset")
    naive = CompromiseSimulation(POOL, seed=seed, engine="naive")
    fast_result = fast.run_configuration("cfg", os_names, **campaign)
    naive_result = naive.run_configuration("cfg", os_names, **campaign)
    assert fast_result == naive_result


#: Optional scenario axis: the classic adversary (None) plus one
#: representative per scenario family.  ``tests/itsys/test_scenarios.py``
#: covers the knob space; here the point is that scenarios do not disturb
#: the engine equivalence.
scenarios = st.sampled_from((
    None,
    ScenarioSpec(family="campaign", adversaries=3),
    ScenarioSpec(family="patch-race", closure_scale=1.5, closure_shape=2.0),
    ScenarioSpec(
        family="patch-race", closure="empirical", lifetimes=(0.5, 1.25, 4.0)
    ),
    ScenarioSpec(family="epidemic", spread=0.4),
    ScenarioSpec(family="adaptive", explore=0.1),
))


@given(campaign=campaigns, os_names=groups, seed=st.integers(0, 10_000),
       scenario=scenarios)
@settings(max_examples=60, deadline=None)
def test_engines_identical_under_every_scenario_family(
    campaign, os_names, seed, scenario
):
    fast = CompromiseSimulation(POOL, seed=seed, engine="bitset")
    fast_result = fast.run_configuration(
        "cfg", os_names, scenario=scenario, **campaign
    )
    for engine in ("naive", "packed"):
        other = fast.with_engine(engine).run_configuration(
            "cfg", os_names, scenario=scenario, **campaign
        )
        assert other == fast_result


@given(os_names=groups, seed=st.integers(0, 10_000),
       quorum_model=st.sampled_from(("3f+1", "2f+1")))
@settings(max_examples=40, deadline=None)
def test_single_exploit_analysis_identical(os_names, seed, quorum_model):
    fast = CompromiseSimulation(POOL, seed=seed, engine="bitset")
    naive = fast.with_engine("naive")
    assert fast.single_exploit_analysis(
        "cfg", os_names, quorum_model=quorum_model
    ) == naive.single_exploit_analysis("cfg", os_names, quorum_model=quorum_model)


def test_engines_identical_on_calibrated_corpus(corpus):
    """Spot-check the equivalence on the full paper corpus, all knobs on."""
    campaign = dict(
        runs=25, exploit_rate=1.5, horizon=5.0, quorum_model="2f+1",
        recovery_interval=0.75, arrival="aging", shape=1.4, smart=True,
    )
    fast = CompromiseSimulation(corpus.valid_entries, seed=123, engine="bitset")
    naive = fast.with_engine("naive")
    group = ("Windows2003", "Solaris", "Debian", "OpenBSD", "NetBSD")
    assert fast.run_configuration("Set1+", group, **campaign) == (
        naive.run_configuration("Set1+", group, **campaign)
    )


def test_compare_and_sweep_identical_on_calibrated_corpus(corpus):
    configurations = {
        "homogeneous": ("Debian",) * 4,
        "diverse": ("Windows2003", "Solaris", "Debian", "OpenBSD"),
    }
    fast = CompromiseSimulation(corpus.valid_entries, seed=5, engine="bitset")
    naive = fast.with_engine("naive")
    campaign = dict(runs=15, exploit_rate=1.0, horizon=3.0)
    assert fast.compare(configurations, **campaign) == naive.compare(
        configurations, **campaign
    )
    intervals = [None, 1.0]
    assert fast.recovery_sweep(
        "diverse", configurations["diverse"], intervals, **campaign
    ) == naive.recovery_sweep(
        "diverse", configurations["diverse"], intervals, **campaign
    )
