"""Tests for table/figure rendering, export helpers and the experiment registry."""

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.enums import ValidityStatus
from repro.reports import figures, tables
from repro.reports.experiments import EXPERIMENTS, run_all, run_experiment
from repro.reports.export import ascii_bars, render_table, to_csv
from tests.conftest import make_entry


class TestExport:
    def test_render_table_alignment(self):
        text = render_table(("name", "count"), [("Debian", 1), ("Windows2000", 20)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "Windows2000" in lines[-1]
        assert len(lines) == 4

    def test_render_table_with_title(self):
        text = render_table(("a",), [(1,)], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_to_csv_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        text = to_csv(("a", "b"), [(1, 2), (3, 4)], path)
        assert path.read_text() == text
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,2"

    def test_ascii_bars(self):
        chart = ascii_bars(["x", "yy"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_ascii_bars_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_ascii_bars_empty(self):
        assert ascii_bars([], []) == ""


class TestTables:
    def test_table1_structure(self, dataset):
        report = tables.table1(dataset)
        assert report.headers == ("OS", "Valid", "Unknown", "Unspecified", "Disputed")
        assert len(report.rows) == 12  # 11 OSes + distinct row
        assert report.rows[-1][0] == "# distinct vuln."
        assert "Table I" in report.text

    def test_table1_matches_validity_summary(self, dataset):
        report = tables.table1(dataset)
        summary = dataset.validity_summary()
        row = report.row_map()["Debian"]
        assert row[1] == summary.valid_count("Debian")

    def test_table2_totals_column(self, valid_dataset):
        report = tables.table2(valid_dataset)
        for row in report.rows[:-1]:
            assert row[5] == row[1] + row[2] + row[3] + row[4]

    def test_table2_percentages_sum_to_100(self, valid_dataset):
        row = tables.table2(valid_dataset).rows[-1]
        assert sum(row[1:5]) == pytest.approx(100.0, abs=0.3)

    def test_table3_has_55_rows_and_monotone_filters(self, valid_dataset):
        report = tables.table3(valid_dataset)
        assert len(report.rows) == 55
        for row in report.rows:
            assert row[3] >= row[6] >= row[9]  # all >= noapp >= isolated shared

    def test_table4_rows_sorted_by_total(self, valid_dataset):
        report = tables.table4(valid_dataset)
        totals = [row[4] for row in report.rows]
        assert totals == sorted(totals, reverse=True)
        for row in report.rows:
            assert row[4] == row[1] + row[2] + row[3]

    def test_table5_has_28_pairs(self, valid_dataset):
        report = tables.table5(valid_dataset)
        assert len(report.rows) == 28

    def test_table6_has_15_release_pairs(self, valid_dataset):
        report = tables.table6(valid_dataset)
        assert len(report.rows) == 15

    def test_ksets_summary_rows(self, valid_dataset):
        report = tables.ksets_summary(valid_dataset)
        labels = [row[0] for row in report.rows]
        assert ">= 3 OSes" in labels
        assert any(label.startswith("CVE-") for label in labels)


class TestFigures:
    def test_figure2_series_per_os(self, valid_dataset):
        report = figures.figure2(valid_dataset)
        assert "Windows/Windows2000" in report.series
        series = report.series["Windows/Windows2000"]
        assert sum(series.values()) == valid_dataset.count_for("Windows2000")
        assert "Figure 2" in report.text

    def test_figure3_series(self, valid_dataset):
        report = figures.figure3(valid_dataset)
        assert set(report.series) == {"History", "Observed"}
        assert set(report.series["History"]) == {"Debian", "Set1", "Set2", "Set3", "Set4"}
        assert report.series["Observed"]["Debian"] == 9.0


class TestExperiments:
    def test_registry_covers_all_tables_and_figures(self):
        assert {
            "Table I", "Table II", "Table III", "Table IV", "Table V", "Table VI",
            "Figure 2", "Figure 3", "Section IV-B", "Section IV-E", "Simulation",
            "Sweep",
        } == set(EXPERIMENTS)

    def test_every_experiment_names_a_bench_target(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.bench_target.startswith("benchmarks/")

    def test_run_experiment_unknown_id(self, valid_dataset):
        with pytest.raises(KeyError):
            run_experiment("Table 99", valid_dataset)

    def test_run_single_experiment(self, dataset):
        result = run_experiment("Table I", dataset)
        assert result.measured["distinct_unknown"] == 60
        assert result.paper_values["distinct_unknown"] == 60
        assert result.rendering

    def test_run_all_produces_measured_and_paper_values(self, dataset):
        results = run_all(dataset)
        assert len(results) == len(EXPERIMENTS)
        for result in results:
            assert result.measured, result.experiment_id
            assert result.paper_values, result.experiment_id
            assert result.rendering, result.experiment_id

    def test_markdown_report(self, dataset):
        from repro.reports.summary import generate_markdown_report

        report = generate_markdown_report(dataset, experiment_ids=("Table I", "Table VI"))
        assert report.startswith("# Reproduction report")
        assert "### Table I" in report
        assert "### Table VI" in report
        assert "| distinct_unknown | 60 | 60 | yes |" in report

    def test_markdown_report_unknown_id(self, dataset):
        from repro.reports.summary import generate_markdown_report

        with pytest.raises(KeyError):
            generate_markdown_report(dataset, experiment_ids=("Table 42",))

    def test_headline_results_match_paper(self, dataset):
        """The key quantitative claims reproduce (see EXPERIMENTS.md for the full list)."""
        table3 = run_experiment("Table III", dataset)
        assert table3.measured == table3.paper_values
        table5 = run_experiment("Table V", dataset)
        assert table5.measured == table5.paper_values
        table6 = run_experiment("Table VI", dataset)
        assert table6.measured == table6.paper_values
        summary = run_experiment("Section IV-E", dataset)
        assert summary.measured["top_group"] == summary.paper_values["top_group"]
