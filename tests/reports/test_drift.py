"""SnapshotDrift: Table-1 numbers tracked across snapshots."""

from repro.db.database import VulnerabilityDatabase
from repro.reports.drift import snapshot_drift
from repro.snapshots.store import SnapshotStore
from tests.conftest import make_entry


def _store_with_chain():
    database = VulnerabilityDatabase()
    database.register_os_catalog()
    store = SnapshotStore(database)
    database.insert_entry(make_entry("CVE-2005-0001", oses=("Debian",)))
    database.insert_entry(make_entry("CVE-2005-0002", oses=("Solaris", "Debian")))
    store.commit(source="seed")
    database.upsert_entry(
        make_entry("CVE-2005-0003", oses=("OpenBSD",))
    )
    database.tombstone_entry("CVE-2005-0001")
    store.commit(source="delta")
    return store


class TestSnapshotDrift:
    def test_rows_track_per_snapshot_valid_counts(self):
        report = snapshot_drift(_store_with_chain())
        assert len(report.rows) == 2
        first, second = report.rows
        assert first.distinct_valid == 2
        assert first.valid_per_os["Debian"] == 2
        assert second.distinct_valid == 2
        assert second.valid_per_os["Debian"] == 1
        assert second.valid_per_os["OpenBSD"] == 1

    def test_deltas_name_only_moved_oses(self):
        report = snapshot_drift(_store_with_chain())
        (delta,) = report.deltas()
        assert delta == {"Debian": -1, "OpenBSD": +1}

    def test_text_rendering(self):
        report = snapshot_drift(_store_with_chain())
        text = report.text
        assert "SnapshotDrift" in text
        assert "#1 -> #2: Debian-1, OpenBSD+1" in text

    def test_empty_store_renders_empty_report(self):
        database = VulnerabilityDatabase()
        report = snapshot_drift(SnapshotStore(database))
        assert report.rows == ()
        assert report.deltas() == []
