"""Test package."""
