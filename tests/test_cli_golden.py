"""Golden-file tests for the JSON-emitting CLI commands.

The ``--json`` outputs of ``simulate`` and ``sweep`` are machine-readable
contracts (scripts and notebooks parse them), so beyond being *valid* they
must be *stable*: byte-identical for a fixed seed across runs, worker counts
and interpreter hash seeds.  The committed files under ``tests/golden/``
pin that contract; refresh them with ``pytest --update-golden`` after an
intentional output change.
"""

import json

import pytest

from repro.cli import main

SIMULATE_ARGS = [
    "simulate", "--runs", "8", "--horizon", "2.0",
    "--config", "Set1", "--homogeneous", "Debian", "--json",
]

SWEEP_ARGS = [
    "sweep", "--runs", "8", "--horizon", "2.0",
    "--config", "Set1", "--homogeneous", "Debian",
    "--quorum-models", "3f+1,2f+1", "--recovery-intervals", "none,1.0",
    "--no-cache", "--json",
]

SIMULATE_SCENARIO_ARGS = [
    *SIMULATE_ARGS, "--scenario",
    "patch-race:closure=empirical,lifetimes=0.5;1.25;4",
]

SWEEP_SCENARIO_ARGS = [
    "sweep", "--runs", "8", "--horizon", "2.0",
    "--config", "Set1", "--homogeneous", "Debian",
    "--scenario", "none", "--scenario", "campaign:adversaries=3",
    "--scenario", "epidemic:spread=0.4",
    "--no-cache", "--json",
]


def _stdout_of(capsys, argv) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


class TestSimulateGolden:
    def test_simulate_json_matches_golden(self, capsys, golden):
        golden("simulate.json", _stdout_of(capsys, SIMULATE_ARGS))

    def test_simulate_json_is_parseable_and_complete(self, capsys):
        payload = json.loads(_stdout_of(capsys, SIMULATE_ARGS))
        assert payload["engine"] == "bitset"
        assert {campaign["name"] for campaign in payload["campaigns"]} == set(
            payload["configurations"]
        )
        assert all(0.0 <= campaign["safety_violation_probability"] <= 1.0
                   for campaign in payload["campaigns"])


class TestSweepGolden:
    def test_sweep_json_matches_golden(self, capsys, golden):
        golden("sweep.json", _stdout_of(capsys, SWEEP_ARGS))

    def test_sweep_json_is_identical_across_worker_counts(self, capsys):
        serial = _stdout_of(capsys, SWEEP_ARGS)
        pooled = _stdout_of(capsys, [*SWEEP_ARGS, "--workers", "2"])
        assert serial == pooled

    def test_sweep_json_cold_and_warm_cache_agree(self, capsys, tmp_path, golden):
        cached = [
            argument if argument != "--no-cache" else "--cache-dir"
            for argument in SWEEP_ARGS
        ]
        cached.insert(cached.index("--cache-dir") + 1, str(tmp_path / "cache"))
        cold = _stdout_of(capsys, cached)
        warm = _stdout_of(capsys, cached)
        assert cold == warm
        # The cache-served payload matches the committed no-cache golden too.
        golden("sweep.json", warm)

    def test_sweep_json_shape(self, capsys):
        payload = json.loads(_stdout_of(capsys, SWEEP_ARGS))
        assert len(payload["cells"]) == 2 * 2 * 2  # configs x quorums x recovery
        cell_ids = [cell["cell_id"] for cell in payload["cells"]]
        assert len(set(cell_ids)) == len(cell_ids)
        for cell in payload["cells"]:
            assert cell["params"]["runs"] == 8
            assert "result" in cell and "safety_violation_probability" in cell["result"]


class TestScenarioGolden:
    """The scenario axis joins the stable JSON contract."""

    def test_simulate_scenario_json_matches_golden(self, capsys, golden):
        golden(
            "simulate_scenario.json",
            _stdout_of(capsys, SIMULATE_SCENARIO_ARGS),
        )

    def test_simulate_scenario_payload_records_normalised_params(self, capsys):
        payload = json.loads(_stdout_of(capsys, SIMULATE_SCENARIO_ARGS))
        scenario = payload["parameters"]["scenario"]
        assert scenario["family"] == "patch-race"
        assert scenario["closure"] == "empirical"
        assert scenario["lifetimes"] == [0.5, 1.25, 4.0]

    def test_sweep_scenario_json_matches_golden(self, capsys, golden):
        golden("sweep_scenarios.json", _stdout_of(capsys, SWEEP_SCENARIO_ARGS))

    def test_sweep_scenario_json_identical_across_worker_counts(self, capsys):
        serial = _stdout_of(capsys, SWEEP_SCENARIO_ARGS)
        pooled = _stdout_of(capsys, [*SWEEP_SCENARIO_ARGS, "--workers", "2"])
        assert serial == pooled

    def test_sweep_scenario_axis_multiplies_cells(self, capsys):
        payload = json.loads(_stdout_of(capsys, SWEEP_SCENARIO_ARGS))
        assert len(payload["cells"]) == 2 * 3  # configs x scenarios
        labels = {
            cell["params"].get("scenario", {"family": None})["family"]
            if cell["params"].get("scenario") else "classic"
            for cell in payload["cells"]
        }
        assert labels == {"classic", "campaign", "epidemic"}

    def test_invalid_scenario_exits_with_diagnostic(self, capsys):
        assert main([*SIMULATE_ARGS, "--scenario", "bogus"]) == 2
        assert "invalid scenario" in capsys.readouterr().err

    def test_empirical_scenario_without_db_or_lifetimes_fails_cleanly(
        self, capsys
    ):
        argv = [*SIMULATE_ARGS, "--scenario", "patch-race:closure=empirical"]
        assert main(argv) == 2
        assert "invalid scenario" in capsys.readouterr().err


class TestSweepCsv:
    def test_csv_export_writes_one_row_per_cell(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        argv = [*SWEEP_ARGS, "--csv", str(csv_path)]
        assert main(argv) == 0
        capsys.readouterr()
        lines = csv_path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 1 + 8  # header + cells
        assert lines[0].startswith("cell_id,configuration,os_names")


@pytest.mark.parametrize("argv", [
    SIMULATE_ARGS, SWEEP_ARGS, SIMULATE_SCENARIO_ARGS, SWEEP_SCENARIO_ARGS,
])
def test_json_outputs_are_run_to_run_stable(capsys, argv):
    assert _stdout_of(capsys, argv) == _stdout_of(capsys, argv)


class TestEngineSelection:
    """``--engine`` must accept every registered engine and nothing else."""

    def test_unknown_engine_is_rejected_listing_the_valid_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--engine", "quantum", *SIMULATE_ARGS])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "invalid choice: 'quantum'" in stderr
        assert "'bitset', 'naive', 'packed'" in stderr

    def test_dataset_error_message_names_every_engine(self, golden):
        from repro.analysis.dataset import VulnerabilityDataset

        with pytest.raises(ValueError) as excinfo:
            VulnerabilityDataset([], engine="quantum")
        golden("engine_error.txt", str(excinfo.value) + "\n")

    def test_packed_simulate_json_differs_only_in_the_engine_field(self, capsys):
        bitset = json.loads(_stdout_of(capsys, SIMULATE_ARGS))
        packed = json.loads(
            _stdout_of(capsys, ["--engine", "packed", *SIMULATE_ARGS])
        )
        assert packed["engine"] == "packed"
        packed["engine"] = bitset["engine"]
        assert packed == bitset

    def test_packed_sweep_json_matches_the_bitset_golden(self, capsys, golden):
        payload = json.loads(
            _stdout_of(capsys, ["--engine", "packed", *SWEEP_ARGS])
        )
        assert payload["engine"] == "packed"
        payload["engine"] = "bitset"
        golden("sweep.json", json.dumps(payload, indent=2, sort_keys=True) + "\n")
