"""End-to-end integration tests: feeds -> parse -> normalise -> database -> analysis.

These tests run the whole collection pipeline the paper describes on the
synthetic corpus serialised as NVD-style feeds, and check that the analysis
results computed from the re-ingested data agree with the results computed
from the in-memory corpus (i.e. nothing is lost or distorted along the way).
"""

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.pairs import PairAnalysis
from repro.core.enums import ServerConfiguration, ValidityStatus
from repro.db.ingest import IngestPipeline
from repro.db import queries
from repro.reports.experiments import run_experiment


@pytest.fixture(scope="module")
def reingested(corpus_module, tmp_path_factory):
    """The corpus written as XML feeds and ingested back through the pipeline."""
    directory = tmp_path_factory.mktemp("feeds")
    paths = corpus_module.write_xml_feeds(directory)
    pipeline = IngestPipeline()
    report = pipeline.ingest_xml_feeds(paths)
    return pipeline, report


@pytest.fixture(scope="module")
def corpus_module():
    from repro.synthetic.corpus import build_corpus

    return build_corpus()


class TestPipeline:
    def test_nothing_is_dropped(self, reingested, corpus_module):
        _pipeline, report = reingested
        assert report.parsed_entries == len(corpus_module.entries)
        assert report.ingested_entries == len(corpus_module.entries)
        assert report.skipped_no_os == 0

    def test_validity_recovered_from_descriptions(self, reingested, corpus_module):
        pipeline, report = reingested
        assert report.by_validity["Valid"] == len(corpus_module.valid_entries)
        assert report.by_validity["Unknown"] == 60
        assert report.by_validity["Unspecified"] == 165
        assert report.by_validity["Disputed"] == 8

    def test_distinct_valid_count_in_database(self, reingested, corpus_module):
        pipeline, _report = reingested
        assert queries.distinct_valid_count(pipeline.database) == len(
            corpus_module.valid_entries
        )

    def test_classification_recovered_from_descriptions(self, reingested, corpus_module):
        """The rule classifier recovers the intended class for the whole corpus."""
        pipeline, _report = reingested
        sql_counts = queries.os_class_counts(pipeline.database)
        by_id = {e.cve_id: e for e in corpus_module.valid_entries}
        loaded = pipeline.database.load_entries(only_valid=True)
        mismatches = sum(
            1
            for entry in loaded
            if by_id[entry.cve_id].component_class is not entry.component_class
        )
        assert mismatches == 0
        assert sql_counts["Debian"]["Application"] == 142

    def test_pair_analysis_identical_after_roundtrip(self, reingested, corpus_module):
        pipeline, _report = reingested
        reloaded = VulnerabilityDataset(pipeline.database.load_entries(only_valid=True))
        original = VulnerabilityDataset(corpus_module.valid_entries)
        for configuration in ServerConfiguration:
            a = PairAnalysis(reloaded).shared_matrix(configuration)
            b = PairAnalysis(original).shared_matrix(configuration)
            assert a == b

    def test_sql_pair_counts_match_memory(self, reingested, corpus_module):
        pipeline, _report = reingested
        sql_isolated = queries.pair_shared_counts(
            pipeline.database, exclude_applications=True, only_remote=True
        )
        original = VulnerabilityDataset(corpus_module.valid_entries)
        memory = PairAnalysis(original).shared_matrix(ServerConfiguration.ISOLATED_THIN)
        for pair, count in memory.items():
            assert sql_isolated.get(tuple(sorted(pair)), 0) == count

    def test_versions_survive_roundtrip(self, reingested, corpus_module):
        pipeline, _report = reingested
        loaded = {e.cve_id: e for e in pipeline.database.load_entries(only_valid=True)}
        tagged = [
            e for e in corpus_module.valid_entries
            if e.affected_versions.get("Debian")
        ][:50]
        assert tagged
        for entry in tagged:
            assert loaded[entry.cve_id].affected_versions["Debian"] == tuple(
                entry.affected_versions["Debian"]
            )


class TestExperimentsAfterRoundtrip:
    def test_key_experiments_still_reproduce(self, reingested):
        pipeline, _report = reingested
        dataset = VulnerabilityDataset(pipeline.database.load_entries())
        table3 = run_experiment("Table III", dataset)
        assert table3.measured == table3.paper_values
        figure3 = run_experiment("Figure 3", dataset)
        assert figure3.measured["Debian history"] == 16
        assert figure3.measured["Debian observed"] == 9
