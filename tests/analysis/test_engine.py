"""Unit tests for the bitset incidence-matrix engine."""

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.engine import IncidenceIndex
from repro.core.enums import ServerConfiguration
from tests.conftest import make_entry


@pytest.fixture()
def entries():
    return [
        make_entry(cve_id="CVE-2005-0001", oses=("Debian", "RedHat", "Ubuntu")),
        make_entry(cve_id="CVE-2005-0002", oses=("Debian", "RedHat")),
        make_entry(cve_id="CVE-2005-0003", oses=("OpenBSD",)),
        make_entry(cve_id="CVE-2005-0004", oses=("OpenBSD", "NetBSD", "FreeBSD")),
        make_entry(cve_id="CVE-2005-0005", oses=("Debian",)),
    ]


@pytest.fixture()
def index(entries):
    return IncidenceIndex(entries, ("Debian", "RedHat", "Ubuntu", "OpenBSD", "NetBSD", "FreeBSD"))


class TestMasks:
    def test_os_mask_bits_follow_entry_order(self, index):
        # Debian affects entries 0, 1 and 4.
        assert index.os_mask("Debian") == 0b10011
        assert index.os_mask("OpenBSD") == 0b01100

    def test_unknown_os_has_empty_mask(self, index):
        assert index.os_mask("Windows2000") == 0
        assert index.count_for("Windows2000") == 0

    def test_entry_mask_is_the_dual_view(self, index, entries):
        for position, entry in enumerate(entries):
            row = index.entry_mask(position)
            affected = {
                name
                for bit, name in enumerate(index.os_names)
                if row >> bit & 1
            }
            assert affected == set(entry.affected_os) & set(index.os_names)

    def test_count_for_is_popcount(self, index):
        assert index.count_for("Debian") == 3
        assert index.count_for("Ubuntu") == 1

    def test_len_and_entries(self, index, entries):
        assert len(index) == len(entries)
        assert list(index.entries) == entries


class TestSharedPrimitives:
    def test_shared_count_pairs(self, index):
        assert index.shared_count(("Debian", "RedHat")) == 2
        assert index.shared_count(("Debian", "OpenBSD")) == 0

    def test_shared_count_folds_over_many(self, index):
        assert index.shared_count(("Debian", "RedHat", "Ubuntu")) == 1
        assert index.shared_count(("OpenBSD", "NetBSD", "FreeBSD")) == 1

    def test_shared_count_empty_and_single(self, index):
        assert index.shared_count(()) == 0
        assert index.shared_count(("Debian",)) == 3

    def test_shared_entries_preserve_dataset_order(self, index):
        shared = index.shared_entries(("Debian", "RedHat"))
        assert [entry.cve_id for entry in shared] == ["CVE-2005-0001", "CVE-2005-0002"]

    def test_affecting_at_least(self, index):
        assert len(index.affecting_at_least(2)) == 3
        assert [e.cve_id for e in index.affecting_at_least(3)] == [
            "CVE-2005-0001",
            "CVE-2005-0004",
        ]

    def test_breadth_histogram(self, index):
        assert index.breadth_histogram() == {1: 2, 2: 1, 3: 2}


class TestPairAndKSet:
    def test_pair_matrix_matches_pointwise_counts(self, index):
        names = index.os_names
        matrix = index.pair_matrix(names)
        assert len(matrix) == len(names) * (len(names) - 1) // 2
        for (os_a, os_b), count in matrix.items():
            assert count == index.shared_count((os_a, os_b))

    def test_k_set_totals_match_bruteforce(self, index):
        import itertools

        names = index.os_names
        for k in (2, 3, 4):
            totals = index.k_set_totals(names, k)
            expected = {
                combo: index.shared_count(combo)
                for combo in itertools.combinations(names, k)
            }
            assert totals == expected

    def test_k_set_totals_emit_combination_order(self, index):
        import itertools

        names = index.os_names
        totals = index.k_set_totals(names, 3)
        assert list(totals) == list(itertools.combinations(names, 3))

    def test_k_set_totals_rejects_bad_k(self, index):
        with pytest.raises(ValueError):
            index.k_set_totals(index.os_names, 0)
        with pytest.raises(ValueError):
            index.k_set_totals(index.os_names, 99)

    def test_k_set_totals_on_empty_corpus(self):
        index = IncidenceIndex((), ("A", "B", "C"))
        assert index.k_set_totals(("A", "B", "C"), 2) == {
            ("A", "B"): 0,
            ("A", "C"): 0,
            ("B", "C"): 0,
        }


class TestCompromising:
    def test_threshold_two(self, index):
        hit = index.compromising_entries(("Debian", "RedHat", "OpenBSD"))
        assert [e.cve_id for e in hit] == ["CVE-2005-0001", "CVE-2005-0002"]

    def test_threshold_one_is_the_union(self, index):
        hit = index.compromising_entries(("Ubuntu", "NetBSD"), threshold=1)
        assert [e.cve_id for e in hit] == ["CVE-2005-0001", "CVE-2005-0004"]

    def test_duplicates_count_with_multiplicity(self, index):
        # Two Debian replicas: every Debian vulnerability hits both.
        hit = index.compromising_entries(("Debian", "Debian"), threshold=2)
        assert [e.cve_id for e in hit] == [
            "CVE-2005-0001",
            "CVE-2005-0002",
            "CVE-2005-0005",
        ]

    def test_unknown_names_are_ignored(self, index):
        assert index.compromising_entries(("Windows2000", "Windows2003")) == []


class TestDatasetFacade:
    def test_engine_default_and_validation(self, entries):
        assert VulnerabilityDataset(entries).engine == "bitset"
        assert VulnerabilityDataset(entries, engine="naive").engine == "naive"
        with pytest.raises(ValueError):
            VulnerabilityDataset(entries, engine="quantum")

    def test_with_engine_round_trip(self, entries):
        dataset = VulnerabilityDataset(entries)
        assert dataset.with_engine("bitset") is dataset
        naive = dataset.with_engine("naive")
        assert naive.engine == "naive"
        assert naive.shared_count(("Debian", "RedHat")) == dataset.shared_count(
            ("Debian", "RedHat")
        )

    def test_derived_datasets_inherit_engine(self, entries):
        naive = VulnerabilityDataset(entries, engine="naive")
        assert naive.valid().engine == "naive"
        assert naive.filtered(ServerConfiguration.FAT).engine == "naive"
        import datetime as dt

        assert naive.between(dt.date(1994, 1, 1), dt.date(2010, 12, 31)).engine == "naive"

    def test_incidence_is_cached_and_always_available(self, entries):
        naive = VulnerabilityDataset(entries, engine="naive")
        assert naive.incidence is naive.incidence
        assert naive.incidence.shared_count(("Debian", "RedHat")) == 2

    def test_compromising_threshold_zero_matches_naive(self, entries):
        """threshold <= 0 admits every entry on both engines."""
        fast = VulnerabilityDataset(entries)
        naive = VulnerabilityDataset(entries, engine="naive")
        group = ("Debian", "RedHat")
        assert fast.compromising(group, 0) == naive.compromising(group, 0) == entries

    def test_facades_agree_with_naive_on_fixture(self, entries):
        fast = VulnerabilityDataset(entries)
        naive = VulnerabilityDataset(entries, engine="naive")
        for names in (("Debian",), ("Debian", "RedHat"), ("Debian", "OpenBSD", "NetBSD")):
            assert fast.shared_between(names) == naive.shared_between(names)
        for k in (1, 2, 3):
            assert fast.affecting_at_least(k) == naive.affecting_at_least(k)
        group = ("Debian", "RedHat", "OpenBSD")
        assert fast.compromising(group) == naive.compromising(group)


class TestPickling:
    """Compiled engine state must ship cleanly between runner processes."""

    def test_incidence_index_round_trips_through_pickle(self, index, entries):
        import pickle

        clone = pickle.loads(pickle.dumps(index))
        assert clone.os_names == index.os_names
        assert clone.entries == index.entries
        for name in index.os_names:
            assert clone.os_mask(name) == index.os_mask(name)
        for position in range(len(entries)):
            assert clone.entry_mask(position) == index.entry_mask(position)
        assert clone.pair_matrix(("Debian", "RedHat", "OpenBSD")) == index.pair_matrix(
            ("Debian", "RedHat", "OpenBSD")
        )

    def test_replica_incidence_round_trips_through_pickle(self, entries):
        import pickle

        from repro.analysis.engine import ReplicaIncidence

        incidence = ReplicaIncidence(entries, ("Debian", "Debian", "OpenBSD", "RedHat"))
        clone = pickle.loads(pickle.dumps(incidence))
        assert clone.replica_os_names == incidence.replica_os_names
        assert clone.victim_masks == incidence.victim_masks
        assert clone.victim_mask_for(("Debian",)) == incidence.victim_mask_for(("Debian",))

    def test_compromise_simulation_round_trips_through_pickle(self, entries):
        """The compiled pool survives pickling and keeps producing identical results."""
        import pickle

        from repro.itsys.simulation import CompromiseSimulation

        simulation = CompromiseSimulation(entries, seed=11)
        simulation._compiled_pool()  # force compilation before pickling
        clone = pickle.loads(pickle.dumps(simulation))
        group = ("Debian", "RedHat", "OpenBSD", "FreeBSD")
        assert clone.run_configuration(
            "g", group, runs=10, horizon=3.0
        ) == simulation.run_configuration("g", group, runs=10, horizon=3.0)
