"""Tests for replica-set selection (Section IV-C) and the summary metrics."""

import pytest

from repro.analysis.metrics import (
    driver_share,
    fat_to_isolated_reduction,
    pairs_with_at_most_one,
    summary_findings,
    top_four_os_groups,
    widest_vulnerabilities,
)
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.selection import (
    ReplicaSetSelector,
    max_tolerated_faults,
    replicas_needed,
)
from repro.core.constants import TABLE5_OSES
from repro.core.exceptions import SelectionError


class TestSizing:
    @pytest.mark.parametrize("f,expected", [(0, 1), (1, 4), (2, 7), (3, 10), (4, 13)])
    def test_replicas_needed_3f1(self, f, expected):
        assert replicas_needed(f) == expected

    @pytest.mark.parametrize("f,expected", [(1, 3), (2, 5), (3, 7)])
    def test_replicas_needed_2f1(self, f, expected):
        assert replicas_needed(f, "2f+1") == expected

    def test_replicas_needed_rejects_negative(self):
        with pytest.raises(SelectionError):
            replicas_needed(-1)

    def test_replicas_needed_rejects_unknown_model(self):
        with pytest.raises(SelectionError):
            replicas_needed(1, "5f+1")

    @pytest.mark.parametrize("n,expected", [(1, 0), (4, 1), (7, 2), (11, 3)])
    def test_max_tolerated_faults_3f1(self, n, expected):
        assert max_tolerated_faults(n) == expected

    def test_max_tolerated_faults_2f1(self):
        assert max_tolerated_faults(7, "2f+1") == 3
        assert max_tolerated_faults(0) == 0


class TestSelectorWithExplicitMatrix:
    MATRIX = {
        ("A", "B"): 10,
        ("A", "C"): 0,
        ("A", "D"): 1,
        ("B", "C"): 2,
        ("B", "D"): 0,
        ("C", "D"): 5,
    }

    def test_requires_dataset_or_matrix(self):
        with pytest.raises(SelectionError):
            ReplicaSetSelector()

    def test_candidates_derived_from_matrix(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        assert selector.candidates == ("A", "B", "C", "D")

    def test_shared_lookup_is_symmetric(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        assert selector.shared("B", "A") == 10
        assert selector.shared("A", "C") == 0

    def test_group_score(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        assert selector.group_score(("A", "B", "C")) == 12
        assert selector.group_score(("A", "C", "D")) == 6

    def test_exhaustive_finds_optimum(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        best = selector.exhaustive(3, top=1)[0]
        assert set(best.os_names) == {"A", "B", "C"} or best.pairwise_shared <= 6
        # The true optimum for n=3 is {A, B, D} with score 11? compute: A-B 10, A-D 1, B-D 0 = 11;
        # {A,C,D}: 0+1+5=6; {B,C,D}: 2+0+5=7; {A,B,C}: 12.  So optimum is {A,C,D}.
        assert set(best.os_names) == {"A", "C", "D"}
        assert best.pairwise_shared == 6

    def test_exhaustive_top_k_ordering(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        ranked = selector.exhaustive(3, top=4)
        scores = [result.pairwise_shared for result in ranked]
        assert scores == sorted(scores)

    def test_greedy_reasonable(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        result = selector.greedy(3)
        assert len(result.os_names) == 3
        assert result.pairwise_shared <= 12

    def test_greedy_with_seed(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        result = selector.greedy(2, seed_os="A")
        assert "A" in result.os_names
        assert result.pairwise_shared == 0  # A-C is the zero edge

    def test_greedy_rejects_unknown_seed(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        with pytest.raises(SelectionError):
            selector.greedy(2, seed_os="Z")

    def test_graph_based_matches_exhaustive_on_small_instance(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        graph = selector.graph_based(3)
        exhaustive = selector.exhaustive(3, top=1)[0]
        assert graph.pairwise_shared == exhaustive.pairwise_shared

    def test_size_validation(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        with pytest.raises(SelectionError):
            selector.exhaustive(0)
        with pytest.raises(SelectionError):
            selector.exhaustive(5)

    def test_single_os_groups(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        assert selector.exhaustive(1, top=1)[0].pairwise_shared == 0
        assert len(selector.greedy(1).os_names) == 1
        assert len(selector.graph_based(1).os_names) == 1

    def test_exhaustive_top_zero_is_empty(self):
        selector = ReplicaSetSelector(pair_matrix=self.MATRIX)
        assert selector.exhaustive(2, top=0) == []

    def test_exhaustive_negative_weights_fall_back_to_enumeration(self):
        matrix = dict(self.MATRIX)
        matrix[("A", "B")] = -5
        selector = ReplicaSetSelector(pair_matrix=matrix)
        best = selector.exhaustive(3, top=2)
        assert best == selector.rank_all(3)[:2]
        assert best[0].pairwise_shared < 0


class TestSelectorOnCorpus:
    def test_history_selection_reproduces_paper_sets(self, valid_dataset):
        """Selecting on 1994-2005 data yields the paper's Set1/Set2 among the top."""
        periods = PeriodAnalysis(valid_dataset)
        selector = ReplicaSetSelector(
            pair_matrix=periods.history_pair_matrix(), candidates=TABLE5_OSES
        )
        top = [set(result.os_names) for result in selector.exhaustive(4, top=3)]
        assert {"Windows2003", "Solaris", "Debian", "OpenBSD"} in top
        assert {"Windows2003", "Solaris", "Debian", "NetBSD"} in top

    def test_best_group_has_few_shared_vulnerabilities(self, valid_dataset):
        selector = ReplicaSetSelector(dataset=valid_dataset, candidates=TABLE5_OSES)
        best = selector.exhaustive(4, top=1)[0]
        worst = selector.rank_all(4)[-1]
        # The most diverse group shares an order of magnitude fewer
        # vulnerabilities than the least diverse one over the whole period.
        assert best.pairwise_shared <= 12
        assert worst.pairwise_shared >= 5 * best.pairwise_shared

    def test_same_family_groups_are_ranked_worst(self, valid_dataset):
        selector = ReplicaSetSelector(dataset=valid_dataset, candidates=TABLE5_OSES)
        ranking = selector.rank_all(4)
        worst = ranking[-1]
        assert {"Windows2000", "Windows2003"} <= set(worst.os_names)

    def test_strategies_agree_on_order_of_magnitude(self, valid_dataset):
        selector = ReplicaSetSelector(dataset=valid_dataset, candidates=TABLE5_OSES)
        exhaustive = selector.exhaustive(4, top=1)[0]
        greedy = selector.greedy(4)
        graph = selector.graph_based(4)
        assert greedy.pairwise_shared <= exhaustive.pairwise_shared + 10
        assert graph.pairwise_shared <= exhaustive.pairwise_shared + 10

    def test_best_for_faults(self, valid_dataset):
        selector = ReplicaSetSelector(dataset=valid_dataset, candidates=TABLE5_OSES)
        result = selector.best_for_faults(1)
        assert len(result.os_names) == 4
        result_2f1 = selector.best_for_faults(2, quorum_model="2f+1", strategy="greedy")
        assert len(result_2f1.os_names) == 5
        with pytest.raises(SelectionError):
            selector.best_for_faults(1, strategy="quantum")

    def test_compromising_counts_at_most_pairwise_sum(self, valid_dataset):
        selector = ReplicaSetSelector(dataset=valid_dataset, candidates=TABLE5_OSES)
        result = selector.exhaustive(4, top=1)[0]
        assert result.compromising <= result.pairwise_shared


class TestSummaryMetrics:
    def test_reduction_in_paper_ballpark(self, valid_dataset):
        assert 45.0 <= fat_to_isolated_reduction(valid_dataset) <= 70.0

    def test_pairs_with_at_most_one_over_half(self, valid_dataset):
        assert pairs_with_at_most_one(valid_dataset) > 50.0

    def test_driver_share_below_two_percent(self, valid_dataset):
        assert driver_share(valid_dataset) < 2.0

    def test_widest_vulnerabilities_include_named_cves(self, valid_dataset):
        cve_ids = {cve for cve, _breadth in widest_vulnerabilities(valid_dataset, top=3)}
        assert {"CVE-2008-1447", "CVE-2007-5365"} & cve_ids

    def test_top_four_os_groups_history(self, valid_dataset):
        groups = top_four_os_groups(valid_dataset, top=3, history_only=True)
        assert len(groups) == 3
        assert all(len(group) == 4 for group in groups)

    def test_summary_findings_bundle(self, valid_dataset):
        findings = summary_findings(valid_dataset)
        as_dict = findings.as_dict()
        assert set(as_dict) == {
            "fat_to_isolated_reduction_pct",
            "pairs_with_at_most_one_pct",
            "top3_four_os_groups",
            "widest_vulnerabilities",
            "driver_share_pct",
        }
        assert findings.pairs_with_at_most_one_pct > 50.0
