"""Test package."""
