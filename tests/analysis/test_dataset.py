"""Tests for the in-memory vulnerability dataset."""

import datetime as dt

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.enums import AccessVector, ComponentClass, ServerConfiguration, ValidityStatus
from tests.conftest import make_entry


@pytest.fixture()
def small_dataset():
    entries = [
        make_entry(cve_id="CVE-2000-0001", oses=("Debian",), year=2000,
                   component_class=ComponentClass.KERNEL),
        make_entry(cve_id="CVE-2004-0002", oses=("Debian", "RedHat"), year=2004,
                   component_class=ComponentClass.APPLICATION),
        make_entry(cve_id="CVE-2007-0003", oses=("Debian", "RedHat", "OpenBSD"), year=2007,
                   component_class=ComponentClass.SYSTEM_SOFTWARE, access=AccessVector.LOCAL),
        make_entry(cve_id="CVE-2008-0004", oses=("Windows2000",), year=2008,
                   component_class=ComponentClass.KERNEL),
        make_entry(cve_id="CVE-2009-0005", oses=("Solaris",), year=2009,
                   validity=ValidityStatus.UNSPECIFIED, component_class=None),
    ]
    return VulnerabilityDataset(entries)


class TestBasics:
    def test_len_and_iteration(self, small_dataset):
        assert len(small_dataset) == 5
        assert len(list(small_dataset)) == 5

    def test_for_os(self, small_dataset):
        assert len(small_dataset.for_os("Debian")) == 3
        assert len(small_dataset.for_os("Windows2000")) == 1

    def test_for_os_unknown_raises(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.for_os("TempleOS")

    def test_valid_excludes_non_valid(self, small_dataset):
        assert len(small_dataset.valid()) == 4

    def test_count_for(self, small_dataset):
        assert small_dataset.count_for("RedHat") == 2

    def test_years(self, small_dataset):
        assert small_dataset.years() == [2000, 2004, 2007, 2008, 2009]


class TestValiditySummary:
    def test_distinct_counts(self, small_dataset):
        summary = small_dataset.validity_summary()
        assert summary.distinct[ValidityStatus.VALID] == 4
        assert summary.distinct[ValidityStatus.UNSPECIFIED] == 1

    def test_per_os_counts(self, small_dataset):
        summary = small_dataset.validity_summary()
        assert summary.valid_count("Debian") == 3
        assert summary.per_os["Solaris"][ValidityStatus.UNSPECIFIED] == 1

    def test_annotate_validity_rederives_from_text(self):
        entries = [make_entry(summary="Unspecified vulnerability in the base system.")]
        dataset = VulnerabilityDataset(entries).annotate_validity()
        assert dataset.validity_summary().distinct[ValidityStatus.UNSPECIFIED] == 1


class TestFiltering:
    def test_filtered_by_configuration(self, small_dataset):
        fat = small_dataset.filtered(ServerConfiguration.FAT)
        thin = small_dataset.filtered(ServerConfiguration.THIN)
        isolated = small_dataset.filtered(ServerConfiguration.ISOLATED_THIN)
        assert len(fat) == 4
        assert len(thin) == 3           # drops the application entry
        assert len(isolated) == 2       # additionally drops the local entry

    def test_between(self, small_dataset):
        subset = small_dataset.between(dt.date(2004, 1, 1), dt.date(2008, 12, 31))
        assert len(subset) == 3

    def test_between_rejects_inverted_range(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.between(dt.date(2010, 1, 1), dt.date(2000, 1, 1))


class TestSharedPrimitives:
    def test_shared_between(self, small_dataset):
        shared = small_dataset.shared_between(("Debian", "RedHat"))
        assert {e.cve_id for e in shared} == {"CVE-2004-0002", "CVE-2007-0003"}

    def test_shared_count_triple(self, small_dataset):
        assert small_dataset.shared_count(("Debian", "RedHat", "OpenBSD")) == 1

    def test_shared_between_empty_input(self, small_dataset):
        assert small_dataset.shared_between(()) == []

    def test_affecting_at_least(self, small_dataset):
        assert len(small_dataset.affecting_at_least(2)) == 2
        assert len(small_dataset.affecting_at_least(3)) == 1

    def test_affecting_at_least_rejects_zero(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.affecting_at_least(0)

    def test_compromising_single_os_group(self, small_dataset):
        assert len(small_dataset.compromising(("Debian",))) == 3

    def test_compromising_diverse_group_requires_two_members(self, small_dataset):
        compromising = small_dataset.compromising(("Debian", "Windows2000"))
        assert compromising == []
        compromising = small_dataset.compromising(("Debian", "RedHat"))
        assert {e.cve_id for e in compromising} == {"CVE-2004-0002", "CVE-2007-0003"}

    def test_compromising_custom_threshold(self, small_dataset):
        group = ("Debian", "RedHat", "OpenBSD")
        assert len(small_dataset.compromising(group, threshold=3)) == 1


class TestCorpusLevelInvariants:
    def test_shared_is_symmetric_on_corpus(self, valid_dataset):
        assert valid_dataset.shared_count(("Debian", "RedHat")) == \
            valid_dataset.shared_count(("RedHat", "Debian"))

    def test_shared_monotone_under_filtering(self, valid_dataset):
        fat = valid_dataset.filtered(ServerConfiguration.FAT)
        isolated = valid_dataset.filtered(ServerConfiguration.ISOLATED_THIN)
        for pair in (("Debian", "RedHat"), ("Windows2000", "Windows2003"), ("OpenBSD", "NetBSD")):
            assert fat.shared_count(pair) >= isolated.shared_count(pair)

    def test_shared_never_exceeds_individual_counts(self, valid_dataset):
        for pair in (("Debian", "RedHat"), ("OpenBSD", "FreeBSD")):
            shared = valid_dataset.shared_count(pair)
            assert shared <= min(valid_dataset.count_for(pair[0]),
                                 valid_dataset.count_for(pair[1]))
