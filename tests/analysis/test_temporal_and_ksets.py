"""Tests for the temporal analysis (Figure 2) and the k-set study (Section IV-B)."""

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.temporal import TemporalAnalysis
from repro.core.enums import ComponentClass, OSFamily, ServerConfiguration
from tests.conftest import make_entry


@pytest.fixture()
def temporal_dataset():
    entries = [
        make_entry(cve_id="CVE-2000-0001", oses=("Debian",), year=2000),
        make_entry(cve_id="CVE-2000-0002", oses=("Debian",), year=2000),
        make_entry(cve_id="CVE-2001-0003", oses=("Debian", "RedHat"), year=2001),
        make_entry(cve_id="CVE-2003-0004", oses=("RedHat",), year=2003),
        make_entry(cve_id="CVE-2007-0005", oses=("Debian",), year=2007),
    ]
    return VulnerabilityDataset(entries)


class TestTemporal:
    def test_series_for_counts_per_year(self, temporal_dataset):
        analysis = TemporalAnalysis(temporal_dataset, 2000, 2007)
        series = analysis.series_for("Debian")
        assert series[2000] == 2
        assert series[2001] == 1
        assert series[2002] == 0
        assert series[2007] == 1

    def test_years_span(self, temporal_dataset):
        analysis = TemporalAnalysis(temporal_dataset, 2000, 2005)
        assert analysis.years == list(range(2000, 2006))

    def test_invalid_year_range_rejected(self, temporal_dataset):
        with pytest.raises(ValueError):
            TemporalAnalysis(temporal_dataset, 2010, 2000)

    def test_family_panels_cover_all_four_families(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        panels = analysis.family_panels()
        assert set(panels) == set(OSFamily)
        assert set(panels[OSFamily.WINDOWS]) == {"Windows2000", "Windows2003", "Windows2008"}

    def test_family_totals_sum_of_members(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        totals = analysis.family_totals()
        panels = analysis.family_panels()
        for family in OSFamily:
            for year in analysis.years:
                assert totals[family][year] == sum(
                    series[year] for series in panels[family].values()
                )

    def test_series_sums_to_os_total(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        assert sum(analysis.series_for("Solaris").values()) == valid_dataset.count_for("Solaris")

    def test_recent_oses_have_no_early_vulnerabilities(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        win2008 = analysis.series_for("Windows2008")
        assert all(win2008[year] == 0 for year in range(1994, 2007))
        opensolaris = analysis.series_for("OpenSolaris")
        assert all(opensolaris[year] == 0 for year in range(1994, 2007))

    def test_recent_vs_past_decline_for_bsd(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        past, recent = analysis.recent_vs_past("OpenBSD")
        assert past > recent  # the paper notes fewer reports in the last 5 years

    def test_windows_family_correlation_positive(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        assert analysis.intra_family_correlation(OSFamily.WINDOWS) > 0.0

    def test_win2000_entries_before_release(self, valid_dataset):
        analysis = TemporalAnalysis(valid_dataset, 1994, 2010)
        early = analysis.entries_before_release("Windows2000")
        assert 1 <= len(early) <= 10


class TestKSets:
    @pytest.fixture()
    def kset_dataset(self):
        entries = [
            make_entry(cve_id="CVE-2005-0001", oses=("Debian", "RedHat", "Ubuntu")),
            make_entry(cve_id="CVE-2005-0002", oses=("Debian", "RedHat")),
            make_entry(cve_id="CVE-2005-0003", oses=("OpenBSD",)),
            make_entry(cve_id="CVE-2005-0004",
                       oses=("OpenBSD", "NetBSD", "FreeBSD", "Solaris")),
        ]
        return VulnerabilityDataset(entries)

    def test_breadth_histogram(self, kset_dataset):
        histogram = KSetAnalysis(kset_dataset).breadth_histogram()
        assert histogram == {1: 1, 2: 1, 3: 1, 4: 1}

    def test_affecting_at_least(self, kset_dataset):
        analysis = KSetAnalysis(kset_dataset)
        assert len(analysis.affecting_at_least(3)) == 2
        assert analysis.affecting_at_least(4)[0].cve_id == "CVE-2005-0004"

    def test_widest(self, kset_dataset):
        widest = KSetAnalysis(kset_dataset).widest(2)
        assert [w.cve_id for w in widest] == ["CVE-2005-0004", "CVE-2005-0001"]

    def test_widest_floors_at_two_oses(self, kset_dataset):
        """widest() seeds from affecting_at_least(2): single-OS entries never
        appear, even when ``top`` exceeds the number of multi-OS entries."""
        widest = KSetAnalysis(kset_dataset).widest(top=10)
        assert [w.cve_id for w in widest] == [
            "CVE-2005-0004",
            "CVE-2005-0001",
            "CVE-2005-0002",
        ]
        assert all(w.breadth >= 2 for w in widest)
        # CVE-2005-0003 affects only OpenBSD and must stay out.
        assert "CVE-2005-0003" not in {w.cve_id for w in widest}

    def test_widest_floor_honours_custom_os_names(self):
        """With a narrower studied set, breadth is floored over that set."""
        entries = [
            make_entry(cve_id="CVE-2005-0001", oses=("OpenBSD", "NetBSD")),
            make_entry(cve_id="CVE-2005-0002", oses=("Debian", "RedHat")),
            make_entry(cve_id="CVE-2005-0003", oses=("Debian", "OpenBSD")),
        ]
        dataset = VulnerabilityDataset(entries)
        analysis = KSetAnalysis(dataset, os_names=("Debian", "RedHat"))
        widest = analysis.widest(top=5)
        # Only the entry affecting two *studied* OSes qualifies; the others
        # have breadth <= 1 over {Debian, RedHat} despite dataset breadth 2.
        assert [w.cve_id for w in widest] == ["CVE-2005-0002"]
        assert all(w.breadth >= 2 for w in widest)

    def test_widest_tie_breaking_order(self):
        """Equal-breadth entries are ordered by ascending CVE identifier."""
        entries = [
            make_entry(cve_id="CVE-2005-0009", oses=("Debian", "RedHat")),
            make_entry(cve_id="CVE-2005-0001", oses=("OpenBSD", "NetBSD")),
            make_entry(cve_id="CVE-2004-0005", oses=("Ubuntu", "Solaris")),
            make_entry(cve_id="CVE-2006-0002",
                       oses=("Debian", "RedHat", "Ubuntu")),
        ]
        widest = KSetAnalysis(VulnerabilityDataset(entries)).widest(top=4)
        assert [w.cve_id for w in widest] == [
            "CVE-2006-0002",   # breadth 3 first
            "CVE-2004-0005",   # then breadth 2, by CVE id
            "CVE-2005-0001",
            "CVE-2005-0009",
        ]

    def test_summary_is_monotone(self, valid_dataset):
        summary = KSetAnalysis(valid_dataset).summary((2, 3, 4, 5, 6))
        values = list(summary.values())
        assert values == sorted(values, reverse=True)

    def test_per_combination_totals(self, kset_dataset):
        analysis = KSetAnalysis(kset_dataset)
        totals = analysis.per_combination_totals(3)
        assert totals[("Debian", "Ubuntu", "RedHat")] == 1
        assert totals[("OpenBSD", "NetBSD", "FreeBSD")] == 1

    def test_per_combination_rejects_bad_k(self, kset_dataset):
        analysis = KSetAnalysis(kset_dataset)
        with pytest.raises(ValueError):
            analysis.per_combination_totals(1)
        with pytest.raises(ValueError):
            analysis.per_combination_totals(99)

    def test_best_and_worst_combinations(self, valid_dataset):
        analysis = KSetAnalysis(valid_dataset, ServerConfiguration.ISOLATED_THIN)
        best = analysis.best_combinations(4, top=3)
        worst = analysis.worst_combinations(4, top=1)
        assert best[0][1] <= best[-1][1]
        assert worst[0][1] >= best[0][1]
        # There is at least one four-OS combination with no vulnerability
        # common to all four members, while the worst combination (same-family
        # heavy) still has several.
        assert best[0][1] == 0
        assert worst[0][1] >= 2
        from repro.core.constants import family_of

        families = {family_of(name) for name in worst[0][0]}
        assert len(families) < 4

    def test_special_cves_are_the_widest_on_corpus(self, valid_dataset):
        widest = KSetAnalysis(valid_dataset).widest(3)
        cve_ids = {w.cve_id for w in widest}
        assert "CVE-2008-1447" in cve_ids
        assert "CVE-2007-5365" in cve_ids

    def test_combinations_fully_covered(self, kset_dataset):
        analysis = KSetAnalysis(kset_dataset)
        assert analysis.combinations_fully_covered(4) == 1
