"""Tests for the discovery-model fitting and the sensitivity/ablation analyses."""

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.discovery import DiscoveryModelAnalysis, ModelFit, _r_squared
from repro.analysis.sensitivity import SensitivityAnalysis
from repro.core.constants import TABLE5_OSES
from tests.conftest import make_entry

import numpy as np


class TestRSquared:
    def test_perfect_fit(self):
        observed = np.array([1.0, 2.0, 3.0])
        assert _r_squared(observed, observed) == 1.0

    def test_mean_prediction_scores_zero(self):
        observed = np.array([1.0, 2.0, 3.0])
        predicted = np.full(3, observed.mean())
        assert _r_squared(observed, predicted) == pytest.approx(0.0)

    def test_constant_series(self):
        observed = np.array([5.0, 5.0, 5.0])
        assert _r_squared(observed, observed) == 1.0
        assert _r_squared(observed, observed + 1.0) == 0.0


class TestDiscoveryModels:
    @pytest.fixture(scope="class")
    def analysis(self, valid_dataset):
        return DiscoveryModelAnalysis(valid_dataset)

    def test_cumulative_series_is_monotone(self, analysis):
        years, cumulative = analysis.cumulative_series("Solaris")
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 400  # Solaris total from Table I

    def test_cumulative_series_trims_leading_zeros(self, analysis):
        years, cumulative = analysis.cumulative_series("Windows2008")
        assert years[0] >= 2007
        assert cumulative[0] > 0

    def test_linear_fit_reasonable(self, analysis):
        fit = analysis.fit_linear("Windows2000")
        assert fit.model == "linear"
        assert fit.r_squared > 0.8
        assert fit.parameters[1] > 0  # positive slope

    def test_logistic_fit_reasonable(self, analysis):
        fit = analysis.fit_logistic("Windows2000")
        assert fit.model == "logistic"
        assert fit.r_squared > 0.8
        # The saturation estimate is at least the observed total.
        assert fit.parameters[1] >= 400

    def test_predict_matches_predictions(self, analysis):
        fit = analysis.fit_linear("Debian")
        assert fit.predict(0.0) == pytest.approx(fit.predictions[0])

    def test_fit_requires_enough_data(self):
        tiny = VulnerabilityDataset([make_entry(cve_id="CVE-2005-0001", oses=("Debian",))])
        with pytest.raises(ValueError):
            DiscoveryModelAnalysis(tiny, 2005, 2005).fit_linear("Debian")
        with pytest.raises(ValueError):
            DiscoveryModelAnalysis(tiny, 2005, 2007).fit_logistic("Debian")

    def test_compare_models_returns_both(self, analysis):
        fits = analysis.compare_models("RedHat")
        assert set(fits) == {"linear", "logistic"}
        assert all(isinstance(fit, ModelFit) for fit in fits.values())

    def test_best_model_per_os_covers_major_oses(self, analysis):
        winners = analysis.best_model_per_os(TABLE5_OSES)
        assert set(winners) == set(TABLE5_OSES)
        assert set(winners.values()) <= {"linear", "logistic"}

    def test_saturation_estimates_bounded_below_by_observed(self, analysis, valid_dataset):
        estimates = analysis.saturation_estimates(("Solaris", "Windows2000"))
        assert estimates["Solaris"] >= valid_dataset.count_for("Solaris") * 0.5
        assert estimates["Windows2000"] >= valid_dataset.count_for("Windows2000") * 0.5


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sensitivity(self, dataset):
        return SensitivityAnalysis(dataset)

    def test_validity_filter_ablation(self, sensitivity):
        result = sensitivity.validity_filter_ablation()
        assert 0.0 <= result.baseline <= 100.0
        assert 0.0 <= result.variant <= 100.0
        # Adding ~230 extra (mostly single-OS) entries cannot increase the
        # share of pairs with at most one common vulnerability by much.
        assert result.variant <= result.baseline + 5.0

    def test_configuration_ablation_shows_filter_value(self, sensitivity):
        results = {result.name: result for result in sensitivity.configuration_ablation()}
        assert len(results) == 2
        for result in results.values():
            # The Isolated Thin profile (baseline) always yields at least as
            # many low-sharing pairs as the fatter profiles.
            assert result.baseline >= result.variant

    def test_split_year_sensitivity_recommendations_are_stable(self, sensitivity):
        recommendations = sensitivity.split_year_sensitivity((2004, 2005, 2006))
        assert set(recommendations) == {2004, 2005, 2006}
        for group in recommendations.values():
            assert len(group) == 4
            # Windows and Solaris cross-family members keep appearing.
            assert "Windows2003" in group or "Windows2000" in group

    def test_seed_sensitivity_reduction_stable(self, sensitivity):
        values = sensitivity.seed_sensitivity(seeds=(1, 2), statistic="reduction")
        assert set(values) == {1, 2}
        for value in values.values():
            assert 45.0 <= value <= 70.0

    def test_seed_sensitivity_unknown_statistic(self, sensitivity):
        with pytest.raises(ValueError):
            sensitivity.seed_sensitivity(seeds=(1,), statistic="bogus")

    def test_leave_one_os_out(self, sensitivity):
        recommendations = sensitivity.leave_one_os_out()
        assert set(recommendations) == set(TABLE5_OSES)
        for excluded, group in recommendations.items():
            assert excluded not in group
            assert len(group) == 4
