"""Tests for the history/observed analysis (Table V, Figure 3) and Table VI."""

import datetime as dt

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.releases import ReleaseDiversityAnalysis
from repro.core.constants import TABLE5_OSES
from repro.core.enums import AccessVector, ComponentClass
from tests.conftest import make_entry


@pytest.fixture()
def period_dataset():
    entries = [
        make_entry(cve_id="CVE-2000-0001", oses=("Debian", "RedHat"), year=2000),
        make_entry(cve_id="CVE-2004-0002", oses=("Debian", "RedHat"), year=2004),
        make_entry(cve_id="CVE-2008-0003", oses=("Debian", "RedHat"), year=2008),
        make_entry(cve_id="CVE-2007-0004", oses=("Debian",), year=2007),
        make_entry(cve_id="CVE-2009-0005", oses=("Debian",), year=2009,
                   component_class=ComponentClass.APPLICATION),
        make_entry(cve_id="CVE-2003-0006", oses=("OpenBSD", "Windows2003"), year=2003,
                   access=AccessVector.LOCAL),
    ]
    return VulnerabilityDataset(entries)


class TestPeriodAnalysis:
    def test_split_sizes(self, period_dataset):
        analysis = PeriodAnalysis(period_dataset)
        history, observed = analysis.split_sizes()
        # Isolated-thin filter removes the application and local entries.
        assert history == 2
        assert observed == 2

    def test_pair_table(self, period_dataset):
        analysis = PeriodAnalysis(period_dataset)
        table = analysis.pair_table(("Debian", "RedHat"))
        assert table[("Debian", "RedHat")] == (2, 1)

    def test_os_counts(self, period_dataset):
        analysis = PeriodAnalysis(period_dataset)
        counts = analysis.os_counts(("Debian",))
        assert counts["Debian"] == (2, 2)

    def test_invalid_periods_rejected(self, period_dataset):
        with pytest.raises(ValueError):
            PeriodAnalysis(
                period_dataset,
                history_period=(dt.date(1994, 1, 1), dt.date(2007, 1, 1)),
                observed_period=(dt.date(2006, 1, 1), dt.date(2010, 9, 30)),
            )

    def test_evaluate_single_os_configuration(self, period_dataset):
        analysis = PeriodAnalysis(period_dataset)
        evaluation = analysis.evaluate_configuration("Debian", ("Debian",))
        assert evaluation.history_count == 2
        assert evaluation.observed_count == 2

    def test_evaluate_diverse_configuration(self, period_dataset):
        analysis = PeriodAnalysis(period_dataset)
        evaluation = analysis.evaluate_configuration("pair", ("Debian", "RedHat"))
        assert evaluation.history_count == 2
        assert evaluation.observed_count == 1
        assert evaluation.improved_over_history

    def test_history_and_observed_matrices(self, period_dataset):
        analysis = PeriodAnalysis(period_dataset)
        assert analysis.history_pair_matrix(("Debian", "RedHat"))[("Debian", "RedHat")] == 2
        assert analysis.observed_pair_matrix(("Debian", "RedHat"))[("Debian", "RedHat")] == 1


class TestPeriodAnalysisOnCorpus:
    def test_history_has_roughly_two_thirds_of_the_data(self, valid_dataset):
        from repro.core.constants import HISTORY_PERIOD, OBSERVED_PERIOD

        history = valid_dataset.between(*HISTORY_PERIOD)
        observed = valid_dataset.between(*OBSERVED_PERIOD)
        fraction = len(history) / (len(history) + len(observed))
        assert 0.55 <= fraction <= 0.8  # the paper says 2/3 vs 1/3

    def test_table5_pairs_sum_to_isolated_counts(self, valid_dataset):
        from repro.analysis.pairs import PairAnalysis
        from repro.core.enums import ServerConfiguration

        analysis = PeriodAnalysis(valid_dataset)
        pair_analysis = PairAnalysis(valid_dataset, TABLE5_OSES)
        isolated = pair_analysis.shared_matrix(ServerConfiguration.ISOLATED_THIN)
        table = analysis.pair_table()
        for pair, (history, observed) in table.items():
            assert history + observed == isolated[pair]

    def test_figure3_diverse_sets_beat_single_debian(self, valid_dataset):
        analysis = PeriodAnalysis(valid_dataset)
        evaluations = {e.name: e for e in analysis.evaluate_paper_configurations()}
        debian = evaluations["Debian"]
        for name in ("Set1", "Set2", "Set3"):
            assert evaluations[name].observed_count < debian.observed_count

    def test_figure3_debian_matches_paper(self, valid_dataset):
        analysis = PeriodAnalysis(valid_dataset)
        evaluations = {e.name: e for e in analysis.evaluate_paper_configurations()}
        assert evaluations["Debian"].history_count == 16
        assert evaluations["Debian"].observed_count == 9


class TestReleaseDiversity:
    @pytest.fixture()
    def release_dataset(self):
        entries = [
            make_entry(cve_id="CVE-2003-0001", oses=("Debian",),
                       versions={"Debian": ("3.0",)}),
            make_entry(cve_id="CVE-2008-0002", oses=("Debian",),
                       versions={"Debian": ("3.0", "4.0")}),
            make_entry(cve_id="CVE-2008-0003", oses=("Debian", "RedHat"),
                       versions={"Debian": ("4.0",), "RedHat": ("4.0", "5.0")}),
            make_entry(cve_id="CVE-2000-0004", oses=("RedHat",),
                       versions={"RedHat": ("6.2*",)}),
        ]
        return VulnerabilityDataset(entries)

    def test_count_for_release(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        assert analysis.count_for_release("Debian", "3.0") == 2
        assert analysis.count_for_release("Debian", "4.0") == 2
        assert analysis.count_for_release("RedHat", "6.2*") == 1

    def test_shared_between_releases_same_os(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        assert analysis.shared_between_releases(("Debian", "3.0"), ("Debian", "4.0")) == 1

    def test_shared_between_releases_cross_os(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        assert analysis.shared_between_releases(("Debian", "4.0"), ("RedHat", "5.0")) == 1
        assert analysis.shared_between_releases(("Debian", "3.0"), ("RedHat", "6.2*")) == 0

    def test_identical_releases_rejected(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        with pytest.raises(ValueError):
            analysis.shared_between_releases(("Debian", "4.0"), ("Debian", "4.0"))

    def test_unknown_os_rejected(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        with pytest.raises(KeyError):
            analysis.release_pair_table({"TempleOS": ["1.0"], "Debian": ["4.0"]})

    def test_release_pair_table_structure(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        results = analysis.release_pair_table({"Debian": ["3.0", "4.0"], "RedHat": ["5.0"]})
        assert len(results) == 3
        same_os = [r for r in results if r.same_os]
        assert len(same_os) == 1

    def test_table6_on_corpus_matches_paper(self, valid_dataset):
        analysis = ReleaseDiversityAnalysis(valid_dataset)
        results = {
            (r.release_a, r.release_b): r.shared for r in analysis.table6()
        }
        assert results[(("Debian", "3.0"), ("Debian", "4.0"))] == 1
        assert results[(("Debian", "4.0"), ("RedHat", "4.0"))] == 1
        assert results[(("Debian", "4.0"), ("RedHat", "5.0"))] == 1
        assert results[(("Debian", "2.1"), ("RedHat", "6.2*"))] == 0
        # Most release pairs share nothing (the paper's Section IV-D point).
        zero_cells = sum(1 for value in results.values() if value == 0)
        assert zero_cells >= 10

    def test_disjoint_release_pairs(self, release_dataset):
        analysis = ReleaseDiversityAnalysis(release_dataset)
        disjoint = analysis.disjoint_release_pairs({"Debian": ["3.0"], "RedHat": ["6.2*"]})
        assert disjoint == [(("Debian", "3.0"), ("RedHat", "6.2*"))]

    def test_effective_diversity_gain(self, valid_dataset):
        analysis = ReleaseDiversityAnalysis(valid_dataset)
        distribution_level, release_level = analysis.effective_diversity_gain(
            "Debian", "RedHat", {"Debian": ["2.1", "3.0", "4.0"], "RedHat": ["6.2*", "4.0", "5.0"]}
        )
        assert distribution_level >= 10  # Table III: 11 shared isolated-thin vulns
        assert release_level == 0        # but specific release pairs share none
