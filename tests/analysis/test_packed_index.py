"""Unit tests for the numpy packed-word engine (:class:`PackedIndex`).

The cross-engine behaviour is pinned by ``test_engine_equivalence.py``;
this file covers the packed-specific machinery: word packing and popcounts
(including the pre-numpy-2.0 ``unpackbits`` fallback), pickling for the
process-pool runner, and the incremental :meth:`PackedIndex.apply_diff`
path with its rebuild fallback.
"""

import pickle

import numpy as np
import pytest

import repro.analysis.engine as engine_module
from repro.analysis.engine import (
    PATCH_REBUILD_FRACTION,
    PackedIndex,
    pack_bool_matrix,
    word_popcounts,
)
from repro.snapshots.diff import SnapshotDiff
from tests.conftest import make_entry

CATALOGUE = ("Debian", "RedHat", "Ubuntu", "OpenBSD", "NetBSD", "FreeBSD")


@pytest.fixture()
def entries():
    return [
        make_entry(cve_id="CVE-2005-0001", oses=("Debian", "RedHat", "Ubuntu")),
        make_entry(cve_id="CVE-2005-0002", oses=("Debian", "RedHat")),
        make_entry(cve_id="CVE-2005-0003", oses=("OpenBSD",)),
        make_entry(cve_id="CVE-2005-0004", oses=("OpenBSD", "NetBSD", "FreeBSD")),
        make_entry(cve_id="CVE-2005-0005", oses=("Debian",)),
    ]


@pytest.fixture()
def index(entries):
    return PackedIndex(entries, CATALOGUE)


def _diff(index, added=(), modified=(), removed=()):
    """A hand-rolled SnapshotDiff from this index's entry set."""
    by_id = {entry.cve_id: entry for entry in index.entries}
    return SnapshotDiff(
        from_snapshot=None,
        to_snapshot=None,
        added=tuple(sorted(entry.cve_id for entry in added)),
        modified=tuple(sorted(entry.cve_id for entry in modified)),
        removed=tuple(sorted(removed)),
        old_entries={
            cve_id: by_id[cve_id]
            for cve_id in (*[e.cve_id for e in modified], *removed)
        },
        new_entries={entry.cve_id: entry for entry in (*added, *modified)},
    )


class TestWordPacking:
    def test_rows_follow_little_endian_bit_order(self, index):
        # Debian affects entries 0, 1 and 4 -> bits 0, 1 and 4 of word 0.
        assert int(index.os_row("Debian")[0]) == 0b10011
        assert int(index.os_row("OpenBSD")[0]) == 0b01100
        assert index.words_per_row == 1

    def test_unknown_os_resolves_to_zero_row(self, index):
        assert not index.os_row("Windows2000").any()
        assert index.count_for("Windows2000") == 0

    def test_padding_bits_are_zero(self):
        matrix = np.ones((2, 65), dtype=bool)
        packed = pack_bool_matrix(matrix)
        assert packed.shape == (2, 2)
        assert int(word_popcounts(packed).sum()) == 130

    @pytest.mark.parametrize("columns", (0, 1, 63, 64, 65, 200))
    def test_pack_round_trips_random_matrices(self, columns):
        rng = np.random.default_rng(columns)
        matrix = rng.random((5, columns)) < 0.4
        packed = pack_bool_matrix(matrix)
        assert packed.shape == (5, (columns + 63) // 64)
        assert word_popcounts(packed).sum() == matrix.sum()

    def test_unpackbits_fallback_matches_bitwise_count(self, monkeypatch, index):
        rng = np.random.default_rng(7)
        words = rng.integers(0, 2**63, size=(4, 9), dtype=np.uint64)
        fast = word_popcounts(words)
        monkeypatch.setattr(engine_module, "_HAS_BITWISE_COUNT", False)
        slow = word_popcounts(words)
        assert np.array_equal(fast, slow)
        # Whole queries keep working on the fallback path too.
        assert index.shared_count(("Debian", "RedHat")) == 2
        assert index.pair_matrix(CATALOGUE) == PackedIndex(
            index.entries, CATALOGUE
        ).pair_matrix(CATALOGUE)


class TestPickling:
    """Packed state must ship cleanly between runner processes."""

    def test_round_trips_through_pickle(self, index, entries):
        clone = pickle.loads(pickle.dumps(index))
        assert clone.os_names == index.os_names
        assert clone.entries == index.entries
        assert np.array_equal(clone._bool_matrix(), index._bool_matrix())
        assert np.array_equal(clone._rows, index._rows)
        assert clone.pair_matrix(CATALOGUE) == index.pair_matrix(CATALOGUE)
        assert clone.k_set_totals(CATALOGUE, 3) == index.k_set_totals(CATALOGUE, 3)

    def test_empty_index_round_trips(self):
        clone = pickle.loads(pickle.dumps(PackedIndex([], CATALOGUE)))
        assert len(clone) == 0
        assert clone.shared_count(("Debian", "RedHat")) == 0

    def test_packed_dataset_round_trips(self, entries):
        from repro.analysis.dataset import VulnerabilityDataset

        dataset = VulnerabilityDataset(entries, CATALOGUE, engine="packed").compile()
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone.engine == "packed"
        assert clone.shared_between(("Debian", "RedHat")) == dataset.shared_between(
            ("Debian", "RedHat")
        )


class TestApplyDiff:
    def test_empty_diff_returns_self(self, index):
        assert index.apply_diff(_diff(index)) is index

    def test_added_modified_removed_columns_match_recompile(self, index, entries):
        added = make_entry(cve_id="CVE-2005-0009", oses=("NetBSD", "FreeBSD"))
        modified = make_entry(cve_id="CVE-2005-0002", oses=("Ubuntu",), month=1)
        patched = index.apply_diff(
            _diff(index, added=[added], modified=[modified], removed=["CVE-2005-0003"])
        )
        final = sorted(
            [entries[0], modified, entries[3], entries[4], added],
            key=lambda entry: (entry.published, entry.cve_id),
        )
        fresh = PackedIndex(final, CATALOGUE)
        assert patched.entries == fresh.entries
        assert np.array_equal(patched._bool_matrix(), fresh._bool_matrix())
        assert np.array_equal(patched._rows, fresh._rows)

    def test_insertion_reorders_existing_columns(self, index, entries):
        """An add published before existing entries shifts every bit right."""
        early = make_entry(cve_id="CVE-2005-0000", oses=("Debian",), month=1)
        patched = index.apply_diff(_diff(index, added=[early]))
        fresh = PackedIndex(
            sorted(
                [*entries, early],
                key=lambda entry: (entry.published, entry.cve_id),
            ),
            CATALOGUE,
        )
        assert patched.entries == fresh.entries
        assert np.array_equal(patched._rows, fresh._rows)
        assert int(patched.os_row("Debian")[0]) == 0b100111

    def test_large_blast_radius_falls_back_to_rebuild(self, index, monkeypatch):
        calls = []
        original = PackedIndex.__init__

        def spy(self, *args, **kwargs):
            calls.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(PackedIndex, "__init__", spy)
        removed = [entry.cve_id for entry in index.entries[:3]]
        patched = index.apply_diff(_diff(index, removed=removed))
        assert calls, "a >25% diff must recompile from scratch"
        assert patched.entries == index.entries[3:]

    def test_small_blast_radius_avoids_rebuild(self, monkeypatch):
        entries = [
            make_entry(cve_id=f"CVE-2005-{1000 + i}", oses=("Debian",))
            for i in range(40)
        ]
        index = PackedIndex(entries, CATALOGUE)
        calls = []
        original = PackedIndex.__init__

        def spy(self, *args, **kwargs):
            calls.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(PackedIndex, "__init__", spy)
        assert len(index.entries) * PATCH_REBUILD_FRACTION > 1
        patched = index.apply_diff(_diff(index, removed=[entries[0].cve_id]))
        assert not calls, "a 1-entry diff must take the column-gather path"
        assert patched.entries == tuple(entries[1:])
        assert np.array_equal(
            patched._rows, PackedIndex(entries[1:], CATALOGUE)._rows
        )


class TestInPlaceWordPatch:
    """Modification-only diffs must take the word-patch fast path."""

    def test_modification_only_diff_patches_words_in_place(self, index, entries):
        modified = make_entry(cve_id="CVE-2005-0002", oses=("Ubuntu", "NetBSD"))
        patched = index.apply_diff(_diff(index, modified=[modified]))
        # The signature of the fast path: no boolean plane was materialised.
        assert patched._bool is None
        fresh = PackedIndex([entries[0], modified, *entries[2:]], CATALOGUE)
        assert patched.entries == fresh.entries
        assert np.array_equal(patched._rows, fresh._rows)
        assert np.array_equal(patched._bool_matrix(), fresh._bool_matrix())

    def test_date_changing_modification_falls_back_to_the_gather(
        self, index, entries
    ):
        moved = make_entry(cve_id="CVE-2005-0002", oses=("Ubuntu",), month=12)
        patched = index.apply_diff(_diff(index, modified=[moved]))
        assert patched._bool is not None  # the gather builds the matrix
        fresh = PackedIndex(
            sorted(
                [entries[0], moved, *entries[2:]],
                key=lambda entry: (entry.published, entry.cve_id),
            ),
            CATALOGUE,
        )
        assert patched.entries == fresh.entries
        assert np.array_equal(patched._rows, fresh._rows)

    def test_unknown_modified_id_falls_back_to_the_gather(self, index):
        stranger = make_entry(cve_id="CVE-2005-9999", oses=("Debian",))
        diff = SnapshotDiff(
            from_snapshot=None,
            to_snapshot=None,
            added=(),
            modified=(stranger.cve_id,),
            removed=(),
            old_entries={stranger.cve_id: stranger},
            new_entries={stranger.cve_id: stranger},
        )
        patched = index.apply_diff(diff)
        expected = sorted(
            [*index.entries, stranger],
            key=lambda entry: (entry.published, entry.cve_id),
        )
        assert patched.entries == tuple(expected)

    def test_patched_index_answers_queries_without_the_matrix(self, index, entries):
        modified = make_entry(cve_id="CVE-2005-0005", oses=("Debian", "OpenBSD"))
        patched = index.apply_diff(_diff(index, modified=[modified]))
        assert patched.shared_count(("Debian", "OpenBSD")) == 1
        assert patched.pair_matrix(CATALOGUE) == PackedIndex(
            patched.entries, CATALOGUE
        ).pair_matrix(CATALOGUE)


class TestArrayApis:
    """The array-shaped counterparts of pair_matrix / k_set_totals."""

    def test_pair_count_matrix_mirrors_the_pair_dict(self, index):
        names = ("Debian", "RedHat", "OpenBSD", "Windows2000")
        counts = index.pair_count_matrix(names)
        pairs = index.pair_matrix(names)
        assert counts.shape == (4, 4)
        assert np.array_equal(counts, counts.T)
        for row, a in enumerate(names):
            for column, b in enumerate(names):
                if row < column:
                    assert counts[row, column] == pairs[(a, b)]
        # Unknown names occupy all-zero rows and columns.
        assert not counts[3].any() and not counts[:, 3].any()
        # The diagonal carries the per-OS totals.
        assert counts[0, 0] == index.count_for("Debian")

    def test_k_set_counts_mirrors_the_totals_dict(self, index):
        counts = index.k_set_counts(CATALOGUE, 3)
        totals = index.k_set_totals(CATALOGUE, 3)
        assert np.array_equal(counts, np.fromiter(totals.values(), dtype=np.int64))

    @pytest.mark.parametrize("k", (0, 7))
    def test_out_of_range_k_raises_like_the_bitset_engine(self, index, k):
        with pytest.raises(ValueError, match="k must be between 1 and 6"):
            index.k_set_counts(CATALOGUE, k)


class TestDenseFallbacks:
    """Above the combination cap the k-set path folds depth-first instead."""

    def test_dfs_fallback_matches_the_dense_counts(self, index, monkeypatch):
        dense = index.k_set_totals(CATALOGUE, 3)
        monkeypatch.setattr(engine_module, "_DENSE_COMBO_CAP", 1)
        assert index.k_set_totals(CATALOGUE, 3) == dense
        assert np.array_equal(
            index.k_set_counts(CATALOGUE, 3),
            np.fromiter(dense.values(), dtype=np.int64),
        )

    def test_combination_counts_respects_the_cap(self, index):
        over = engine_module.combination_counts(
            index._rows, len(index.entries), 2, cap=1
        )
        assert over is None
        exact = engine_module.combination_counts(index._rows, len(index.entries), 2)
        assert exact is not None and exact.sum() > 0

    @pytest.mark.parametrize("m,k", ((5, 0), (3, 4), (0, 1)))
    def test_combination_index_array_degenerate_shapes(self, m, k):
        combos = engine_module.combination_index_array(m, k)
        assert combos.shape[0] == 0
