"""Tests for the pairwise analysis (Table III) and part breakdowns (Tables II/IV)."""

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.pairs import PairAnalysis
from repro.analysis.parts import (
    class_distribution,
    class_percentages,
    family_class_totals,
    shared_by_part,
)
from repro.core.enums import AccessVector, ComponentClass, OSFamily, ServerConfiguration
from tests.conftest import make_entry


@pytest.fixture()
def pair_dataset():
    entries = [
        make_entry(cve_id="CVE-2003-0001", oses=("Debian", "RedHat"),
                   component_class=ComponentClass.KERNEL),
        make_entry(cve_id="CVE-2004-0002", oses=("Debian", "RedHat"),
                   component_class=ComponentClass.APPLICATION),
        make_entry(cve_id="CVE-2005-0003", oses=("Debian", "RedHat"),
                   component_class=ComponentClass.SYSTEM_SOFTWARE, access=AccessVector.LOCAL),
        make_entry(cve_id="CVE-2005-0004", oses=("Debian",),
                   component_class=ComponentClass.KERNEL),
        make_entry(cve_id="CVE-2006-0005", oses=("RedHat",),
                   component_class=ComponentClass.DRIVER),
    ]
    return VulnerabilityDataset(entries)


class TestPairAnalysis:
    def test_analyze_pair_counts(self, pair_dataset):
        analysis = PairAnalysis(pair_dataset, ("Debian", "RedHat"))
        fat = analysis.analyze_pair("Debian", "RedHat", ServerConfiguration.FAT)
        assert (fat.count_a, fat.count_b, fat.shared) == (4, 4, 3)
        thin = analysis.analyze_pair("Debian", "RedHat", ServerConfiguration.THIN)
        assert thin.shared == 2
        isolated = analysis.analyze_pair("Debian", "RedHat", ServerConfiguration.ISOLATED_THIN)
        assert isolated.shared == 1

    def test_table_contains_every_pair_and_configuration(self, pair_dataset):
        analysis = PairAnalysis(pair_dataset, ("Debian", "RedHat"))
        table = analysis.table()
        assert set(table) == {("Debian", "RedHat")}
        assert set(table[("Debian", "RedHat")]) == set(ServerConfiguration)

    def test_55_pairs_on_full_catalog(self, valid_dataset):
        analysis = PairAnalysis(valid_dataset)
        assert len(analysis.pairs()) == 55

    def test_shared_fraction(self, pair_dataset):
        analysis = PairAnalysis(pair_dataset, ("Debian", "RedHat"))
        result = analysis.analyze_pair("Debian", "RedHat", ServerConfiguration.FAT)
        assert result.shared_fraction == pytest.approx(3 / 4)

    def test_pairs_with_at_most(self, pair_dataset):
        analysis = PairAnalysis(pair_dataset, ("Debian", "RedHat"))
        assert analysis.pairs_with_at_most(1, ServerConfiguration.ISOLATED_THIN) == [
            ("Debian", "RedHat")
        ]
        assert analysis.pairs_with_at_most(0, ServerConfiguration.ISOLATED_THIN) == []

    def test_reduction_between(self, pair_dataset):
        analysis = PairAnalysis(pair_dataset, ("Debian", "RedHat"))
        reduction = analysis.reduction_between(
            ServerConfiguration.FAT, ServerConfiguration.ISOLATED_THIN
        )
        assert reduction == pytest.approx(100.0 * (3 - 1) / 3)

    def test_reduction_on_corpus_matches_paper_ballpark(self, valid_dataset):
        analysis = PairAnalysis(valid_dataset)
        reduction = analysis.reduction_between(
            ServerConfiguration.FAT, ServerConfiguration.ISOLATED_THIN
        )
        # The paper reports a 56% average reduction (finding 1).
        assert 45.0 <= reduction <= 70.0

    def test_more_than_half_of_pairs_share_at_most_one(self, valid_dataset):
        analysis = PairAnalysis(valid_dataset)
        low = analysis.pairs_with_at_most(1, ServerConfiguration.ISOLATED_THIN)
        assert len(low) > len(analysis.pairs()) / 2


class TestParts:
    def test_class_distribution(self, pair_dataset):
        distribution = class_distribution(pair_dataset, ("Debian", "RedHat"))
        assert distribution["Debian"][ComponentClass.KERNEL] == 2
        assert distribution["RedHat"][ComponentClass.DRIVER] == 1

    def test_class_percentages_sum_to_100(self, valid_dataset):
        percentages = class_percentages(valid_dataset)
        assert sum(percentages.values()) == pytest.approx(100.0, abs=0.01)

    def test_class_percentages_empty_dataset(self):
        empty = VulnerabilityDataset([])
        assert set(class_percentages(empty).values()) == {0.0}

    def test_driver_share_is_small_on_corpus(self, valid_dataset):
        percentages = class_percentages(valid_dataset)
        assert percentages[ComponentClass.DRIVER] < 2.0

    def test_shared_by_part(self, pair_dataset):
        breakdown = shared_by_part(pair_dataset, os_names=("Debian", "RedHat"))
        parts = breakdown[("Debian", "RedHat")]
        assert parts[ComponentClass.KERNEL] == 1
        assert parts[ComponentClass.SYSTEM_SOFTWARE] == 0
        assert ComponentClass.APPLICATION not in parts

    def test_shared_by_part_orders_by_total(self, valid_dataset):
        breakdown = shared_by_part(valid_dataset)
        totals = [sum(parts.values()) for parts in breakdown.values()]
        assert totals == sorted(totals, reverse=True)
        # Windows 2000/2003 is the heaviest pair in the paper and here.
        assert list(breakdown)[0] == ("Windows2000", "Windows2003")

    def test_family_class_totals(self, valid_dataset):
        totals = family_class_totals(valid_dataset)
        # Kernel dominates in the BSD family, Applications in Linux/Windows
        # (the observation the paper draws from Table II).
        assert totals["BSD"][ComponentClass.KERNEL] > totals["BSD"][ComponentClass.APPLICATION]
        assert totals["Linux"][ComponentClass.APPLICATION] > totals["Linux"][ComponentClass.KERNEL]
        assert totals["Windows"][ComponentClass.APPLICATION] > totals["Windows"][ComponentClass.KERNEL]
