"""Property-based equivalence: every fast engine == naive engine, always.

The bitset incidence index and the numpy packed-word index
(:mod:`repro.analysis.engine`) are pure optimisations: for any corpus and
any query each must return exactly what the naive per-entry set
re-intersection returns, in the same order.  This suite generates random
corpora (and exercises the paper-sized and scaled synthetic corpora) and
asserts that equivalence -- three ways across ``naive``/``bitset``/
``packed`` -- for the pair matrices, the k-set totals, the replica-group
compromise counts and all three selection strategies, under every server
configuration, plus the structural edge cases (empty corpus, single-OS
catalogues, all-zero incidence rows, oversized selections and corpora
straddling the 64-bit word boundary of the packed engine).
"""

from __future__ import annotations

import datetime as dt
import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dataset import ENGINES, VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.pairs import PairAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.constants import OS_NAMES
from repro.core.enums import (
    AccessVector,
    ComponentClass,
    ServerConfiguration,
    ValidityStatus,
)
from repro.core.exceptions import SelectionError
from repro.core.models import CVSSVector, VulnerabilityEntry
from repro.synthetic.generator import generate_scaled_catalogue

#: The engines that must reproduce the naive reference bit for bit.
FAST_ENGINES = ("bitset", "packed")

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

os_subsets = st.sets(st.sampled_from(OS_NAMES), min_size=1, max_size=6)

entries_strategy = st.lists(
    st.builds(
        lambda index, oses, cls, access, year, valid: VulnerabilityEntry(
            cve_id=f"CVE-{year}-{1000 + index}",
            published=dt.date(year, 1 + index % 12, 1 + index % 28),
            summary="generated entry",
            cvss=CVSSVector(access_vector=access),
            affected_os=frozenset(oses),
            component_class=cls,
            validity=ValidityStatus.VALID if valid else ValidityStatus.UNKNOWN,
        ),
        index=st.integers(min_value=0, max_value=9999),
        oses=os_subsets,
        cls=st.sampled_from(list(ComponentClass)),
        access=st.sampled_from(list(AccessVector)),
        year=st.integers(min_value=1994, max_value=2010),
        valid=st.booleans(),
    ),
    min_size=0,
    max_size=50,
    unique_by=lambda entry: entry.cve_id,
)


def engine_pair(entries, fast_engine, os_names=OS_NAMES):
    """(fast, naive) datasets over the same entries and catalogue."""
    return (
        VulnerabilityDataset(entries, os_names, engine=fast_engine),
        VulnerabilityDataset(entries, os_names, engine="naive"),
    )


# ---------------------------------------------------------------------------
# random corpora
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
@given(entries=entries_strategy)
@settings(max_examples=50, deadline=None)
def test_pair_matrices_equivalent(fast_engine, entries):
    fast, naive = engine_pair(entries, fast_engine)
    for configuration in ServerConfiguration:
        assert PairAnalysis(fast).shared_matrix(configuration) == PairAnalysis(
            naive
        ).shared_matrix(configuration)


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
@given(entries=entries_strategy, k=st.integers(min_value=2, max_value=4))
@settings(max_examples=50, deadline=None)
def test_k_set_totals_equivalent(fast_engine, entries, k):
    fast, naive = engine_pair(entries, fast_engine)
    for configuration in ServerConfiguration:
        fast_totals = KSetAnalysis(fast, configuration).per_combination_totals(k)
        naive_totals = KSetAnalysis(naive, configuration).per_combination_totals(k)
        assert fast_totals == naive_totals
        # Same iteration order too: callers rely on combination order.
        assert list(fast_totals) == list(naive_totals)


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
@given(entries=entries_strategy)
@settings(max_examples=50, deadline=None)
def test_shared_between_and_affecting_equivalent(fast_engine, entries):
    fast, naive = engine_pair(entries, fast_engine)
    for names in (("Debian",), ("Debian", "RedHat"), ("OpenBSD", "NetBSD", "FreeBSD")):
        assert fast.shared_between(names) == naive.shared_between(names)
    for k in (1, 2, 3, 5):
        assert fast.affecting_at_least(k) == naive.affecting_at_least(k)


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
@given(
    entries=entries_strategy,
    group=st.lists(st.sampled_from(OS_NAMES), min_size=2, max_size=5),
    threshold=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50, deadline=None)
def test_compromising_equivalent(fast_engine, entries, group, threshold):
    fast, naive = engine_pair(entries, fast_engine)
    assert fast.compromising(group, threshold) == naive.compromising(group, threshold)


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
@given(entries=entries_strategy, n=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_selection_strategies_equivalent(fast_engine, entries, n):
    for configuration in (
        ServerConfiguration.FAT,
        ServerConfiguration.ISOLATED_THIN,
    ):
        fast, naive = engine_pair(entries, fast_engine)
        selector_fast = ReplicaSetSelector(
            dataset=fast, candidates=OS_NAMES[:6], configuration=configuration
        )
        selector_naive = ReplicaSetSelector(
            dataset=naive, candidates=OS_NAMES[:6], configuration=configuration
        )
        for result_fast, result_naive in zip(
            selector_fast.exhaustive(n, top=3), selector_naive.exhaustive(n, top=3)
        ):
            assert result_fast == result_naive
        assert selector_fast.greedy(n) == selector_naive.greedy(n)
        assert selector_fast.graph_based(n) == selector_naive.graph_based(n)
        assert selector_fast.rank_all(n) == selector_naive.rank_all(n)


@pytest.mark.parametrize("engine", ENGINES)
@given(entries=entries_strategy, top=st.integers(min_value=1, max_value=20))
@settings(max_examples=25, deadline=None)
def test_branch_and_bound_matches_plain_enumeration(engine, entries, top):
    """The pruned exhaustive search returns exactly the enumerated top list."""
    dataset = VulnerabilityDataset(entries, engine=engine).valid()
    selector = ReplicaSetSelector(dataset=dataset, candidates=OS_NAMES[:7])
    pruned = selector.exhaustive(3, top=top)
    enumerated = sorted(
        (
            selector._result(combo, "exhaustive")
            for combo in itertools.combinations(selector.candidates, 3)
        ),
        key=lambda result: (result.pairwise_shared, result.os_names),
    )[:top]
    assert pruned == enumerated


# ---------------------------------------------------------------------------
# structural edge cases
# ---------------------------------------------------------------------------


def _entry(index: int, oses, year: int = 2004) -> VulnerabilityEntry:
    return VulnerabilityEntry(
        cve_id=f"CVE-{year}-{1000 + index}",
        published=dt.date(year, 1 + index % 12, 1 + index % 28),
        summary="edge-case entry",
        cvss=CVSSVector(access_vector=AccessVector.NETWORK),
        affected_os=frozenset(oses),
        component_class=ComponentClass.KERNEL,
        validity=ValidityStatus.VALID,
    )


class TestEdgeCases:
    @pytest.mark.parametrize("fast_engine", FAST_ENGINES)
    def test_empty_corpus(self, fast_engine):
        fast, naive = engine_pair([], fast_engine)
        assert PairAnalysis(fast).shared_matrix(
            ServerConfiguration.FAT
        ) == PairAnalysis(naive).shared_matrix(ServerConfiguration.FAT)
        totals = KSetAnalysis(fast, ServerConfiguration.FAT).per_combination_totals(3)
        assert totals == KSetAnalysis(
            naive, ServerConfiguration.FAT
        ).per_combination_totals(3)
        assert set(totals.values()) == {0}
        assert fast.shared_between(("Debian", "RedHat")) == []
        assert fast.affecting_at_least(1) == []
        assert fast.compromising(("Debian", "RedHat")) == []

    @pytest.mark.parametrize("fast_engine", FAST_ENGINES)
    def test_single_os_catalogue(self, fast_engine):
        entries = [_entry(0, ("Debian",)), _entry(1, ("Debian", "RedHat"))]
        fast, naive = engine_pair(entries, fast_engine, os_names=("Debian",))
        # Only Debian is catalogued: breadth counts ignore RedHat entirely.
        assert fast.affecting_at_least(1) == naive.affecting_at_least(1) == entries
        assert fast.affecting_at_least(2) == naive.affecting_at_least(2) == []
        assert fast.shared_between(("Debian",)) == naive.shared_between(("Debian",))
        assert fast.query_index().pair_matrix(("Debian",)) == {}

    @pytest.mark.parametrize("fast_engine", FAST_ENGINES)
    def test_all_zero_incidence_rows(self, fast_engine):
        """Entries affecting only uncatalogued OSes leave all-zero columns."""
        catalogue = ("Debian", "RedHat")
        entries = [
            _entry(0, ("Windows2000",)),  # outside the catalogue entirely
            _entry(1, ("Solaris", "OpenBSD")),
            _entry(2, ("Debian", "Windows2000")),
        ]
        fast, naive = engine_pair(entries, fast_engine, os_names=catalogue)
        assert fast.shared_count(("Debian", "RedHat")) == naive.shared_count(
            ("Debian", "RedHat")
        )
        assert fast.affecting_at_least(1) == naive.affecting_at_least(1)
        assert fast.affecting_at_least(1) == [entries[2]]
        index = fast.query_index()
        assert index.pair_matrix(catalogue) == {("Debian", "RedHat"): 0}
        assert index.k_set_totals(catalogue, 2) == {("Debian", "RedHat"): 0}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_selection_rejects_k_greater_than_n(self, engine):
        entries = [_entry(index, (OS_NAMES[index % 3],)) for index in range(5)]
        dataset = VulnerabilityDataset(entries, engine=engine)
        selector = ReplicaSetSelector(dataset=dataset, candidates=OS_NAMES[:3])
        with pytest.raises(SelectionError):
            selector.exhaustive(4)
        with pytest.raises(SelectionError):
            selector.greedy(4)

    @pytest.mark.parametrize("fast_engine", FAST_ENGINES)
    @pytest.mark.parametrize("count", (63, 64, 65, 128, 129))
    def test_word_boundary_corpora(self, fast_engine, count):
        """Entry counts straddling the 64-bit packed-word boundary."""
        rng = random.Random(count)
        entries = [
            _entry(index, rng.sample(OS_NAMES, rng.randint(1, 4)))
            for index in range(count)
        ]
        fast, naive = engine_pair(entries, fast_engine)
        assert PairAnalysis(fast).shared_matrix(
            ServerConfiguration.FAT
        ) == PairAnalysis(naive).shared_matrix(ServerConfiguration.FAT)
        assert fast.affecting_at_least(2) == naive.affecting_at_least(2)
        for names in (("Debian",), OS_NAMES[:3], OS_NAMES):
            assert fast.shared_between(names) == naive.shared_between(names)
        totals = KSetAnalysis(fast, ServerConfiguration.FAT).per_combination_totals(3)
        naive_totals = KSetAnalysis(
            naive, ServerConfiguration.FAT
        ).per_combination_totals(3)
        assert totals == naive_totals and list(totals) == list(naive_totals)


# ---------------------------------------------------------------------------
# paper-sized and scaled corpora
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
@pytest.mark.parametrize(
    "configuration",
    [ServerConfiguration.FAT, ServerConfiguration.THIN, ServerConfiguration.ISOLATED_THIN],
)
def test_paper_corpus_equivalence(dataset, fast_engine, configuration):
    fast = dataset.with_engine(fast_engine)
    naive = dataset.with_engine("naive")
    assert PairAnalysis(fast).shared_matrix(configuration) == PairAnalysis(
        naive
    ).shared_matrix(configuration)
    assert KSetAnalysis(fast, configuration).per_combination_totals(
        4
    ) == KSetAnalysis(naive, configuration).per_combination_totals(4)


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
def test_paper_corpus_selection_equivalence(valid_dataset, fast_engine):
    from repro.core.constants import TABLE5_OSES

    fast = ReplicaSetSelector(
        dataset=valid_dataset.with_engine(fast_engine), candidates=TABLE5_OSES
    )
    naive = ReplicaSetSelector(
        dataset=valid_dataset.with_engine("naive"), candidates=TABLE5_OSES
    )
    assert fast.exhaustive(4, top=5) == naive.exhaustive(4, top=5)
    assert fast.greedy(4) == naive.greedy(4)
    assert fast.graph_based(4) == naive.graph_based(4)


@pytest.mark.parametrize("fast_engine", FAST_ENGINES)
def test_scaled_catalogue_equivalence(fast_engine):
    """A 30-OS scaled catalogue: pair matrix and sampled k-sets agree."""
    catalogue = generate_scaled_catalogue(
        n_families=6, releases_per_family=5, vulns_per_os=15, seed=99
    )
    fast = catalogue.dataset(engine=fast_engine)
    naive = catalogue.dataset(engine="naive")
    assert fast.query_index().pair_matrix(catalogue.os_names) == {
        pair: naive.shared_count(pair)
        for pair in itertools.combinations(catalogue.os_names, 2)
    }
    rng = random.Random(3)
    for _ in range(50):
        combo = tuple(rng.sample(catalogue.os_names, 4))
        assert fast.shared_count(combo) == naive.shared_count(combo)
    fast_sel = ReplicaSetSelector(dataset=fast, candidates=catalogue.os_names)
    naive_sel = ReplicaSetSelector(dataset=naive, candidates=catalogue.os_names)
    assert fast_sel.exhaustive(3, top=3) == naive_sel.exhaustive(3, top=3)
    assert fast_sel.greedy(4) == naive_sel.greedy(4)


def test_bitset_and_packed_indexes_agree_directly(dataset):
    """The two fast indexes agree with each other, not just with naive."""
    bitset = dataset.incidence
    packed = dataset.packed
    assert bitset.pair_matrix(OS_NAMES) == packed.pair_matrix(OS_NAMES)
    assert bitset.k_set_totals(OS_NAMES, 3) == packed.k_set_totals(OS_NAMES, 3)
    assert bitset.breadth_histogram() == packed.breadth_histogram()
    for name in OS_NAMES:
        assert bitset.count_for(name) == packed.count_for(name)
    with pytest.raises(ValueError, match="k must be between 1 and"):
        packed.k_set_totals(OS_NAMES, len(OS_NAMES) + 1)
