"""Property-based equivalence: bitset engine == naive engine, always.

The bitset incidence index (:mod:`repro.analysis.engine`) is a pure
optimisation: for any corpus and any query it must return exactly what the
naive per-entry set re-intersection returns, in the same order.  This suite
generates random corpora (and exercises the paper-sized and scaled synthetic
corpora) and asserts that equivalence for the pair matrices, the k-set
totals, the replica-group compromise counts and all three selection
strategies, under every server configuration.
"""

from __future__ import annotations

import datetime as dt
import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.pairs import PairAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.constants import OS_NAMES
from repro.core.enums import (
    AccessVector,
    ComponentClass,
    ServerConfiguration,
    ValidityStatus,
)
from repro.core.models import CVSSVector, VulnerabilityEntry
from repro.synthetic.generator import generate_scaled_catalogue

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

os_subsets = st.sets(st.sampled_from(OS_NAMES), min_size=1, max_size=6)

entries_strategy = st.lists(
    st.builds(
        lambda index, oses, cls, access, year, valid: VulnerabilityEntry(
            cve_id=f"CVE-{year}-{1000 + index}",
            published=dt.date(year, 1 + index % 12, 1 + index % 28),
            summary="generated entry",
            cvss=CVSSVector(access_vector=access),
            affected_os=frozenset(oses),
            component_class=cls,
            validity=ValidityStatus.VALID if valid else ValidityStatus.UNKNOWN,
        ),
        index=st.integers(min_value=0, max_value=9999),
        oses=os_subsets,
        cls=st.sampled_from(list(ComponentClass)),
        access=st.sampled_from(list(AccessVector)),
        year=st.integers(min_value=1994, max_value=2010),
        valid=st.booleans(),
    ),
    min_size=0,
    max_size=50,
    unique_by=lambda entry: entry.cve_id,
)


def both_engines(entries, os_names=OS_NAMES):
    return (
        VulnerabilityDataset(entries, os_names, engine="bitset"),
        VulnerabilityDataset(entries, os_names, engine="naive"),
    )


# ---------------------------------------------------------------------------
# random corpora
# ---------------------------------------------------------------------------


@given(entries=entries_strategy)
@settings(max_examples=50, deadline=None)
def test_pair_matrices_equivalent(entries):
    fast, naive = both_engines(entries)
    for configuration in ServerConfiguration:
        assert PairAnalysis(fast).shared_matrix(configuration) == PairAnalysis(
            naive
        ).shared_matrix(configuration)


@given(entries=entries_strategy, k=st.integers(min_value=2, max_value=4))
@settings(max_examples=50, deadline=None)
def test_k_set_totals_equivalent(entries, k):
    fast, naive = both_engines(entries)
    for configuration in ServerConfiguration:
        fast_totals = KSetAnalysis(fast, configuration).per_combination_totals(k)
        naive_totals = KSetAnalysis(naive, configuration).per_combination_totals(k)
        assert fast_totals == naive_totals
        # Same iteration order too: callers rely on combination order.
        assert list(fast_totals) == list(naive_totals)


@given(entries=entries_strategy)
@settings(max_examples=50, deadline=None)
def test_shared_between_and_affecting_equivalent(entries):
    fast, naive = both_engines(entries)
    for names in (("Debian",), ("Debian", "RedHat"), ("OpenBSD", "NetBSD", "FreeBSD")):
        assert fast.shared_between(names) == naive.shared_between(names)
    for k in (1, 2, 3, 5):
        assert fast.affecting_at_least(k) == naive.affecting_at_least(k)


@given(
    entries=entries_strategy,
    group=st.lists(st.sampled_from(OS_NAMES), min_size=2, max_size=5),
    threshold=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50, deadline=None)
def test_compromising_equivalent(entries, group, threshold):
    fast, naive = both_engines(entries)
    assert fast.compromising(group, threshold) == naive.compromising(group, threshold)


@given(entries=entries_strategy, n=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_selection_strategies_equivalent(entries, n):
    for configuration in (
        ServerConfiguration.FAT,
        ServerConfiguration.ISOLATED_THIN,
    ):
        fast, naive = both_engines(entries)
        selector_fast = ReplicaSetSelector(
            dataset=fast, candidates=OS_NAMES[:6], configuration=configuration
        )
        selector_naive = ReplicaSetSelector(
            dataset=naive, candidates=OS_NAMES[:6], configuration=configuration
        )
        for result_fast, result_naive in zip(
            selector_fast.exhaustive(n, top=3), selector_naive.exhaustive(n, top=3)
        ):
            assert result_fast == result_naive
        assert selector_fast.greedy(n) == selector_naive.greedy(n)
        assert selector_fast.graph_based(n) == selector_naive.graph_based(n)
        assert selector_fast.rank_all(n) == selector_naive.rank_all(n)


@given(entries=entries_strategy, top=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_branch_and_bound_matches_plain_enumeration(entries, top):
    """The pruned exhaustive search returns exactly the enumerated top list."""
    dataset = VulnerabilityDataset(entries).valid()
    selector = ReplicaSetSelector(dataset=dataset, candidates=OS_NAMES[:7])
    pruned = selector.exhaustive(3, top=top)
    enumerated = sorted(
        (
            selector._result(combo, "exhaustive")
            for combo in itertools.combinations(selector.candidates, 3)
        ),
        key=lambda result: (result.pairwise_shared, result.os_names),
    )[:top]
    assert pruned == enumerated


# ---------------------------------------------------------------------------
# paper-sized and scaled corpora
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "configuration",
    [ServerConfiguration.FAT, ServerConfiguration.THIN, ServerConfiguration.ISOLATED_THIN],
)
def test_paper_corpus_equivalence(dataset, configuration):
    fast = dataset.with_engine("bitset")
    naive = dataset.with_engine("naive")
    assert PairAnalysis(fast).shared_matrix(configuration) == PairAnalysis(
        naive
    ).shared_matrix(configuration)
    assert KSetAnalysis(fast, configuration).per_combination_totals(
        4
    ) == KSetAnalysis(naive, configuration).per_combination_totals(4)


def test_paper_corpus_selection_equivalence(valid_dataset):
    from repro.core.constants import TABLE5_OSES

    fast = ReplicaSetSelector(
        dataset=valid_dataset.with_engine("bitset"), candidates=TABLE5_OSES
    )
    naive = ReplicaSetSelector(
        dataset=valid_dataset.with_engine("naive"), candidates=TABLE5_OSES
    )
    assert fast.exhaustive(4, top=5) == naive.exhaustive(4, top=5)
    assert fast.greedy(4) == naive.greedy(4)
    assert fast.graph_based(4) == naive.graph_based(4)


def test_scaled_catalogue_equivalence():
    """A 30-OS scaled catalogue: pair matrix and sampled k-sets agree."""
    catalogue = generate_scaled_catalogue(
        n_families=6, releases_per_family=5, vulns_per_os=15, seed=99
    )
    fast = catalogue.dataset(engine="bitset")
    naive = catalogue.dataset(engine="naive")
    assert fast.incidence.pair_matrix(catalogue.os_names) == {
        pair: naive.shared_count(pair)
        for pair in itertools.combinations(catalogue.os_names, 2)
    }
    rng = random.Random(3)
    for _ in range(50):
        combo = tuple(rng.sample(catalogue.os_names, 4))
        assert fast.shared_count(combo) == naive.shared_count(combo)
    fast_sel = ReplicaSetSelector(dataset=fast, candidates=catalogue.os_names)
    naive_sel = ReplicaSetSelector(dataset=naive, candidates=catalogue.os_names)
    assert fast_sel.exhaustive(3, top=3) == naive_sel.exhaustive(3, top=3)
    assert fast_sel.greedy(4) == naive_sel.greedy(4)
