"""Shared fixtures for the test suite.

The synthetic corpus takes a fraction of a second to build but is used by
dozens of tests, so it is built once per session.  ``make_entry`` is a small
factory for hand-crafted vulnerability entries used by the unit tests that
need precise control over the data.
"""

from __future__ import annotations

import datetime as dt
from typing import Iterable, Mapping, Optional, Tuple

import pytest

from repro.core.enums import AccessVector, ComponentClass, ValidityStatus
from repro.core.models import CVSSVector, VulnerabilityEntry
from repro.analysis.dataset import VulnerabilityDataset
from repro.synthetic.corpus import SyntheticCorpus, build_corpus


def make_entry(
    cve_id: str = "CVE-2005-0001",
    oses: Iterable[str] = ("Debian",),
    component_class: Optional[ComponentClass] = ComponentClass.KERNEL,
    access: AccessVector = AccessVector.NETWORK,
    year: int = 2005,
    month: int = 6,
    day: int = 15,
    summary: str = "A flaw in the kernel allows remote attackers to crash the system.",
    validity: ValidityStatus = ValidityStatus.VALID,
    versions: Optional[Mapping[str, Tuple[str, ...]]] = None,
) -> VulnerabilityEntry:
    """Build a vulnerability entry with sensible defaults for tests."""
    return VulnerabilityEntry(
        cve_id=cve_id,
        published=dt.date(year, month, day),
        summary=summary,
        cvss=CVSSVector(access_vector=access),
        affected_os=frozenset(oses),
        affected_versions=dict(versions or {}),
        component_class=component_class,
        validity=validity,
    )


@pytest.fixture(scope="session")
def corpus() -> SyntheticCorpus:
    """The default calibrated synthetic corpus (shared across the session)."""
    return build_corpus()


@pytest.fixture(scope="session")
def dataset(corpus: SyntheticCorpus) -> VulnerabilityDataset:
    """Dataset over the full corpus (valid + excluded entries)."""
    return VulnerabilityDataset(corpus.entries)


@pytest.fixture(scope="session")
def valid_dataset(dataset: VulnerabilityDataset) -> VulnerabilityDataset:
    """Dataset restricted to valid entries."""
    return dataset.valid()


@pytest.fixture()
def entry_factory():
    """Expose the entry factory as a fixture for convenience."""
    return make_entry


@pytest.fixture()
def golden(request):
    """Compare text against a committed golden file under ``tests/golden/``.

    Usage: ``golden("simulate.json", actual_text)``.  With ``pytest
    --update-golden`` (see the repository-root conftest) the golden file is
    rewritten from ``actual_text`` instead of compared, which is how the
    committed outputs are refreshed after an intentional CLI change.
    """
    from pathlib import Path as _Path

    update = request.config.getoption("--update-golden")
    golden_dir = _Path(__file__).resolve().parent / "golden"

    def check(name: str, actual: str) -> None:
        path = golden_dir / name
        if update:
            golden_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(actual, encoding="utf-8")
            return
        assert path.exists(), (
            f"golden file tests/golden/{name} is missing; "
            "run `pytest --update-golden` to create it"
        )
        expected = path.read_text(encoding="utf-8")
        assert actual == expected, (
            f"output differs from tests/golden/{name}; if the change is "
            "intentional, refresh with `pytest --update-golden`"
        )

    return check
