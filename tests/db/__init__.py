"""Test package."""
