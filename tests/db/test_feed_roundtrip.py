"""End-to-end round trip: XML feed -> parse -> normalise -> ingest -> query.

The collection pipeline of Section III spans four layers (``nvd.feed_parser``,
``nvd.normalize``, ``db.ingest``, ``db.queries``); the existing suites test
each in isolation, so this module pins the *hand-offs*: a small hand-written
fixture feed travels the whole pipeline twice (once written through
``nvd.feed_writer``, once re-loaded from the database) and every count must
survive each hop.
"""

import datetime as dt

import pytest

from repro.db.ingest import IngestPipeline
from repro.db.queries import os_validity_counts, pair_shared_counts
from repro.nvd.feed_parser import RawFeedEntry, parse_xml_feed
from repro.nvd.feed_writer import write_xml_feed

REMOTE = "AV:N/AC:L/Au:N/C:P/I:P/A:P"
LOCAL = "AV:L/AC:L/Au:N/C:P/I:P/A:P"

#: Fixture feed: 4 in-scope entries, 1 out-of-scope (application CPE only),
#: with one shared Debian+RedHat flaw and one Disputed entry.
FIXTURE_ENTRIES = (
    RawFeedEntry(
        cve_id="CVE-2004-0001",
        published=dt.date(2004, 2, 10),
        summary="A buffer overflow in the kernel allows remote attackers to "
                "execute arbitrary code.",
        cvss_vector=REMOTE,
        cpe_uris=("cpe:/o:debian:debian_linux:3.0",),
    ),
    RawFeedEntry(
        cve_id="CVE-2004-0002",
        published=dt.date(2004, 5, 17),
        summary="A race condition in the virtual filesystem allows local "
                "users to gain privileges.",
        cvss_vector=LOCAL,
        # The same product under two NVD alias spellings plus RedHat: the
        # normaliser must collapse the aliases onto one Debian.
        cpe_uris=(
            "cpe:/o:debian:debian_linux:3.1",
            "cpe:/o:debian:linux:3.1",
            "cpe:/o:redhat:enterprise_linux:4",
        ),
    ),
    RawFeedEntry(
        cve_id="CVE-2004-0003",
        published=dt.date(2004, 8, 2),
        summary="An integer overflow in the network stack allows remote "
                "attackers to cause a denial of service.",
        cvss_vector=REMOTE,
        cpe_uris=("cpe:/o:openbsd:openbsd:3.5",),
    ),
    RawFeedEntry(
        cve_id="CVE-2004-0004",
        published=dt.date(2004, 9, 20),
        summary="** DISPUTED ** A flaw in the scheduler may allow remote "
                "attackers to crash the system.",
        cvss_vector=REMOTE,
        cpe_uris=("cpe:/o:microsoft:windows_2000:sp4",),
    ),
    RawFeedEntry(
        cve_id="CVE-2004-0005",
        published=dt.date(2004, 11, 5),
        summary="A flaw in a web application allows remote attackers to "
                "inject script.",
        cvss_vector=REMOTE,
        # Application CPE only: no OS resolves, so ingest must skip it.
        cpe_uris=("cpe:/a:apache:http_server:2.0",),
    ),
)


@pytest.fixture()
def feed_path(tmp_path):
    return write_xml_feed(FIXTURE_ENTRIES, tmp_path / "nvdcve-2004.xml")


class TestFeedRoundTrip:
    def test_writer_output_parses_back_verbatim(self, feed_path):
        parsed = parse_xml_feed(feed_path)
        assert [raw.cve_id for raw in parsed] == [
            raw.cve_id for raw in FIXTURE_ENTRIES
        ]
        by_id = {raw.cve_id: raw for raw in parsed}
        original = FIXTURE_ENTRIES[1]
        round_tripped = by_id[original.cve_id]
        assert round_tripped.published == original.published
        assert round_tripped.summary == original.summary
        assert round_tripped.cvss_vector == original.cvss_vector
        assert round_tripped.cpe_uris == original.cpe_uris

    def test_ingest_counts_survive_the_trip(self, feed_path):
        pipeline = IngestPipeline()
        report = pipeline.ingest_xml_feeds([feed_path])
        assert report.parsed_entries == 5
        assert report.skipped_no_os == 1  # the application-only entry
        assert report.ingested_entries == 4
        assert report.valid_entries == 3
        assert report.excluded_entries == 1  # the Disputed Windows entry
        assert report.by_validity == {"Valid": 3, "Disputed": 1}

    def test_normalised_oses_survive_into_the_database(self, feed_path):
        pipeline = IngestPipeline()
        pipeline.ingest_xml_feeds([feed_path])
        entries = {
            entry.cve_id: entry for entry in pipeline.database.load_entries()
        }
        assert len(entries) == 4
        # Alias spellings collapsed: one Debian, despite two Debian CPEs.
        assert entries["CVE-2004-0002"].affected_os == {"Debian", "RedHat"}
        assert entries["CVE-2004-0001"].affected_os == {"Debian"}
        assert entries["CVE-2004-0003"].affected_os == {"OpenBSD"}
        assert entries["CVE-2004-0004"].affected_os == {"Windows2000"}
        assert not entries["CVE-2004-0004"].is_valid

    def test_sql_aggregations_match_the_fixture(self, feed_path):
        pipeline = IngestPipeline()
        pipeline.ingest_xml_feeds([feed_path])
        validity = os_validity_counts(pipeline.database)
        assert validity["Debian"] == {"Valid": 2}
        assert validity["RedHat"] == {"Valid": 1}
        assert validity["OpenBSD"] == {"Valid": 1}
        assert validity["Windows2000"] == {"Disputed": 1}
        shared = pair_shared_counts(pipeline.database)
        assert shared.get(("Debian", "RedHat")) == 1
        # Local-only flaws drop out of the remote-only (Isolated Thin) view.
        remote_only = pair_shared_counts(pipeline.database, only_remote=True)
        assert ("Debian", "RedHat") not in remote_only

    def test_database_reload_preserves_validity_and_versions(self, feed_path):
        pipeline = IngestPipeline()
        pipeline.ingest_xml_feeds([feed_path])
        valid_only = pipeline.database.load_entries(only_valid=True)
        assert sorted(entry.cve_id for entry in valid_only) == [
            "CVE-2004-0001", "CVE-2004-0002", "CVE-2004-0003",
        ]
        full = {entry.cve_id: entry for entry in pipeline.database.load_entries()}
        assert tuple(full["CVE-2004-0001"].affected_versions.get("Debian", ())) == ("3.0",)
        assert full["CVE-2004-0002"].is_remote is False
        assert full["CVE-2004-0001"].is_remote is True
