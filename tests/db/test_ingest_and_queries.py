"""Tests for the ingest pipeline and the canned SQL queries."""

import datetime as dt

import pytest

from repro.core.enums import ComponentClass, ServerConfiguration
from repro.db import queries
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.nvd.feed_parser import RawFeedEntry
from tests.conftest import make_entry


def _raw(cve_id, year, uris, summary="A flaw in the kernel allows remote attackers in.",
         vector="AV:N/AC:L/Au:N/C:P/I:P/A:P"):
    return RawFeedEntry(
        cve_id=cve_id,
        published=dt.date(year, 4, 2),
        summary=summary,
        cvss_vector=vector,
        cpe_uris=tuple(uris),
    )


class TestConvert:
    def test_os_entry_is_converted(self):
        pipeline = IngestPipeline()
        entry = pipeline.convert(
            _raw("CVE-2006-1000", 2006, ["cpe:/o:debian:debian_linux:3.1"])
        )
        assert entry is not None
        assert entry.affected_os == frozenset({"Debian"})
        assert entry.component_class is ComponentClass.KERNEL
        assert entry.is_valid

    def test_non_os_entry_is_skipped(self):
        pipeline = IngestPipeline()
        entry = pipeline.convert(
            _raw("CVE-2006-1001", 2006, ["cpe:/a:apache:http_server:2.2"])
        )
        assert entry is None

    def test_unknown_os_is_skipped(self):
        pipeline = IngestPipeline()
        entry = pipeline.convert(
            _raw("CVE-2006-1002", 2006, ["cpe:/o:apple:mac_os_x:10.4"])
        )
        assert entry is None

    def test_invalid_summary_marks_entry_excluded(self):
        pipeline = IngestPipeline()
        entry = pipeline.convert(
            _raw("CVE-2006-1003", 2006, ["cpe:/o:sun:solaris:10"],
                 summary="Unspecified vulnerability in Solaris.")
        )
        assert entry is not None
        assert not entry.is_valid
        assert entry.component_class is None

    def test_missing_cvss_defaults_to_remote(self):
        pipeline = IngestPipeline()
        entry = pipeline.convert(
            _raw("CVE-2006-1004", 2006, ["cpe:/o:openbsd:openbsd:4.0"], vector="")
        )
        assert entry is not None
        assert entry.is_remote

    def test_cvss_fallback_only_catches_cvss_errors(self, monkeypatch):
        # The remote-vector fallback is for malformed CVSS data; a bug in
        # the CVSS parser itself must propagate, not be papered over.
        import repro.db.ingest as ingest

        monkeypatch.setattr(
            ingest, "parse_cvss_vector",
            lambda vector: (_ for _ in ()).throw(RuntimeError("parser bug")),
        )
        pipeline = IngestPipeline()
        with pytest.raises(RuntimeError):
            pipeline.convert(
                _raw("CVE-2006-1005", 2006, ["cpe:/o:openbsd:openbsd:4.0"])
            )


class TestIngest:
    def test_ingest_xml_feed_end_to_end(self, tmp_path):
        from repro.nvd.feed_writer import write_xml_feed

        raw_entries = [
            _raw("CVE-2004-0100", 2004, ["cpe:/o:debian:debian_linux:3.0",
                                         "cpe:/o:redhat:enterprise_linux:3"]),
            _raw("CVE-2005-0200", 2005, ["cpe:/o:microsoft:windows_2000:sp4"]),
            _raw("CVE-2005-0300", 2005, ["cpe:/a:mozilla:firefox:1.0"]),
        ]
        path = write_xml_feed(raw_entries, tmp_path / "feed.xml")
        pipeline = IngestPipeline()
        report = pipeline.ingest_xml_feeds([path])
        assert report.parsed_entries == 3
        assert report.ingested_entries == 2
        assert report.skipped_no_os == 1
        assert pipeline.database.entry_count() == 2

    def test_ingest_json_feed(self, tmp_path):
        from repro.nvd.json_feed import dump_json_feed

        path = dump_json_feed(
            [_raw("CVE-2009-0001", 2009, ["cpe:/o:canonical:ubuntu_linux:9.04"])],
            tmp_path / "feed.json",
        )
        pipeline = IngestPipeline()
        report = pipeline.ingest_json_feed(path)
        assert report.ingested_entries == 1
        assert pipeline.database.load_entries()[0].affected_os == frozenset({"Ubuntu"})

    def test_ingest_prebuilt_entries_preserves_classification(self):
        pipeline = IngestPipeline()
        entry = make_entry(component_class=ComponentClass.DRIVER)
        report = pipeline.ingest_entries([entry])
        assert report.valid_entries == 1
        assert pipeline.database.load_entries()[0].component_class is ComponentClass.DRIVER

    def test_ingest_report_validity_histogram(self):
        pipeline = IngestPipeline()
        report = pipeline.ingest_raw(
            [
                _raw("CVE-2006-0001", 2006, ["cpe:/o:sun:solaris:9"]),
                _raw("CVE-2006-0002", 2006, ["cpe:/o:sun:solaris:9"],
                     summary="Unknown vulnerability in Solaris."),
            ]
        )
        assert report.by_validity == {"Valid": 1, "Unknown": 1}


class TestQueries:
    @pytest.fixture()
    def loaded_db(self):
        pipeline = IngestPipeline()
        pipeline.ingest_entries(
            [
                make_entry(cve_id="CVE-2004-0001", oses=("Debian", "RedHat"),
                           component_class=ComponentClass.KERNEL, year=2004),
                make_entry(cve_id="CVE-2006-0002", oses=("Debian",),
                           component_class=ComponentClass.APPLICATION, year=2006),
                make_entry(cve_id="CVE-2007-0003", oses=("Windows2000", "Windows2003"),
                           component_class=ComponentClass.SYSTEM_SOFTWARE, year=2007),
                make_entry(cve_id="CVE-2007-0004", oses=("Debian", "RedHat", "Ubuntu"),
                           component_class=ComponentClass.APPLICATION, year=2007),
            ]
        )
        yield pipeline.database
        pipeline.database.close()

    def test_os_validity_counts(self, loaded_db):
        counts = queries.os_validity_counts(loaded_db)
        assert counts["Debian"]["Valid"] == 3
        assert counts["Windows2000"]["Valid"] == 1

    def test_os_class_counts(self, loaded_db):
        counts = queries.os_class_counts(loaded_db)
        assert counts["Debian"]["Kernel"] == 1
        assert counts["Debian"]["Application"] == 2

    def test_pair_shared_counts(self, loaded_db):
        shared = queries.pair_shared_counts(loaded_db)
        assert shared[("Debian", "RedHat")] == 2
        assert shared[("Windows2000", "Windows2003")] == 1

    def test_pair_shared_counts_filtered(self, loaded_db):
        no_app = queries.pair_shared_counts(loaded_db, exclude_applications=True)
        assert no_app[("Debian", "RedHat")] == 1

    def test_yearly_counts(self, loaded_db):
        yearly = queries.yearly_counts(loaded_db)
        assert yearly["Debian"][2004] == 1
        assert yearly["Debian"][2007] == 1

    def test_distinct_valid_count(self, loaded_db):
        assert queries.distinct_valid_count(loaded_db) == 4

    def test_shared_by_at_least(self, loaded_db):
        assert queries.shared_by_at_least(loaded_db, 3) == ["CVE-2007-0004"]
        assert len(queries.shared_by_at_least(loaded_db, 2)) == 3


class TestSQLMatchesInMemoryAnalysis:
    """The SQL queries and the in-memory analysis must agree on the corpus."""

    def test_pair_counts_agree_on_sample(self, corpus):
        from repro.analysis.dataset import VulnerabilityDataset
        from repro.analysis.pairs import PairAnalysis

        sample = corpus.entries[:400]
        pipeline = IngestPipeline()
        pipeline.ingest_entries(sample)
        sql_counts = queries.pair_shared_counts(pipeline.database)
        dataset = VulnerabilityDataset(sample)
        analysis = PairAnalysis(dataset)
        memory_counts = analysis.shared_matrix(ServerConfiguration.FAT)
        for pair, count in memory_counts.items():
            assert sql_counts.get(tuple(sorted(pair)), 0) == count
        pipeline.database.close()
