"""Tests for the SQLite vulnerability database."""

import pytest

from repro.core.enums import AccessVector, ComponentClass, ValidityStatus
from repro.core.exceptions import DatabaseError
from repro.db.database import VulnerabilityDatabase
from repro.db.schema import SCHEMA_STATEMENTS
from tests.conftest import make_entry


@pytest.fixture()
def db():
    database = VulnerabilityDatabase()
    database.register_os_catalog()
    yield database
    database.close()


class TestSchema:
    def test_schema_has_figure1_tables(self):
        ddl = " ".join(SCHEMA_STATEMENTS)
        for table in ("os", "os_release", "vulnerability", "vulnerability_type",
                      "cvss", "security_protection", "os_vuln"):
            assert f"CREATE TABLE IF NOT EXISTS {table}" in ddl

    def test_catalog_registration_is_idempotent(self, db):
        db.register_os_catalog()
        assert len(db.os_names()) == 11

    def test_os_names_registered(self, db):
        assert set(db.os_names()) == {
            "OpenBSD", "NetBSD", "FreeBSD", "OpenSolaris", "Solaris",
            "Debian", "Ubuntu", "RedHat", "Windows2000", "Windows2003", "Windows2008",
        }


class TestInsertAndLoad:
    def test_insert_and_count(self, db):
        db.insert_entry(make_entry())
        assert db.entry_count() == 1
        assert db.entry_count(only_valid=True) == 1

    def test_insert_preserves_fields_on_load(self, db):
        original = make_entry(
            cve_id="CVE-2007-1234",
            oses=("Debian", "RedHat"),
            component_class=ComponentClass.SYSTEM_SOFTWARE,
            access=AccessVector.LOCAL,
            versions={"Debian": ("4.0",), "RedHat": ()},
        )
        db.insert_entry(original)
        loaded = db.load_entries()[0]
        assert loaded.cve_id == original.cve_id
        assert loaded.published == original.published
        assert loaded.affected_os == original.affected_os
        assert loaded.component_class is ComponentClass.SYSTEM_SOFTWARE
        assert loaded.cvss.access_vector is AccessVector.LOCAL
        assert loaded.affected_versions["Debian"] == ("4.0",)
        # An OS with no recorded versions means "all versions"; the
        # canonical representation drops the key, and .get reads it back.
        assert loaded.affected_versions.get("RedHat", ()) == ()
        assert loaded == original

    def test_duplicate_cve_rejected(self, db):
        db.insert_entry(make_entry())
        with pytest.raises(DatabaseError):
            db.insert_entry(make_entry())

    def test_insert_unknown_os_rejected(self):
        database = VulnerabilityDatabase()  # catalogue not registered
        with pytest.raises(DatabaseError):
            database.insert_entry(make_entry())
        database.close()

    def test_load_only_valid(self, db):
        db.insert_entries(
            [
                make_entry(cve_id="CVE-2001-0001"),
                make_entry(cve_id="CVE-2001-0002", validity=ValidityStatus.DISPUTED),
            ]
        )
        assert db.entry_count() == 2
        assert [e.cve_id for e in db.load_entries(only_valid=True)] == ["CVE-2001-0001"]

    def test_context_manager(self):
        with VulnerabilityDatabase() as database:
            database.register_os_catalog()
            database.insert_entry(make_entry())
            assert database.entry_count() == 1

    def test_on_disk_database(self, tmp_path):
        path = tmp_path / "nvd.sqlite"
        with VulnerabilityDatabase(path) as database:
            database.register_os_catalog()
            database.insert_entry(make_entry())
        with VulnerabilityDatabase(path) as reopened:
            assert reopened.entry_count() == 1


class TestManualEnrichment:
    def test_set_component_class(self, db):
        db.insert_entry(make_entry(component_class=ComponentClass.APPLICATION))
        db.set_component_class("CVE-2005-0001", ComponentClass.KERNEL)
        assert db.load_entries()[0].component_class is ComponentClass.KERNEL

    def test_set_component_class_unknown_cve(self, db):
        with pytest.raises(DatabaseError):
            db.set_component_class("CVE-1900-0001", ComponentClass.KERNEL)

    def test_set_validity(self, db):
        db.insert_entry(make_entry())
        db.set_validity("CVE-2005-0001", ValidityStatus.UNSPECIFIED)
        assert db.entry_count(only_valid=True) == 0

    def test_set_validity_unknown_cve(self, db):
        with pytest.raises(DatabaseError):
            db.set_validity("CVE-1900-0001", ValidityStatus.VALID)
