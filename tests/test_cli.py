"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_select_defaults(self):
        args = build_parser().parse_args(["select"])
        assert args.faults == 1
        assert args.quorum == "3f+1"


class TestCommands:
    def test_table_command(self, capsys):
        assert main(["table", "--id", "Table I"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "OpenBSD" in out

    def test_table_command_figure(self, capsys):
        assert main(["table", "--id", "Figure 3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_table_command_unknown_id(self, capsys):
        assert main(["table", "--id", "Table 99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "measured=" in out

    def test_experiments_markdown(self, capsys):
        assert main(["experiments", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Reproduction report")
        assert "### Table III" in out

    def test_select_command(self, capsys):
        assert main(["select", "--faults", "1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "f=1" in out
        assert out.count("history=") == 3

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "single-exploit" in out
        assert "Set1" in out

    def test_simulate_engines_agree(self, capsys):
        assert main(["simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        bitset_out = capsys.readouterr().out
        assert main(["--engine", "naive", "simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        naive_out = capsys.readouterr().out
        assert bitset_out.replace("engine bitset", "") == naive_out.replace("engine naive", "")

    def test_sweep_command_text_output(self, capsys):
        assert main(["sweep", "--runs", "5", "--horizon", "2.0",
                     "--no-cache", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("sweep: 3 cells")
        assert "cells from cache" in out

    def test_sweep_rejects_non_positive_workers(self, capsys):
        assert main(["sweep", "--runs", "5", "--workers", "0", "--no-cache"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_sweep_rejects_unknown_os(self, capsys):
        assert main(["sweep", "--runs", "5", "--os", "BeOS", "--no-cache"]) == 2
        assert "unknown operating system" in capsys.readouterr().err

    def test_sweep_rejects_bad_grid_axis(self, capsys):
        assert main(["sweep", "--runs", "5", "--quorum-models", "9f+9",
                     "--no-cache"]) == 2
        assert "invalid grid" in capsys.readouterr().err

    def test_simulate_custom_configurations(self, capsys):
        assert main([
            "simulate", "--runs", "5", "--horizon", "2.0",
            "--homogeneous", "Windows2003", "--config", "Set2",
            "--os", "Debian,OpenBSD,Solaris",
            "--quorum-model", "2f+1", "--recovery-interval", "1.0",
            "--arrival", "aging", "--shape", "1.5", "--smart",
        ]) == 0
        out = capsys.readouterr().out
        assert "homogeneous (4 x Windows2003)" in out
        assert "Set2" in out
        assert "custom (Debian+OpenBSD+Solaris)" in out
        assert "aging arrivals" in out

    def test_simulate_json_output(self, capsys):
        import json

        assert main(["simulate", "--runs", "5", "--horizon", "2.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "bitset"
        assert len(payload["campaigns"]) == 3
        for campaign in payload["campaigns"]:
            assert 0.0 <= campaign["safety_violation_probability"] <= 1.0
            low, high = campaign["safety_violation_ci"]
            assert 0.0 <= low <= high <= 1.0

    def test_simulate_recovery_sweep(self, capsys):
        assert main([
            "simulate", "--runs", "5", "--horizon", "2.0",
            "--config", "Set1", "--recovery-sweep", "0.5,1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "Set1@no-recovery" in out
        assert "Set1@recovery=0.5" in out
        assert "Set1@recovery=1" in out

    def test_simulate_sweep_conflicts_with_interval(self, capsys):
        assert main([
            "simulate", "--recovery-sweep", "1.0", "--recovery-interval", "2.0",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_simulate_repeated_os_flags_make_separate_configurations(self, capsys):
        assert main([
            "simulate", "--runs", "5", "--horizon", "2.0",
            "--os", "Debian,OpenBSD", "--os", "RedHat,Solaris",
        ]) == 0
        out = capsys.readouterr().out
        assert "custom (Debian+OpenBSD)" in out
        assert "custom (RedHat+Solaris)" in out
        assert "custom (Debian+OpenBSD+RedHat+Solaris)" not in out

    def test_simulate_rejects_malformed_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--recovery-sweep", "abc"])
        assert "invalid interval list" in capsys.readouterr().err

    def test_simulate_rejects_unknown_os(self, capsys):
        assert main(["simulate", "--os", "Debbian,OpenBSD"]) == 2
        assert "unknown operating system 'Debbian'" in capsys.readouterr().err

    def test_simulate_rejects_empty_os_list(self, capsys):
        assert main(["simulate", "--os", ","]) == 2
        assert "no replicas" in capsys.readouterr().err

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table_iii.csv").exists()
        assert (tmp_path / "figure_2.txt").exists()

    def test_feeds_command(self, tmp_path, capsys):
        assert main(["feeds", "--output", str(tmp_path)]) == 0
        xml_feeds = list(tmp_path.glob("*.xml"))
        assert xml_feeds
        assert (tmp_path / "nvdcve-all.json").exists()

    def test_feeds_option_reads_back_generated_feeds(self, tmp_path, capsys):
        """The --feeds option analyses an arbitrary directory of NVD XML feeds."""
        assert main(["feeds", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["--feeds", str(tmp_path), "table", "--id", "Table I"]) == 0
        out = capsys.readouterr().out
        assert "Solaris" in out

    def test_feeds_option_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--feeds", str(tmp_path), "tables"])
