"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_select_defaults(self):
        args = build_parser().parse_args(["select"])
        assert args.faults == 1
        assert args.quorum == "3f+1"


class TestCommands:
    def test_table_command(self, capsys):
        assert main(["table", "--id", "Table I"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "OpenBSD" in out

    def test_table_command_figure(self, capsys):
        assert main(["table", "--id", "Figure 3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_table_command_unknown_id(self, capsys):
        assert main(["table", "--id", "Table 99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "measured=" in out

    def test_experiments_markdown(self, capsys):
        assert main(["experiments", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Reproduction report")
        assert "### Table III" in out

    def test_select_command(self, capsys):
        assert main(["select", "--faults", "1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "f=1" in out
        assert out.count("history=") == 3

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "single-exploit" in out
        assert "Set1" in out

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table_iii.csv").exists()
        assert (tmp_path / "figure_2.txt").exists()

    def test_feeds_command(self, tmp_path, capsys):
        assert main(["feeds", "--output", str(tmp_path)]) == 0
        xml_feeds = list(tmp_path.glob("*.xml"))
        assert xml_feeds
        assert (tmp_path / "nvdcve-all.json").exists()

    def test_feeds_option_reads_back_generated_feeds(self, tmp_path, capsys):
        """The --feeds option analyses an arbitrary directory of NVD XML feeds."""
        assert main(["feeds", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["--feeds", str(tmp_path), "table", "--id", "Table I"]) == 0
        out = capsys.readouterr().out
        assert "Solaris" in out

    def test_feeds_option_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--feeds", str(tmp_path), "tables"])
