"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_select_defaults(self):
        args = build_parser().parse_args(["select"])
        assert args.faults == 1
        assert args.quorum == "3f+1"


class TestCommands:
    def test_table_command(self, capsys):
        assert main(["table", "--id", "Table I"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "OpenBSD" in out

    def test_table_command_figure(self, capsys):
        assert main(["table", "--id", "Figure 3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_table_command_unknown_id(self, capsys):
        assert main(["table", "--id", "Table 99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "measured=" in out

    def test_experiments_markdown(self, capsys):
        assert main(["experiments", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Reproduction report")
        assert "### Table III" in out

    def test_select_command(self, capsys):
        assert main(["select", "--faults", "1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "f=1" in out
        assert out.count("history=") == 3

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "single-exploit" in out
        assert "Set1" in out

    def test_simulate_engines_agree(self, capsys):
        assert main(["simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        bitset_out = capsys.readouterr().out
        assert main(["--engine", "naive", "simulate", "--runs", "5", "--horizon", "2.0"]) == 0
        naive_out = capsys.readouterr().out
        assert bitset_out.replace("engine bitset", "") == naive_out.replace("engine naive", "")

    def test_sweep_command_text_output(self, capsys):
        assert main(["sweep", "--runs", "5", "--horizon", "2.0",
                     "--no-cache", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("sweep: 3 cells")
        assert "cells from cache" in out

    def test_sweep_rejects_non_positive_workers(self, capsys):
        assert main(["sweep", "--runs", "5", "--workers", "0", "--no-cache"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_sweep_rejects_unknown_os(self, capsys):
        assert main(["sweep", "--runs", "5", "--os", "BeOS", "--no-cache"]) == 2
        assert "unknown operating system" in capsys.readouterr().err

    def test_sweep_rejects_bad_grid_axis(self, capsys):
        assert main(["sweep", "--runs", "5", "--quorum-models", "9f+9",
                     "--no-cache"]) == 2
        assert "invalid grid" in capsys.readouterr().err

    def test_simulate_custom_configurations(self, capsys):
        assert main([
            "simulate", "--runs", "5", "--horizon", "2.0",
            "--homogeneous", "Windows2003", "--config", "Set2",
            "--os", "Debian,OpenBSD,Solaris",
            "--quorum-model", "2f+1", "--recovery-interval", "1.0",
            "--arrival", "aging", "--shape", "1.5", "--smart",
        ]) == 0
        out = capsys.readouterr().out
        assert "homogeneous (4 x Windows2003)" in out
        assert "Set2" in out
        assert "custom (Debian+OpenBSD+Solaris)" in out
        assert "aging arrivals" in out

    def test_simulate_json_output(self, capsys):
        import json

        assert main(["simulate", "--runs", "5", "--horizon", "2.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "bitset"
        assert len(payload["campaigns"]) == 3
        for campaign in payload["campaigns"]:
            assert 0.0 <= campaign["safety_violation_probability"] <= 1.0
            low, high = campaign["safety_violation_ci"]
            assert 0.0 <= low <= high <= 1.0

    def test_simulate_recovery_sweep(self, capsys):
        assert main([
            "simulate", "--runs", "5", "--horizon", "2.0",
            "--config", "Set1", "--recovery-sweep", "0.5,1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "Set1@no-recovery" in out
        assert "Set1@recovery=0.5" in out
        assert "Set1@recovery=1" in out

    def test_simulate_sweep_conflicts_with_interval(self, capsys):
        assert main([
            "simulate", "--recovery-sweep", "1.0", "--recovery-interval", "2.0",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_simulate_repeated_os_flags_make_separate_configurations(self, capsys):
        assert main([
            "simulate", "--runs", "5", "--horizon", "2.0",
            "--os", "Debian,OpenBSD", "--os", "RedHat,Solaris",
        ]) == 0
        out = capsys.readouterr().out
        assert "custom (Debian+OpenBSD)" in out
        assert "custom (RedHat+Solaris)" in out
        assert "custom (Debian+OpenBSD+RedHat+Solaris)" not in out

    def test_simulate_rejects_malformed_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--recovery-sweep", "abc"])
        assert "invalid interval list" in capsys.readouterr().err

    def test_simulate_rejects_unknown_os(self, capsys):
        assert main(["simulate", "--os", "Debbian,OpenBSD"]) == 2
        assert "unknown operating system 'Debbian'" in capsys.readouterr().err

    def test_simulate_rejects_empty_os_list(self, capsys):
        assert main(["simulate", "--os", ","]) == 2
        assert "no replicas" in capsys.readouterr().err

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table_iii.csv").exists()
        assert (tmp_path / "figure_2.txt").exists()

    def test_feeds_command(self, tmp_path, capsys):
        assert main(["feeds", "--output", str(tmp_path)]) == 0
        xml_feeds = list(tmp_path.glob("*.xml"))
        assert xml_feeds
        assert (tmp_path / "nvdcve-all.json").exists()

    def test_feeds_option_reads_back_generated_feeds(self, tmp_path, capsys):
        """The --feeds option analyses an arbitrary directory of NVD XML feeds."""
        assert main(["feeds", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["--feeds", str(tmp_path), "table", "--id", "Table I"]) == 0
        out = capsys.readouterr().out
        assert "Solaris" in out

    def test_feeds_option_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--feeds", str(tmp_path), "tables"])


class TestIngestAndSnapshotCommands:
    """The incremental pipeline surfaced on the CLI (ingest + snapshot)."""

    @pytest.fixture(scope="class")
    def base_db(self, tmp_path_factory):
        """A database populated by `repro ingest` once per class (copied below)."""
        db_path = tmp_path_factory.mktemp("cli-ingest") / "base.db"
        assert main(["--db", str(db_path), "ingest"]) == 0
        return db_path

    @pytest.fixture()
    def ingested_db(self, base_db, tmp_path, capsys):
        """A private copy of the ingested database (tests mutate it)."""
        import shutil

        db_path = tmp_path / "data.db"
        shutil.copy(base_db, db_path)
        capsys.readouterr()
        return db_path

    def _write_delta(self, tmp_path, seed=42, **kwargs):
        from repro.synthetic import build_corpus, evolve_corpus

        delta = evolve_corpus(build_corpus(), fraction=0.005, seed=seed, **kwargs)
        return delta.write_feed(tmp_path / f"modified-{seed}.xml")

    def test_ingest_requires_db(self, capsys):
        assert main(["ingest"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_ingest_populates_and_commits(self, ingested_db, capsys):
        assert main(["--db", str(ingested_db), "snapshot", "list"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("#1 ")
        assert "parent=-" in out

    def test_full_reingest_into_populated_db_is_refused(self, ingested_db, capsys):
        assert main(["--db", str(ingested_db), "ingest"]) == 2
        assert "--delta" in capsys.readouterr().err

    def test_delta_ingest_commits_one_snapshot(self, ingested_db, tmp_path, capsys):
        feed = self._write_delta(tmp_path)
        assert main(["--db", str(ingested_db), "ingest", "--delta", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "modified" in out and "#2" in out

    def test_delta_reapplication_is_a_noop(self, ingested_db, tmp_path, capsys):
        feed = self._write_delta(tmp_path)
        assert main(["--db", str(ingested_db), "ingest", "--delta", str(feed)]) == 0
        capsys.readouterr()
        assert main(["--db", str(ingested_db), "ingest", "--delta", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "~0 modified" in out  # second apply changed nothing
        capsys.readouterr()
        assert main(["--db", str(ingested_db), "snapshot", "list"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_snapshot_diff_defaults_to_parent_vs_head(self, ingested_db, tmp_path,
                                                      capsys):
        feed = self._write_delta(tmp_path)
        assert main(["--db", str(ingested_db), "ingest", "--delta", str(feed)]) == 0
        capsys.readouterr()
        assert main(["--db", str(ingested_db), "snapshot", "diff", "--cves"]) == 0
        out = capsys.readouterr().out
        assert "snapshot #1" in out and "-> #2" in out
        assert "affected OSes:" in out
        assert "~ CVE-" in out

    def test_snapshot_diff_on_rootless_head_fails(self, ingested_db, capsys):
        assert main(["--db", str(ingested_db), "snapshot", "diff"]) == 2
        assert "no parent" in capsys.readouterr().err

    def test_snapshot_checkout_round_trips(self, ingested_db, tmp_path, capsys):
        out_dir = tmp_path / "checkout"
        assert main(["--db", str(ingested_db), "snapshot", "checkout",
                     "--output", str(out_dir)]) == 0
        assert list(out_dir.glob("*.xml"))
        capsys.readouterr()
        # Re-ingesting the checkout reproduces the snapshot digest.
        verify = tmp_path / "verify.db"
        assert main(["--db", str(verify), "--feeds", str(out_dir), "ingest"]) == 0
        capsys.readouterr()
        from repro.db.database import VulnerabilityDatabase
        from repro.snapshots.store import SnapshotStore

        with VulnerabilityDatabase(ingested_db) as original, \
                VulnerabilityDatabase(verify) as copy:
            assert SnapshotStore(original).head().digest == \
                SnapshotStore(copy).head().digest

    def test_snapshot_drift_reports_table1_numbers(self, ingested_db, tmp_path,
                                                   capsys):
        feed = self._write_delta(tmp_path, rejections=2)
        assert main(["--db", str(ingested_db), "ingest", "--delta", str(feed)]) == 0
        capsys.readouterr()
        assert main(["--db", str(ingested_db), "snapshot", "drift"]) == 0
        out = capsys.readouterr().out
        assert "SnapshotDrift" in out
        assert "#1 -> #2" in out

    def test_snapshot_commands_require_existing_db(self, tmp_path, capsys):
        missing = tmp_path / "nope.db"
        assert main(["--db", str(missing), "snapshot", "list"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_analyses_run_on_pinned_snapshot(self, ingested_db, tmp_path, capsys):
        feed = self._write_delta(tmp_path)
        assert main(["--db", str(ingested_db), "ingest", "--delta", str(feed)]) == 0
        capsys.readouterr()
        assert main(["--db", str(ingested_db), "--snapshot", "1",
                     "table", "--id", "Table I"]) == 0
        pinned = capsys.readouterr().out
        assert main(["table", "--id", "Table I"]) == 0
        synthetic = capsys.readouterr().out
        assert pinned == synthetic  # snapshot 1 is the untouched full corpus

    def test_sweep_json_embeds_dataset_digest(self, ingested_db, capsys):
        import json

        assert main(["--db", str(ingested_db), "sweep", "--runs", "4",
                     "--horizon", "1.0", "--os", "Debian,OpenBSD",
                     "--no-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"]["source"] == "db"
        assert payload["dataset"]["snapshot_id"] == 1
        assert len(payload["dataset"]["digest"]) == 64
        assert payload["dataset"]["snapshot_digest"] == payload["dataset"]["digest"]
        for cell in payload["cells"]:
            assert len(cell["scope_digest"]) == 64

    def test_sweep_csv_embeds_digests(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(["sweep", "--runs", "4", "--horizon", "1.0",
                     "--os", "Debian,OpenBSD", "--no-cache",
                     "--csv", str(csv_path)]) == 0
        header, first = csv_path.read_text(encoding="utf-8").splitlines()[:2]
        assert "corpus_digest" in header and "scope_digest" in header
        assert first.count(",") == header.count(",")


class TestSnapshotSelector:
    def test_all_digit_digest_prefix_falls_back_to_digest_lookup(self):
        from repro.cli import _resolve_snapshot
        from repro.db.database import VulnerabilityDatabase
        from repro.snapshots.store import SnapshotStore

        database = VulnerabilityDatabase()
        store = SnapshotStore(database)
        with database.connection:
            database.connection.execute(
                "INSERT INTO snapshot (digest, parent_digest, created, source,"
                " entry_count, added, modified, removed)"
                " VALUES ('123abc456def', NULL, '2011-06-27T00:00:00', 's',"
                " 0, 0, 0, 0)"
            )
        # "123" is all digits but names no ledger id -> digest-prefix match.
        assert _resolve_snapshot(store, "123").digest == "123abc456def"
        # A real ledger id still wins.
        assert _resolve_snapshot(store, "1").snapshot_id == 1

    def test_unknown_snapshot_selector_fails_cleanly(self, tmp_path, capsys):
        from repro.db.database import VulnerabilityDatabase
        from repro.snapshots.store import SnapshotStore
        from tests.conftest import make_entry

        db_path = tmp_path / "sel.db"
        with VulnerabilityDatabase(db_path) as database:
            database.register_os_catalog()
            database.insert_entry(make_entry())
            SnapshotStore(database).commit(source="seed")
        with pytest.raises(SystemExit) as exc_info:
            main(["--db", str(db_path), "--snapshot", "ffff", "tables"])
        assert "no snapshot" in str(exc_info.value)

    def test_db_option_does_not_create_stray_files(self, tmp_path):
        missing = tmp_path / "typo.db"
        with pytest.raises(SystemExit) as exc_info:
            main(["--db", str(missing), "tables"])
        assert "does not exist" in str(exc_info.value)
        assert not missing.exists()


class TestVersionFlag:
    def test_version_prints_package_version_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_wins_over_subcommands(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version", "tables"])
        assert exc_info.value.code == 0


class TestCacheDirEnvironment:
    def test_repro_cache_dir_sets_the_sweep_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/env-cache")
        args = build_parser().parse_args(["sweep"])
        assert args.cache_dir == "/tmp/env-cache"

    def test_explicit_flag_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/env-cache")
        args = build_parser().parse_args(["sweep", "--cache-dir", "explicit"])
        assert args.cache_dir == "explicit"

    def test_default_without_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["sweep"])
        assert args.cache_dir == ".repro-cache"


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8142
        assert args.workers == 1
        assert args.cache_size == 256
        assert args.host == "127.0.0.1"

    def test_serve_rejects_bad_configuration(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "worker" in capsys.readouterr().err

    def test_serve_rejects_bad_port(self, capsys):
        assert main(["serve", "--port", "70000"]) == 2
        assert "port" in capsys.readouterr().err

    def test_serve_missing_db_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "absent.db"
        assert main(["--db", str(missing), "serve"]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()

    def test_serve_empty_feed_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["--feeds", str(tmp_path), "serve"]) == 2
        assert "no .xml feeds" in capsys.readouterr().err
