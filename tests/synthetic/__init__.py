"""Test package."""
