"""Tests for the calibration data and the overlap solver."""

import itertools

import pytest

from repro.core.constants import OS_NAMES
from repro.core.exceptions import CalibrationError
from repro.synthetic.calibration import (
    PaperCalibration,
    TABLE1,
    TABLE2,
    TABLE3_OS_TOTALS,
    TABLE3_PAIRS,
    TABLE4_PAIRS,
    TABLE5_PAIRS,
    pair,
)
from repro.synthetic.solver import OverlapSolver


class TestCalibrationData:
    def test_pair_helper_rejects_identical_oses(self):
        with pytest.raises(ValueError):
            pair("Debian", "Debian")

    def test_validate_passes_on_shipped_data(self):
        PaperCalibration().validate()

    def test_all_55_pairs_present(self):
        assert len(TABLE3_PAIRS) == 55
        expected = {frozenset(c) for c in itertools.combinations(OS_NAMES, 2)}
        assert set(TABLE3_PAIRS) == expected

    def test_table2_sums_to_table1_valid(self):
        for name in OS_NAMES:
            assert sum(TABLE2[name]) == TABLE1[name][0]

    def test_table3_totals_consistent_with_application_counts(self):
        for name in OS_NAMES:
            total, noapp, nolocal = TABLE3_OS_TOTALS[name]
            assert total == TABLE1[name][0]
            assert noapp == total - TABLE2[name][3]
            assert 0 <= nolocal <= noapp

    def test_table4_sums_match_table3_isolated_column(self):
        for key, parts in TABLE4_PAIRS.items():
            assert sum(parts) == TABLE3_PAIRS[key][2]

    def test_table5_periods_sum_to_isolated_counts(self):
        for key, (history, observed) in TABLE5_PAIRS.items():
            assert history + observed == TABLE3_PAIRS[key][2]

    def test_validate_detects_transcription_errors(self):
        broken = dict(TABLE1)
        broken["Debian"] = (999, 3, 1, 0)
        with pytest.raises(ValueError):
            PaperCalibration(table1=broken).validate()

    def test_special_cves_are_consistent_with_pair_counts(self):
        calibration = PaperCalibration()
        for _cve, (_cls, oses, _topic, _year) in calibration.special_cves.items():
            for os_a, os_b in itertools.combinations(sorted(oses), 2):
                assert calibration.table3_pairs[pair(os_a, os_b)][0] >= 1

    def test_accessors(self):
        calibration = PaperCalibration()
        assert calibration.pair_target("Windows2000", "Windows2003") == (253, 116, 81)
        assert calibration.pair_parts("Debian", "RedHat") == (0, 5, 6)
        assert calibration.pair_periods("Debian", "RedHat") == (10, 1)
        assert calibration.pair_periods("Ubuntu", "OpenSolaris") == (-1, -1)


class TestSolver:
    @pytest.fixture(scope="class")
    def result(self):
        return OverlapSolver().solve()

    def test_per_os_totals_match_table1(self, result):
        totals = result.implied_os_totals()
        for name in OS_NAMES:
            assert totals[name] == TABLE1[name][0]

    def test_pair_totals_match_table3(self, result):
        pair_totals = result.implied_pair_totals()
        for key, (target, _noapp, _nolocal) in TABLE3_PAIRS.items():
            assert pair_totals.get(key, 0) == target

    def test_no_negative_singletons(self, result):
        assert all(count >= 0 for count in result.singleton_counts.values())

    def test_special_cves_present(self, result):
        assert set(result.special_groups) == {
            "CVE-2008-1447",
            "CVE-2007-5365",
            "CVE-2008-4609",
        }

    def test_total_distinct_is_close_to_paper(self, result):
        # The paper reports 1887 distinct valid vulnerabilities; the
        # reconstruction is within a few percent (see EXPERIMENTS.md).
        assert abs(result.total_distinct() - 1887) <= 80

    def test_all_groups_expansion_matches_counts(self, result):
        groups = result.all_groups()
        assert len(groups) == result.total_distinct()
        singles = sum(1 for group in groups if len(group) == 1)
        assert singles == sum(result.singleton_counts.values())

    def test_stats_recorded(self, result):
        assert "distinct" in result.stats
        assert result.stats["distinct"] == result.total_distinct()

    def test_custom_kset_targets(self):
        result = OverlapSolver(kset_targets={3: 20, 4: 5, 5: 2}).solve()
        ge3 = sum(1 for group in result.all_groups() if len(group) >= 3)
        # The three special CVEs always count towards >=3.
        assert ge3 >= 20
        totals = result.implied_os_totals()
        for name in OS_NAMES:
            assert totals[name] == TABLE1[name][0]

    def test_invalid_kset_targets_rejected(self):
        with pytest.raises(CalibrationError):
            OverlapSolver(kset_targets={3: 5, 4: 10, 5: 2})
