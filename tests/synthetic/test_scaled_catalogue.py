"""Tests for the scalable catalogue mode of the synthetic generator."""

import pytest

from repro.analysis.selection import ReplicaSetSelector
from repro.analysis.sensitivity import SensitivityAnalysis
from repro.core.enums import ComponentClass, ServerConfiguration
from repro.synthetic.generator import ScaledCatalogue, generate_scaled_catalogue


@pytest.fixture(scope="module")
def catalogue() -> ScaledCatalogue:
    return generate_scaled_catalogue(
        n_families=4, releases_per_family=5, vulns_per_os=10, seed=7
    )


class TestGeneration:
    def test_catalogue_shape(self, catalogue):
        assert len(catalogue.os_names) == 20
        assert len(catalogue.families) == 4
        assert all(len(members) == 5 for members in catalogue.families.values())
        assert len(catalogue.entries) == 200

    def test_deterministic_for_seed(self, catalogue):
        again = generate_scaled_catalogue(
            n_families=4, releases_per_family=5, vulns_per_os=10, seed=7
        )
        assert again.entries == catalogue.entries
        other_seed = generate_scaled_catalogue(
            n_families=4, releases_per_family=5, vulns_per_os=10, seed=8
        )
        assert other_seed.entries != catalogue.entries

    def test_unique_cve_ids_and_valid_entries(self, catalogue):
        ids = [entry.cve_id for entry in catalogue.entries]
        assert len(set(ids)) == len(ids)
        assert all(entry.is_valid for entry in catalogue.entries)
        assert all(entry.affected_os <= set(catalogue.os_names)
                   for entry in catalogue.entries)

    def test_sharing_structure_is_configurable(self):
        isolated = generate_scaled_catalogue(
            n_families=3, releases_per_family=4, vulns_per_os=10,
            intra_family_share=0.0, cross_family_share=0.0, seed=1,
        )
        assert all(len(entry.affected_os) == 1 for entry in isolated.entries)
        entangled = generate_scaled_catalogue(
            n_families=3, releases_per_family=4, vulns_per_os=10,
            intra_family_share=1.0, cross_family_share=0.5, seed=1,
        )
        assert any(len(entry.affected_os) > 1 for entry in entangled.entries)

    def test_class_mix_keeps_filters_non_trivial(self, catalogue):
        dataset = catalogue.dataset()
        fat = len(dataset.filtered(ServerConfiguration.FAT))
        thin = len(dataset.filtered(ServerConfiguration.THIN))
        isolated = len(dataset.filtered(ServerConfiguration.ISOLATED_THIN))
        assert fat > thin > isolated > 0
        classes = {entry.component_class for entry in catalogue.entries}
        assert ComponentClass.APPLICATION in classes
        assert ComponentClass.KERNEL in classes

    def test_rejects_empty_catalogue(self):
        with pytest.raises(ValueError):
            generate_scaled_catalogue(n_families=0)


class TestAnalysisOnScaledCatalogue:
    def test_dataset_uses_catalogue_names(self, catalogue):
        dataset = catalogue.dataset()
        assert dataset.os_names == catalogue.os_names
        assert sum(dataset.count_for(name) for name in catalogue.os_names) >= len(
            catalogue.entries
        )

    def test_cross_family_groups_are_more_diverse(self, catalogue):
        selector = ReplicaSetSelector(
            dataset=catalogue.dataset(),
            candidates=catalogue.os_names,
            configuration=ServerConfiguration.FAT,
        )
        best = selector.exhaustive(4, top=1)[0]
        families = {name.split("-")[0] for name in best.os_names}
        # The optimum spreads across families; a single-family group shares
        # its lineage vulnerabilities and scores strictly worse.
        same_family = selector.group_score(catalogue.families["F00"][:4])
        assert len(families) > 1
        assert best.pairwise_shared <= same_family

    def test_sensitivity_scale_sweep(self, valid_dataset):
        analysis = SensitivityAnalysis(valid_dataset)
        results = analysis.catalogue_scale_sensitivity(
            scales=((2, 3), (3, 4)), seed=5
        )
        assert set(results) == {(2, 3), (3, 4)}
        for low_pairs_pct, best_score in results.values():
            assert 0.0 <= low_pairs_pct <= 100.0
            assert best_score >= 0

    def test_sensitivity_engine_ablation_delta_zero(self, valid_dataset):
        ablation = SensitivityAnalysis(valid_dataset).engine_ablation()
        assert ablation.delta == 0.0
