"""Tests for the corpus generator and the packaged synthetic corpus."""

import collections
import itertools

import pytest

from repro.core.constants import OS_NAMES, STUDY_PERIOD
from repro.core.enums import ComponentClass, ValidityStatus
from repro.synthetic.calibration import TABLE1, TABLE2, TABLE3_OS_TOTALS, TABLE3_PAIRS
from repro.synthetic.corpus import build_corpus, default_corpus
from repro.synthetic.generator import CorpusGenerator, _largest_remainder, _release_for_year


class TestHelpers:
    def test_largest_remainder_preserves_total(self):
        assert sum(_largest_remainder([1.0, 2.0, 3.0], 10)) == 10

    def test_largest_remainder_proportionality(self):
        plan = _largest_remainder([1.0, 1.0, 2.0], 4)
        assert plan == [1, 1, 2]

    def test_largest_remainder_zero_total(self):
        assert _largest_remainder([1.0, 2.0], 0) == [0, 0]

    def test_largest_remainder_zero_weights_falls_back_to_uniform(self):
        assert sum(_largest_remainder([0.0, 0.0, 0.0], 7)) == 7

    def test_release_for_year(self):
        assert _release_for_year("Debian", 2008) == "4.0"
        assert _release_for_year("Debian", 1995) == "1.1"
        assert _release_for_year("Windows2008", 2009) in ("2008", "SP1")


class TestCorpusCalibration:
    """The generated corpus must reproduce the paper's aggregate statistics.

    These tests assert *exact* equality where the generator is designed to be
    exact (Tables I and II, the "All" column of Table III) and bounded error
    where the reconstruction is under-determined (the filtered columns).
    """

    def test_per_os_valid_totals_match_table1(self, corpus):
        valid = corpus.valid_entries
        for name in OS_NAMES:
            measured = sum(1 for entry in valid if entry.affects(name))
            assert measured == TABLE1[name][0]

    def test_per_os_class_counts_match_table2(self, corpus):
        """Table II is exact for at least 10 of the 11 OSes.

        Windows 2008 appears almost exclusively in vulnerabilities shared with
        Windows 2000/2003, so its per-class split is over-constrained by the
        pairwise targets and may drift by a couple of entries (documented in
        EXPERIMENTS.md).
        """
        valid = corpus.valid_entries
        order = (
            ComponentClass.DRIVER,
            ComponentClass.KERNEL,
            ComponentClass.SYSTEM_SOFTWARE,
            ComponentClass.APPLICATION,
        )
        exact = 0
        for name in OS_NAMES:
            measured = tuple(
                sum(1 for e in valid if e.affects(name) and e.component_class is cls)
                for cls in order
            )
            drift = sum(abs(m - t) for m, t in zip(measured, TABLE2[name]))
            assert drift <= 6, f"{name}: {measured} vs {TABLE2[name]}"
            if measured == TABLE2[name]:
                exact += 1
        assert exact >= 10

    def test_pairwise_all_counts_match_table3(self, corpus):
        valid = corpus.valid_entries
        for key, (target, _noapp, _nolocal) in TABLE3_PAIRS.items():
            os_a, os_b = sorted(key)
            measured = sum(1 for e in valid if e.affects(os_a) and e.affects(os_b))
            assert measured == target, f"{os_a}-{os_b}"

    def test_filtered_pair_counts_are_close_to_table3(self, corpus):
        valid = corpus.valid_entries
        total_error = 0
        for key, (_target, noapp, nolocal) in TABLE3_PAIRS.items():
            os_a, os_b = sorted(key)
            shared = [e for e in valid if e.affects(os_a) and e.affects(os_b)]
            measured_noapp = sum(1 for e in shared if not e.is_application)
            measured_nolocal = sum(
                1 for e in shared if not e.is_application and e.is_remote
            )
            total_error += abs(measured_noapp - noapp) + abs(measured_nolocal - nolocal)
        assert total_error <= 40

    def test_per_os_filtered_totals_match_table3(self, corpus):
        """Per-OS Thin / Isolated-Thin totals match Table III (±1 for Win2008)."""
        valid = corpus.valid_entries
        for name in OS_NAMES:
            _total, noapp, nolocal = TABLE3_OS_TOTALS[name]
            measured_noapp = sum(
                1 for e in valid if e.affects(name) and not e.is_application
            )
            measured_nolocal = sum(
                1 for e in valid if e.affects(name) and not e.is_application and e.is_remote
            )
            tolerance = 0 if name != "Windows2008" else 1
            assert abs(measured_noapp - noapp) <= tolerance
            assert abs(measured_nolocal - nolocal) <= tolerance

    def test_excluded_entry_counts(self, corpus):
        counter = collections.Counter(e.validity for e in corpus.excluded_entries)
        assert counter[ValidityStatus.UNKNOWN] == 60
        assert counter[ValidityStatus.UNSPECIFIED] == 165
        assert counter[ValidityStatus.DISPUTED] == 8

    def test_publication_dates_inside_study_period(self, corpus):
        for entry in corpus.entries:
            assert STUDY_PERIOD[0].year <= entry.published.year <= STUDY_PERIOD[1].year
            if entry.published.year == 2010:
                assert entry.published.month <= 9

    def test_special_cves_present_with_expected_breadth(self, corpus):
        dns = corpus.entry("CVE-2008-1447")
        dhcp = corpus.entry("CVE-2007-5365")
        tcp = corpus.entry("CVE-2008-4609")
        assert len(dns.affected_os) == 6
        assert len(dhcp.affected_os) == 6
        assert len(tcp.affected_os) == 5
        assert tcp.component_class is ComponentClass.KERNEL
        assert tcp.is_remote

    def test_cve_ids_are_unique_and_well_formed(self, corpus):
        ids = [entry.cve_id for entry in corpus.entries]
        assert len(ids) == len(set(ids))
        for cve_id in ids:
            prefix, year, number = cve_id.split("-")
            assert prefix == "CVE"
            assert 1994 <= int(year) <= 2010
            assert number.isdigit()

    def test_cve_year_matches_publication_year(self, corpus):
        for entry in corpus.entries:
            year = int(entry.cve_id.split("-")[1])
            assert year == entry.published.year


class TestDeterminismAndOptions:
    def test_generation_is_deterministic(self):
        a = build_corpus(seed=123)
        b = build_corpus(seed=123)
        assert [e.cve_id for e in a.entries] == [e.cve_id for e in b.entries]
        assert [sorted(e.affected_os) for e in a.entries] == [
            sorted(e.affected_os) for e in b.entries
        ]

    def test_different_seed_changes_details_but_not_totals(self, corpus):
        other = build_corpus(seed=99)
        assert len(other.valid_entries) == len(corpus.valid_entries)
        for name in OS_NAMES:
            assert sum(1 for e in other.valid_entries if e.affects(name)) == TABLE1[name][0]

    def test_include_invalid_false(self):
        corpus = build_corpus(include_invalid=False)
        assert not corpus.excluded_entries

    def test_default_corpus_is_cached(self):
        assert default_corpus() is default_corpus()

    def test_entry_lookup(self, corpus):
        entry = corpus.entry("CVE-2008-4609")
        assert entry.cve_id == "CVE-2008-4609"
        with pytest.raises(KeyError):
            corpus.entry("CVE-1900-0000")

    def test_generator_stats_exposed(self, corpus):
        assert corpus.stats["valid_entries"] >= 1800
        assert "solver_distinct" in corpus.stats


class TestFeedSerialisation:
    def test_xml_feed_roundtrip_preserves_affected_os(self, corpus, tmp_path):
        from repro.nvd.feed_parser import parse_xml_feeds
        from repro.nvd.normalize import ProductNormalizer

        paths = corpus.write_xml_feeds(tmp_path)
        assert paths, "at least one yearly feed should be written"
        raw_entries = parse_xml_feeds(paths)
        assert len(raw_entries) == len(corpus.entries)
        normalizer = ProductNormalizer()
        by_id = {entry.cve_id: entry for entry in corpus.entries}
        for raw in raw_entries[:200]:
            affected, _versions = normalizer.resolve_many(raw.parsed_cpes())
            assert affected == set(by_id[raw.cve_id].affected_os)

    def test_json_feed_roundtrip(self, corpus, tmp_path):
        from repro.nvd.json_feed import parse_json_feed

        path = corpus.write_json_feed(tmp_path / "corpus.json")
        parsed = parse_json_feed(path)
        assert len(parsed) == len(corpus.entries)
