"""Background simulation jobs: 202 + poll lifecycle, idempotence, drain."""

from __future__ import annotations

import time

import pytest

from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner
from repro.service.errors import Draining
from repro.service.jobs import request_fingerprint

SET1 = ["Windows2003", "Solaris", "Debian", "OpenBSD"]

REQUEST = {
    "configurations": {"Set1": SET1},
    "runs": 8,
    "horizon": 2.0,
    "seed": 11,
}


def _poll(client, job_id: str, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = client.get(f"/v1/jobs/{job_id}").json()
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestJobLifecycle:
    def test_submit_returns_202_with_location(self, server):
        client, _app = server
        result = client.post_json("/v1/simulations", REQUEST)
        assert result.status == 202
        payload = result.json()
        assert payload["state"] in ("queued", "running", "done")
        assert result.headers.get("Location") == f"/v1/jobs/{payload['job_id']}"
        assert payload["cells"] == 1
        assert payload["runs_per_cell"] == 8

    def test_job_result_matches_direct_grid_runner(self, server, dataset):
        client, _app = server
        submitted = client.post_json("/v1/simulations", REQUEST).json()
        finished = _poll(client, submitted["job_id"])
        assert finished["state"] == "done"

        grid = ExperimentGrid(
            configurations={"Set1": SET1},
            arrivals=(ArrivalSpec(),),
            runs=8,
            horizon=2.0,
        )
        expected = GridRunner.for_dataset(dataset, seed=11).run(grid)
        assert finished["result"] == expected.to_json_payload()

    def test_jobs_listing_excludes_results(self, server):
        client, _app = server
        submitted = client.post_json("/v1/simulations", REQUEST).json()
        _poll(client, submitted["job_id"])
        listing = client.get("/v1/jobs").json()["jobs"]
        assert [job["job_id"] for job in listing] == [submitted["job_id"]]
        assert "result" not in listing[0]

    def test_timestamps_progress_through_lifecycle(self, server):
        client, _app = server
        submitted = client.post_json("/v1/simulations", REQUEST).json()
        finished = _poll(client, submitted["job_id"])
        assert finished["submitted_at"] <= finished["started_at"]
        assert finished["started_at"] <= finished["finished_at"]


class TestIdempotentSubmission:
    def test_resubmitting_same_id_and_body_returns_same_job(self, server):
        client, _app = server
        body = {**REQUEST, "id": "nightly"}
        first = client.post_json("/v1/simulations", body)
        second = client.post_json("/v1/simulations", body)
        assert first.status == second.status == 202
        assert first.json()["job_id"] == second.json()["job_id"] == "nightly"
        assert len(client.get("/v1/jobs").json()["jobs"]) == 1

    def test_same_id_different_body_conflicts_409(self, server):
        client, _app = server
        client.post_json("/v1/simulations", {**REQUEST, "id": "nightly"})
        conflicting = client.post_json(
            "/v1/simulations", {**REQUEST, "id": "nightly", "runs": 16}
        )
        assert conflicting.status == 409
        error = conflicting.json()["error"]
        assert error["code"] == "conflict"
        assert error["detail"] == {"job_id": "nightly"}

    def test_fingerprint_ignores_the_id_field(self):
        assert request_fingerprint({**REQUEST, "id": "a"}) == request_fingerprint(
            {**REQUEST, "id": "b"}
        )
        assert request_fingerprint(REQUEST) != request_fingerprint(
            {**REQUEST, "runs": 16}
        )


class TestValidation:
    def test_unknown_os_is_rejected(self, server):
        client, _app = server
        result = client.post_json(
            "/v1/simulations",
            {"configurations": {"bad": ["Debian", "TempleOS"]}},
        )
        assert result.status == 400
        assert result.json()["error"]["detail"]["os"] == "TempleOS"

    def test_unknown_field_is_rejected(self, server):
        client, _app = server
        result = client.post_json("/v1/simulations", {**REQUEST, "bogus": 1})
        assert result.status == 400
        assert result.json()["error"]["detail"]["fields"] == ["bogus"]

    def test_oversized_grid_is_rejected(self, server):
        client, _app = server
        result = client.post_json(
            "/v1/simulations", {**REQUEST, "runs": 2_000_000}
        )
        assert result.status == 400
        assert "caps jobs" in result.json()["error"]["message"]

    def test_non_object_body_is_rejected(self, server):
        client, _app = server
        result = client.request(
            "POST",
            "/v1/simulations",
            headers={"Content-Type": "application/json"},
            body=b"[1, 2, 3]",
        )
        assert result.status == 400


class TestDrain:
    def test_drained_table_refuses_new_jobs(self, app, dataset):
        grid = ExperimentGrid(configurations={"Set1": SET1}, runs=2, horizon=1.0)
        job = app.jobs.submit(
            grid, 7, "digest", fingerprint="f", dataset=dataset
        )
        assert app.jobs.drain(grace=60.0) is True
        assert app.jobs.get(job.job_id).state == "done"
        with pytest.raises(Draining):
            app.jobs.submit(grid, 7, "digest", fingerprint="f", dataset=dataset)

    def test_drain_is_idempotent_and_counts_states(self, app):
        assert app.jobs.drain(grace=1.0) is True
        assert app.jobs.drain(grace=1.0) is True
        assert app.jobs.counts() == {
            "queued": 0, "running": 0, "done": 0, "failed": 0,
        }

    def test_invalid_client_ids_are_rejected(self, app, dataset):
        from repro.service.errors import BadRequest

        grid = ExperimentGrid(configurations={"Set1": SET1}, runs=2, horizon=1.0)
        for bad in ("a/b", "", "  ", "x" * 65, "evil\r\nX-Injected: 1"):
            with pytest.raises(BadRequest):
                app.jobs.submit(
                    grid, 7, "digest", fingerprint="f", job_id=bad, dataset=dataset
                )

    def test_crlf_in_client_id_is_rejected_over_http(self, server):
        client, _app = server
        result = client.post_json(
            "/v1/simulations", {**REQUEST, "id": "x\r\nX-Evil: 1"}
        )
        assert result.status == 400
        assert "X-Evil" not in result.headers

    def test_generated_ids_skip_client_claimed_names(self, server):
        client, _app = server
        claimed = client.post_json("/v1/simulations", {**REQUEST, "id": "job-1"})
        assert claimed.status == 202
        generated = client.post_json("/v1/simulations", {**REQUEST, "runs": 4})
        assert generated.status == 202
        assert generated.json()["job_id"] != "job-1"
        listing = client.get("/v1/jobs").json()["jobs"]
        ids = [job["job_id"] for job in listing]
        assert len(ids) == len(set(ids)) == 2

    def test_finished_jobs_are_evicted_beyond_the_bound(self, dataset):
        from repro.service.jobs import JobTable

        grid = ExperimentGrid(configurations={"Set1": SET1}, runs=2, horizon=1.0)
        table = JobTable(lambda job: {"ok": True}, max_jobs=2)
        jobs = [
            table.submit(grid, 7, "digest", fingerprint=str(index), dataset=dataset)
            for index in range(4)
        ]
        assert table.drain(grace=60.0) is True
        survivors = [job.job_id for job in table.list()]
        assert len(survivors) <= 2
        assert jobs[-1].job_id in survivors  # newest submissions survive
        with pytest.raises(Exception):
            table.get(jobs[0].job_id)  # oldest finished job was evicted

    def test_terminal_jobs_release_their_dataset(self, app, dataset):
        grid = ExperimentGrid(configurations={"Set1": SET1}, runs=2, horizon=1.0)
        job = app.jobs.submit(grid, 7, "digest", fingerprint="f", dataset=dataset)
        assert app.jobs.drain(grace=60.0) is True
        assert job.state == "done"
        assert job.dataset is None

    def test_failed_job_reports_error(self, app):
        grid = ExperimentGrid(configurations={"Set1": SET1}, runs=2, horizon=1.0)
        # dataset=None makes the runner factory blow up inside the worker.
        job = app.jobs.submit(grid, 7, "digest", fingerprint="f", dataset=None)
        assert app.jobs.drain(grace=60.0) is True
        finished = app.jobs.get(job.job_id)
        assert finished.state == "failed"
        assert finished.error
        assert "error" in finished.payload()
