"""Units for the artifact registry and the scoped-digest response cache."""

from __future__ import annotations

import pytest

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.enums import ServerConfiguration
from repro.service.cache import (
    CachedResponse,
    ResponseCache,
    canonical_query,
    make_etag,
)
from repro.service.registry import (
    ArtifactRegistry,
    CorpusArtifacts,
    DatasetState,
    StaticDatasetProvider,
)

from tests.conftest import make_entry


def _provider(entries, label="unit"):
    return StaticDatasetProvider(entries, label=label)


def _entries(oses=("Debian", "OpenBSD")):
    return [
        make_entry(cve_id=f"CVE-2005-{index:04d}", oses=oses)
        for index in range(1, 4)
    ]


class TestArtifactRegistry:
    def test_one_compile_per_digest(self):
        provider = _provider(_entries())
        registry = ArtifactRegistry()
        state = provider.current()
        first = registry.get(state, provider.load)
        second = registry.get(state, provider.load)
        assert first is second
        assert registry.compile_count == 1
        assert registry.hit_count == 1

    def test_distinct_digests_compile_separately(self):
        one = _provider(_entries())
        two = _provider(_entries(("Ubuntu", "NetBSD")))
        registry = ArtifactRegistry()
        registry.get(one.current(), one.load)
        registry.get(two.current(), two.load)
        assert registry.compile_count == 2
        assert len(registry) == 2

    def test_lru_bound_evicts_oldest(self):
        providers = [
            _provider(_entries((os_name, "Debian")))
            for os_name in ("OpenBSD", "NetBSD", "Ubuntu")
        ]
        registry = ArtifactRegistry(max_datasets=2)
        for provider in providers:
            registry.get(provider.current(), provider.load)
        assert len(registry) == 2
        # The first provider's digest was evicted; using it again recompiles.
        registry.get(providers[0].current(), providers[0].load)
        assert registry.compile_count == 4

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            ArtifactRegistry(max_datasets=0)


class TestCorpusArtifacts:
    def test_scope_digest_ignores_untouched_oses(self):
        base = _entries(("Debian", "OpenBSD"))
        artifacts = CorpusArtifacts(
            VulnerabilityDataset(base), DatasetState(digest="d1")
        )
        scoped = artifacts.scope_digest(("Debian", "OpenBSD"))
        # Adding a Windows-only entry must not move the Debian/OpenBSD scope.
        extended = base + [
            make_entry(cve_id="CVE-2005-9999", oses=("Windows2003",))
        ]
        extended_artifacts = CorpusArtifacts(
            VulnerabilityDataset(extended), DatasetState(digest="d2")
        )
        assert extended_artifacts.scope_digest(("Debian", "OpenBSD")) == scoped
        assert extended_artifacts.scope_digest(None) != artifacts.scope_digest(None)

    def test_scope_digest_moves_with_touched_scope(self):
        base = _entries(("Debian", "OpenBSD"))
        artifacts = CorpusArtifacts(
            VulnerabilityDataset(base), DatasetState(digest="d1")
        )
        extended = base + [make_entry(cve_id="CVE-2005-9999", oses=("Debian",))]
        extended_artifacts = CorpusArtifacts(
            VulnerabilityDataset(extended), DatasetState(digest="d2")
        )
        assert extended_artifacts.scope_digest(
            ("Debian", "OpenBSD")
        ) != artifacts.scope_digest(("Debian", "OpenBSD"))

    def test_scope_digest_memo_is_lru_bounded(self, monkeypatch):
        import repro.service.registry as registry_module

        monkeypatch.setattr(registry_module, "MAX_SCOPE_DIGESTS", 4)
        oses = ("Debian", "OpenBSD", "NetBSD", "Ubuntu", "Solaris")
        artifacts = CorpusArtifacts(
            VulnerabilityDataset(_entries(oses)), DatasetState(digest="d")
        )
        import itertools

        for pair in itertools.combinations(oses, 2):  # 10 distinct scopes
            artifacts.scope_digest(pair)
        assert len(artifacts._scoped) <= 4
        # Evicted scopes recompute to the same digest (memo is a cache).
        assert artifacts.scope_digest(("Debian", "OpenBSD")) == artifacts.scope_digest(
            ("Debian", "OpenBSD")
        )

    def test_pair_matrix_and_selector_are_memoized(self, dataset):
        artifacts = CorpusArtifacts(dataset, DatasetState(digest="x"))
        configuration = ServerConfiguration.ISOLATED_THIN
        assert artifacts.pair_matrix(configuration) is artifacts.pair_matrix(
            configuration
        )
        assert artifacts.selector(configuration) is artifacts.selector(
            configuration
        )


class TestResponseCache:
    @staticmethod
    def _response(scope, body=b"{}\n"):
        return CachedResponse(body=body, scope=scope)

    def test_round_trip_and_hit_counters(self):
        cache = ResponseCache(max_entries=4)
        key = ResponseCache.key("s1", "/v1/shared", "os=Debian")
        assert cache.get(key) is None
        cache.put(key, self._response(frozenset({"Debian"})))
        assert cache.get(key).body == b"{}\n"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_drops_least_recent(self):
        cache = ResponseCache(max_entries=2)
        keys = [ResponseCache.key("s", f"/p{index}", "") for index in range(3)]
        for key in keys:
            cache.put(key, self._response(None))
        assert cache.get(keys[0]) is None
        assert cache.get(keys[2]) is not None
        assert cache.stats()["evictions"] == 1

    def test_invalidate_scope_evicts_touched_and_global(self):
        cache = ResponseCache(max_entries=8)
        debian = ResponseCache.key("s", "/debian", "")
        windows = ResponseCache.key("s", "/windows", "")
        catalogue = ResponseCache.key("s", "/matrix", "")
        cache.put(debian, self._response(frozenset({"Debian", "OpenBSD"})))
        cache.put(windows, self._response(frozenset({"Windows2003"})))
        cache.put(catalogue, self._response(None))
        evicted = cache.invalidate_scope({"Debian"})
        assert evicted == 2  # the Debian-scoped entry and the global one
        assert cache.get(windows) is not None
        assert cache.get(debian) is None
        assert cache.get(catalogue) is None

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)


class TestEtags:
    def test_etag_is_strong_and_stable(self):
        one = make_etag("scope", "/v1/shared", "os=Debian")
        two = make_etag("scope", "/v1/shared", "os=Debian")
        assert one == two
        assert one.startswith('"') and one.endswith('"')
        assert not one.startswith('W/')

    def test_etag_varies_with_every_component(self):
        base = make_etag("scope", "/path", "q=1")
        assert make_etag("other", "/path", "q=1") != base
        assert make_etag("scope", "/other", "q=1") != base
        assert make_etag("scope", "/path", "q=2") != base

    def test_canonical_query_is_key_order_independent(self):
        one = canonical_query({"os": ("Debian", "OpenBSD"), "k": ("3",)})
        two = canonical_query({"k": ("3",), "os": ("Debian", "OpenBSD")})
        assert one == two == "k=3&os=Debian&os=OpenBSD"

    def test_canonical_query_preserves_repeated_value_order(self):
        # os=A&os=B and os=B&os=A are *different* responses (os_names
        # echoes the request order), so they must not share a key/ETag.
        one = canonical_query({"os": ("Debian", "OpenBSD")})
        two = canonical_query({"os": ("OpenBSD", "Debian")})
        assert one != two
