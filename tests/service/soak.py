"""Reusable production-churn soak harness for the sharded serving layer.

Drives a live multi-worker cluster the way production traffic would: reader
threads cycle a mixed query set against every worker's listener (presenting
the last ``ETag`` they saw, like real revalidating clients), while a delta
stream lands snapshot ingests on one worker.  Every response is recorded as
an :class:`Observation`; :class:`SoakReport` then answers the three
"production under churn" questions the acceptance gates ask:

* **zero stale ETag reads** -- after a delta-ingest call returns, no reader
  may revalidate (304) against a retired ETag of a touched scope, nor be
  served a payload still carrying one;
* **monotone snapshot visibility** -- each reader issues its requests
  serially, so per (reader, worker, path) stream the ``snapshot_id`` in the
  payload's dataset block must never decrease;
* **bounded latency** -- per-request latencies are recorded so callers can
  gate p99 while the churn is happening.

The harness is deliberately tolerant of connection failures (they are
recorded as status-0 observations, not raised) so fault-injection tests can
kill a worker mid-soak and assert on the survivors -- see
``tests/service/test_cluster.py`` -- while the clean-cluster gates in
``benchmarks/bench_soak.py`` assert zero errors.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.obs import MetricsRegistry
from repro.synthetic.evolution import evolve_corpus

#: The scope every delta touches (deltas are Debian-scoped, Windows-avoiding).
TOUCHED_PATH = "/v1/shared?os=Debian,OpenBSD"

#: A scope the deltas never touch: its ETag must keep revalidating.
UNTOUCHED_PATH = "/v1/shared?os=Windows2000,Windows2003"

#: The default mixed query load: touched + untouched scopes, both matrix
#: shapes (pairs exercises scatter-gather on a sharded cluster) and healthz.
DEFAULT_PATHS: Tuple[str, ...] = (
    TOUCHED_PATH,
    UNTOUCHED_PATH,
    "/v1/matrix/pairs",
    "/v1/matrix/ksets?k=3&top=5",
    "/healthz",
)

#: OSes the churn deltas must avoid so UNTOUCHED_PATH stays untouched.
WINDOWS_OSES = frozenset({"Windows2000", "Windows2003", "Windows2008"})

#: Per-delta corpus-evolution seeds; distinct seeds make every delta change
#: real content (re-applying one seed would be an idempotent no-op).
DEFAULT_DELTA_SEEDS: Tuple[int, ...] = (47, 101, 163, 229, 307, 401)


@dataclass(frozen=True)
class Observation:
    """One request/response pair as a reader thread saw it."""

    timestamp: float  # monotonic completion time
    reader: int
    url: str
    path: str
    status: int  # 0 = connection error (worker down / refused)
    etag: Optional[str]
    presented: Optional[str]  # If-None-Match header the reader sent
    snapshot_id: Optional[int]
    digest: Optional[str]
    latency: float


@dataclass(frozen=True)
class DeltaMark:
    """One applied delta: when its ingest returned and what it retired."""

    index: int
    returned_at: float
    #: Touched-scope ETags observed across all workers just before the
    #: ingest; any of them seen after ``returned_at`` is a stale read.
    retired_etags: frozenset
    report: Dict[str, object]


@dataclass
class SoakReport:
    """Everything a soak observed, with the gate computations attached."""

    observations: List[Observation]
    marks: List[DeltaMark]
    elapsed: float
    #: The harness's own instrument registry (``soak_requests_total`` by
    #: path/status, ``soak_request_seconds`` by path) -- the same
    #: :class:`~repro.obs.metrics.MetricsRegistry` machinery the serving
    #: stack exposes at ``/metrics``, so soak gates and production scrapes
    #: read identically-shaped data.  ``None`` on hand-built reports.
    metrics: Optional[MetricsRegistry] = None

    @property
    def errors(self) -> List[Observation]:
        """Connection-level failures (status 0)."""
        return [obs for obs in self.observations if obs.status == 0]

    @property
    def statuses(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for obs in self.observations:
            counts[obs.status] = counts.get(obs.status, 0) + 1
        return counts

    def latency_percentile(self, fraction: float) -> float:
        """Latency at the given fraction (0.99 = p99) over successful requests."""
        values = sorted(
            obs.latency for obs in self.observations if obs.status > 0
        )
        if not values:
            return 0.0
        index = min(len(values) - 1, max(0, math.ceil(fraction * len(values)) - 1))
        return values[index]

    def stale_reads(self) -> List[Observation]:
        """Touched-scope observations that saw a retired ETag post-ingest.

        A stale read is either a 304 revalidation of a retired ETag or a
        200 whose payload still carries one, observed strictly after the
        ingest call for the delta that retired it returned.
        """
        stale: List[Observation] = []
        for mark in self.marks:
            for obs in self.observations:
                if obs.path != TOUCHED_PATH or obs.timestamp <= mark.returned_at:
                    continue
                if obs.status == 304 and obs.presented in mark.retired_etags:
                    stale.append(obs)
                elif obs.status == 200 and obs.etag in mark.retired_etags:
                    stale.append(obs)
        return stale

    def snapshot_regressions(self) -> List[Tuple[Observation, Observation]]:
        """(earlier, later) pairs where a reader saw snapshot ids go back.

        Each reader runs its requests serially, so within one
        (reader, worker, path) stream the dataset block's ``snapshot_id``
        must be monotone non-decreasing; a decrease means a worker served
        an older snapshot after a newer one was already visible.
        """
        streams: Dict[Tuple[int, str, str], List[Observation]] = {}
        for obs in self.observations:
            if obs.snapshot_id is None:
                continue
            streams.setdefault((obs.reader, obs.url, obs.path), []).append(obs)
        regressions: List[Tuple[Observation, Observation]] = []
        for key in sorted(streams):
            stream = sorted(streams[key], key=lambda obs: obs.timestamp)
            for earlier, later in zip(stream, stream[1:]):
                if later.snapshot_id < earlier.snapshot_id:
                    regressions.append((earlier, later))
        return regressions

    def digests_after(self, timestamp: float, url: str) -> frozenset:
        """Distinct payload digests one worker served after ``timestamp``."""
        return frozenset(
            obs.digest
            for obs in self.observations
            if obs.url == url
            and obs.timestamp > timestamp
            and obs.digest is not None
        )

    def observations_after(self, timestamp: float) -> List[Observation]:
        return [obs for obs in self.observations if obs.timestamp > timestamp]


def _fetch(url: str, path: str, etag: Optional[str] = None, timeout: float = 60.0):
    """GET returning (status, headers, body); status 0 on connection error."""
    headers = {"If-None-Match": etag} if etag else {}
    request = urllib.request.Request(url + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()
    except (urllib.error.URLError, ConnectionError, OSError):
        return 0, {}, b""


def _dataset_fields(body: bytes) -> Tuple[Optional[int], Optional[str]]:
    """(snapshot_id, digest) from a payload's dataset block, if present."""
    if not body:
        return None, None
    try:
        payload = json.loads(body)
    except ValueError:
        return None, None
    if not isinstance(payload, dict):
        return None, None
    dataset = payload.get("dataset")
    if not isinstance(dataset, dict):
        return None, None
    return dataset.get("snapshot_id"), dataset.get("digest")


def debian_delta(corpus, seed: int):
    """A Debian-touching, Windows-avoiding, filter-admitted corpus delta.

    The shape every soak delta uses: it must change the ``TOUCHED_PATH``
    scope (Debian) while leaving ``UNTOUCHED_PATH`` (Windows) alone, and
    only touch entries the serving configuration admits so the dataset
    digest actually moves.
    """
    admits = ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN).admits
    return evolve_corpus(
        corpus,
        fraction=0.005,
        seed=seed,
        target_os="Debian",
        entry_filter=lambda entry: admits(entry)
        and not entry.affected_os & WINDOWS_OSES,
    )


def run_soak(
    urls: Sequence[str],
    corpus,
    work_dir: Path,
    *,
    ingest_url: Optional[str] = None,
    deltas: int = 2,
    readers_per_url: int = 2,
    min_requests: int = 200,
    settle: float = 0.5,
    paths: Sequence[str] = DEFAULT_PATHS,
    delta_seeds: Sequence[int] = DEFAULT_DELTA_SEEDS,
    deadline: float = 180.0,
    on_delta: Optional[Callable[[DeltaMark], None]] = None,
) -> SoakReport:
    """Soak a live cluster: mixed reads on every worker, deltas on one.

    ``urls`` are the listeners to hammer (typically the cluster's internal
    per-worker URLs, so every worker demonstrably serves fresh data, not
    just the one behind the shared port).  ``deltas`` snapshot ingests are
    POSTed to ``ingest_url`` (default: the first URL), each preceded by a
    sweep collecting the touched-scope ETags it will retire and followed by
    ``settle`` seconds of observed churn.  ``on_delta`` runs after each
    ingest returns -- the fault-injection hook.  The soak ends once every
    delta has landed and ``min_requests`` observations accumulated (or the
    ``deadline`` passes, whichever is first).
    """
    if not urls:
        raise ValueError("run_soak needs at least one worker URL")
    if deltas > len(delta_seeds):
        raise ValueError(
            f"need one distinct seed per delta: {deltas} deltas, "
            f"{len(delta_seeds)} seeds"
        )
    ingest_url = ingest_url or urls[0]
    observations: List[Observation] = []
    lock = threading.Lock()
    stop = threading.Event()
    metrics = MetricsRegistry()
    requests_total = metrics.counter(
        "soak_requests_total",
        "Soak reader requests, by path and response status.",
        labels=("path", "status"),
    )
    request_seconds = metrics.histogram(
        "soak_request_seconds",
        "Soak reader request latency, by path.",
        labels=("path",),
    )

    def reader(reader_index: int, url: str) -> None:
        last_etags: Dict[str, Optional[str]] = {}
        index = reader_index  # offset readers so paths interleave
        while not stop.is_set():
            path = paths[index % len(paths)]
            index += 1
            presented = last_etags.get(path)
            started = time.perf_counter()
            status, headers, body = _fetch(url, path, etag=presented)
            latency = time.perf_counter() - started
            snapshot_id, digest = _dataset_fields(body)
            requests_total.inc(path=path, status=str(status))
            request_seconds.observe(latency, path=path)
            etag = headers.get("ETag")
            if status == 200 and etag:
                last_etags[path] = etag
            with lock:
                observations.append(
                    Observation(
                        timestamp=time.monotonic(),
                        reader=reader_index,
                        url=url,
                        path=path,
                        status=status,
                        etag=etag,
                        presented=presented,
                        snapshot_id=snapshot_id,
                        digest=digest,
                        latency=latency,
                    )
                )
            if status == 0:
                # The worker is gone (fault injection): keep observing the
                # survivors without spinning on connection refusals.
                time.sleep(0.05)

    threads = [
        threading.Thread(
            target=reader,
            args=(offset * len(urls) + url_index, url),
            daemon=True,
        )
        for offset in range(readers_per_url)
        for url_index, url in enumerate(urls)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    marks: List[DeltaMark] = []
    try:
        for delta_index in range(deltas):
            # Collect the ETags this delta is about to retire, from every
            # worker (they share one ledger, so these should agree).
            retired = set()
            for url in urls:
                status, headers, _body = _fetch(url, TOUCHED_PATH)
                if status == 200 and headers.get("ETag"):
                    retired.add(headers["ETag"])
            delta = debian_delta(corpus, seed=delta_seeds[delta_index])
            feed = delta.write_feed(
                Path(work_dir) / f"soak-delta-{delta_index}.xml"
            )
            request = urllib.request.Request(
                ingest_url + "/v1/ingest/delta",
                data=feed.read_bytes(),
                headers={"Content-Type": "application/xml"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                report = json.loads(response.read())
            mark = DeltaMark(
                index=delta_index,
                returned_at=time.monotonic(),
                retired_etags=frozenset(retired),
                report=report,
            )
            marks.append(mark)
            if on_delta is not None:
                on_delta(mark)
            time.sleep(settle)

        # Keep the load going until the request floor is met.
        while time.monotonic() - started < deadline:
            with lock:
                observed = len(observations)
            if observed >= min_requests:
                break
            time.sleep(0.05)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    return SoakReport(
        observations=list(observations),
        marks=marks,
        elapsed=time.monotonic() - started,
        metrics=metrics,
    )
