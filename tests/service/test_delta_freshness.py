"""Snapshot-backed serving: ledger endpoints, delta ingest, ETag freshness.

The tentpole cache property, end to end: a server over a PR-4 snapshot
store keeps answering -- without a restart -- while deltas land.  A delta
that touches a query's OSes makes its old ETag stale (full fresh response);
a delta that does not leaves the ETag valid (``304`` keeps working); and
the per-scope invalidation wired to
:meth:`~repro.snapshots.delta.DeltaIngestPipeline.subscribe` evicts exactly
the touched response-cache entries.
"""

from __future__ import annotations

import pytest

from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import (
    DiversityService,
    ServiceConfig,
    ServiceServer,
    SnapshotDatasetProvider,
)
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus

from tests.service.conftest import ServiceClient

WINDOWS = {"Windows2000", "Windows2003", "Windows2008"}


@pytest.fixture()
def db_server(corpus, tmp_path):
    """A live server over a freshly-ingested snapshot store."""
    db_path = tmp_path / "serve.db"
    database = VulnerabilityDatabase(db_path)
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    base = SnapshotStore(database).commit(source="full ingest")
    database.close()

    app = DiversityService(
        ServiceConfig(db=str(db_path)),
        SnapshotDatasetProvider(str(db_path)),
    )
    service = ServiceServer(app)
    client = ServiceClient(service.start())
    try:
        yield client, app, base
    finally:
        service.stop(drain_grace=30.0)


def _debian_delta(corpus, seed=71):
    """A delta touching Debian but none of the Windows OSes."""
    admits = ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN).admits
    return evolve_corpus(
        corpus,
        fraction=0.005,
        seed=seed,
        target_os="Debian",
        entry_filter=lambda entry: admits(entry) and not entry.affected_os & WINDOWS,
    )


class TestLedgerEndpoints:
    def test_snapshots_listing(self, db_server):
        client, _app, base = db_server
        payload = client.get("/v1/snapshots").json()
        assert [record["snapshot_id"] for record in payload["snapshots"]] == [
            base.snapshot_id
        ]
        assert payload["snapshots"][0]["digest"] == base.digest

    def test_single_snapshot_by_id_and_digest_prefix(self, db_server):
        client, _app, base = db_server
        by_id = client.get(f"/v1/snapshots/{base.snapshot_id}").json()
        by_digest = client.get(f"/v1/snapshots/{base.digest[:10]}").json()
        assert by_id == by_digest
        assert by_id["entry_count"] == base.entry_count

    def test_unknown_snapshot_is_404(self, db_server):
        client, _app, _base = db_server
        assert client.get("/v1/snapshots/999").status == 404

    def test_healthz_names_the_snapshot(self, db_server):
        client, _app, base = db_server
        payload = client.get("/healthz").json()
        assert payload["dataset"]["snapshot_id"] == base.snapshot_id
        assert payload["dataset"]["digest"] == base.digest


class TestDeltaIngestOverHttp:
    def test_delta_lands_and_diff_reports_blast_radius(
        self, db_server, corpus, tmp_path
    ):
        client, _app, base = db_server
        feed = _debian_delta(corpus).write_feed(tmp_path / "delta.xml")
        result = client.request(
            "POST",
            "/v1/ingest/delta?source=test-delta",
            headers={"Content-Type": "application/xml"},
            body=feed.read_bytes(),
        )
        assert result.status == 200, result.body
        report = result.json()
        assert report["modified"] > 0
        assert report["snapshot"]["parent_digest"] == base.digest

        diff = client.get(
            f"/v1/snapshots/diff?from={base.snapshot_id}"
            f"&to={report['snapshot']['snapshot_id']}"
        ).json()
        assert "Debian" in diff["affected_os_names"]
        assert not set(diff["affected_os_names"]) & WINDOWS

    def test_replayed_delta_is_idempotent(self, db_server, corpus, tmp_path):
        client, _app, _base = db_server
        feed = _debian_delta(corpus).write_feed(tmp_path / "delta.xml")
        body = feed.read_bytes()
        first = client.request(
            "POST", "/v1/ingest/delta",
            headers={"Content-Type": "application/xml"}, body=body,
        ).json()
        second = client.request(
            "POST", "/v1/ingest/delta",
            headers={"Content-Type": "application/xml"}, body=body,
        ).json()
        assert second["modified"] == second["added"] == second["removed"] == 0
        assert second["snapshot"]["digest"] == first["snapshot"]["digest"]


class TestEtagFreshnessAcrossDeltas:
    def test_touched_scope_goes_stale_untouched_scope_keeps_304(
        self, db_server, corpus, tmp_path
    ):
        client, app, _base = db_server
        debian_path = "/v1/shared?os=Debian,OpenBSD"
        windows_path = "/v1/shared?os=Windows2000,Windows2003"
        debian_before = client.get(debian_path)
        windows_before = client.get(windows_path)
        assert debian_before.status == windows_before.status == 200

        feed = _debian_delta(corpus).write_feed(tmp_path / "delta.xml")
        assert client.request(
            "POST", "/v1/ingest/delta",
            headers={"Content-Type": "application/xml"},
            body=feed.read_bytes(),
        ).status == 200

        # The Debian-scoped ETag is stale: revalidation misses and the
        # server answers fresh bytes with a new ETag -- no restart needed.
        debian_after = client.get(
            debian_path, headers={"If-None-Match": debian_before.etag}
        )
        assert debian_after.status == 200
        assert debian_after.etag != debian_before.etag

        # The Windows-scoped ETag survives the delta: still a 304.
        windows_after = client.get(
            windows_path, headers={"If-None-Match": windows_before.etag}
        )
        assert windows_after.status == 304
        assert windows_after.etag == windows_before.etag

    def test_subscription_invalidates_only_touched_cache_entries(
        self, db_server, corpus, tmp_path
    ):
        client, app, _base = db_server
        client.get("/v1/shared?os=Debian,OpenBSD")
        client.get("/v1/shared?os=Windows2000,Windows2003")
        client.get("/v1/matrix/pairs")  # catalogue-wide scope
        entries_before = len(app.responses)
        assert entries_before == 3

        feed = _debian_delta(corpus).write_feed(tmp_path / "delta.xml")
        client.request(
            "POST", "/v1/ingest/delta",
            headers={"Content-Type": "application/xml"},
            body=feed.read_bytes(),
        )
        # The Debian-scoped entry and the global matrix were evicted by the
        # DeltaIngestPipeline subscription; the Windows entry survived.
        assert len(app.responses) == 1
        assert app.responses.invalidations == 2

    def test_new_head_compiles_a_second_dataset(self, db_server, corpus, tmp_path):
        client, app, _base = db_server
        client.get("/v1/catalogue")
        assert app.registry.compile_count == 1
        feed = _debian_delta(corpus).write_feed(tmp_path / "delta.xml")
        client.request(
            "POST", "/v1/ingest/delta",
            headers={"Content-Type": "application/xml"},
            body=feed.read_bytes(),
        )
        client.get("/v1/catalogue")
        assert app.registry.compile_count == 2
        assert len(app.registry) == 2  # the old snapshot stays pinnable
