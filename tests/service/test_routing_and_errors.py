"""Router resolution and the structured JSON error-envelope contract.

The envelope shape -- ``{"error": {"code", "status", "message"}}`` with an
optional ``detail`` -- is a machine-readable API contract; these tests pin
it for the 404/400/409 classes over a live server, plus the router's
404-vs-405 distinction and template captures as units.
"""

from __future__ import annotations

import pytest

from repro.service.errors import (
    ApiError,
    BadRequest,
    Conflict,
    MethodNotAllowed,
    NotFound,
)
from repro.service.routing import Router


class TestRouter:
    def test_static_route_resolves(self):
        router = Router()
        router.add("GET", "/healthz", "health-handler")
        handler, params = router.resolve("GET", "/healthz")
        assert handler == "health-handler"
        assert params == {}

    def test_capture_route_extracts_params(self):
        router = Router()
        router.add("GET", "/v1/jobs/{job_id}", "job-handler")
        handler, params = router.resolve("GET", "/v1/jobs/job-17")
        assert handler == "job-handler"
        assert params == {"job_id": "job-17"}

    def test_capture_does_not_span_segments(self):
        router = Router()
        router.add("GET", "/v1/jobs/{job_id}", "job-handler")
        with pytest.raises(NotFound):
            router.resolve("GET", "/v1/jobs/a/b")

    def test_unknown_path_is_not_found(self):
        router = Router()
        router.add("GET", "/healthz", "handler")
        with pytest.raises(NotFound):
            router.resolve("GET", "/nope")

    def test_wrong_method_is_method_not_allowed_with_allow_set(self):
        router = Router()
        router.add("GET", "/v1/jobs", "list")
        router.add("POST", "/v1/simulations", "submit")
        with pytest.raises(MethodNotAllowed) as excinfo:
            router.resolve("DELETE", "/v1/jobs")
        assert excinfo.value.detail == {"allow": ["GET"]}

    def test_registration_order_is_preserved(self):
        router = Router()
        router.add("GET", "/a", 1)
        router.add("GET", "/b", 2)
        assert router.routes() == [("GET", "/a"), ("GET", "/b")]

    def test_template_must_be_absolute(self):
        with pytest.raises(ValueError):
            Router().add("GET", "no-slash", "handler")


class TestEnvelopeShape:
    def test_envelope_carries_code_status_message(self):
        envelope = NotFound("no such thing").envelope()
        assert envelope == {
            "error": {
                "code": "not_found",
                "status": 404,
                "message": "no such thing",
            }
        }

    def test_detail_is_included_when_present(self):
        envelope = BadRequest("bad k", detail={"parameter": "k"}).envelope()
        assert envelope["error"]["detail"] == {"parameter": "k"}

    def test_every_error_class_has_distinct_code(self):
        classes = [BadRequest, NotFound, MethodNotAllowed, Conflict]
        codes = {cls.code for cls in classes}
        assert len(codes) == len(classes)
        assert all(issubclass(cls, ApiError) for cls in classes)


class TestErrorContractOverHttp:
    """The 404/400/409 envelope contract, observed end to end."""

    def test_unknown_path_404(self, server):
        client, _app = server
        result = client.get("/v1/does-not-exist")
        assert result.status == 404
        error = result.json()["error"]
        assert error["code"] == "not_found"
        assert error["status"] == 404
        assert "message" in error

    def test_unknown_job_404_with_detail(self, server):
        client, _app = server
        result = client.get("/v1/jobs/job-99")
        assert result.status == 404
        error = result.json()["error"]
        assert error["code"] == "not_found"
        assert error["detail"] == {"job_id": "job-99"}

    def test_unknown_os_404(self, server):
        client, _app = server
        result = client.get("/v1/shared?os=Debian,Plan9")
        assert result.status == 404
        assert result.json()["error"]["detail"]["os"] == "Plan9"

    def test_bad_parameter_400(self, server):
        client, _app = server
        result = client.get("/v1/matrix/ksets?k=banana")
        assert result.status == 400
        error = result.json()["error"]
        assert error["code"] == "bad_request"
        assert error["detail"] == {"parameter": "k"}

    def test_bad_body_400(self, server):
        client, _app = server
        result = client.post_json("/v1/simulations", {"configurations": {}})
        assert result.status == 400
        assert result.json()["error"]["code"] == "bad_request"

    def test_ledger_on_static_server_409(self, server):
        client, _app = server
        result = client.get("/v1/snapshots")
        assert result.status == 409
        error = result.json()["error"]
        assert error["code"] == "conflict"
        assert error["status"] == 409

    def test_method_not_allowed_sets_allow_header(self, server):
        client, _app = server
        result = client.request("DELETE", "/v1/jobs")
        assert result.status == 405
        assert result.headers.get("Allow") == "GET"
        assert result.json()["error"]["code"] == "method_not_allowed"


class TestCombinationBudget:
    """Synchronous queries whose C(n, k) space is unpayable are rejected."""

    def test_budget_helper_rejects_huge_spaces(self):
        from repro.service.schemas import check_combination_budget

        check_combination_budget(100, 4, "k")  # the benchmarked workload
        with pytest.raises(BadRequest) as excinfo:
            check_combination_budget(100, 10, "k")
        assert excinfo.value.detail["parameter"] == "k"
        assert excinfo.value.detail["combinations"] > 10**12

    def test_ksets_request_over_budget_is_400_not_a_hang(self):
        from repro.service import (
            DiversityService,
            ServiceConfig,
            StaticDatasetProvider,
        )
        from repro.service.server import HttpRequest
        from repro.synthetic.generator import generate_scaled_catalogue

        catalogue = generate_scaled_catalogue(vulns_per_os=2)  # 100 OSes, fast
        app = DiversityService(
            ServiceConfig(),
            StaticDatasetProvider(
                catalogue.entries, os_names=catalogue.os_names, label="scaled"
            ),
        )
        response = app.dispatch(
            HttpRequest(
                method="GET", path="/v1/matrix/ksets",
                query={"k": ("10",)}, headers={},
            )
        )
        assert response.status == 400
        response = app.dispatch(
            HttpRequest(
                method="GET", path="/v1/selection",
                query={"n": ("50",)}, headers={},
            )
        )
        assert response.status == 400
        app.shutdown()
