"""Incremental registry updates: patched and recompiled corpora are twins.

When the service runs on the packed engine, a landing delta patches the
served index (:meth:`~repro.service.registry.ArtifactRegistry.patch`)
instead of recompiling the corpus.  Because
:meth:`~repro.analysis.engine.PackedIndex.apply_diff` is bit-for-bit equal
to a recompile, the two paths must be *indistinguishable to clients*:
identical scoped digests, identical ETags, identical response payloads.
These tests pin that, at the registry level and over live HTTP.
"""

from __future__ import annotations

import pytest

from repro.core.enums import ServerConfiguration
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import (
    DiversityService,
    ServiceConfig,
    ServiceServer,
    SnapshotDatasetProvider,
)
from repro.service.registry import ArtifactRegistry
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus

from tests.service.conftest import ServiceClient


@pytest.fixture()
def snapshot_db(corpus, tmp_path):
    """A snapshot store with a base commit and one applied delta."""
    db_path = tmp_path / "patch.db"
    database = VulnerabilityDatabase(db_path)
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    store = SnapshotStore(database)
    base = store.commit(source="full")
    delta = evolve_corpus(corpus, fraction=0.01, seed=23, rejections=1)
    DeltaIngestPipeline(pipeline, store).apply_raw(delta.entries, source="delta")
    head = store.head()
    assert head.digest != base.digest
    diff = store.diff(base.snapshot_id, head.snapshot_id)
    database.close()
    return str(db_path), base, head, diff


def _state(provider, record):
    from repro.service.registry import DatasetState

    return DatasetState(digest=record.digest, snapshot=record)


class TestRegistryPatch:
    def test_patched_artifacts_equal_recompiled_artifacts(self, snapshot_db):
        db_path, base, head, diff = snapshot_db
        provider = SnapshotDatasetProvider(db_path, engine="packed")
        registry = ArtifactRegistry()
        parent = registry.get(_state(provider, base), provider.load)
        patched = registry.patch(_state(provider, base), _state(provider, head), diff)
        assert patched is not None
        assert registry.patched_count == 1

        recompiled = ArtifactRegistry().get(_state(provider, head), provider.load)
        assert patched.dataset.entries == recompiled.dataset.entries
        assert patched.digest == recompiled.digest == head.digest
        # Identical ETag material: every scoped digest matches on both paths.
        for scope in (None, ("Debian", "OpenBSD"), ("Windows2000", "Windows2003")):
            for configuration in ServerConfiguration:
                assert patched.scope_digest(scope, configuration) == (
                    recompiled.scope_digest(scope, configuration)
                )
        # Identical payload material: the derived analyses agree too.
        assert patched.pair_matrix(
            ServerConfiguration.ISOLATED_THIN
        ) == recompiled.pair_matrix(ServerConfiguration.ISOLATED_THIN)
        assert patched.shared_count(("Debian", "RedHat")) == recompiled.shared_count(
            ("Debian", "RedHat")
        )
        # The parent's scoped digests differ wherever the delta hit.
        assert parent.scope_digest(None) != patched.scope_digest(None)

    def test_patched_digest_is_served_from_the_registry(self, snapshot_db):
        db_path, base, head, diff = snapshot_db
        provider = SnapshotDatasetProvider(db_path, engine="packed")
        registry = ArtifactRegistry()
        registry.get(_state(provider, base), provider.load)
        patched = registry.patch(_state(provider, base), _state(provider, head), diff)
        assert registry.get(_state(provider, head), provider.load) is patched
        assert registry.compile_count == 1  # the base compile only

    def test_patch_requires_a_cached_packed_parent(self, snapshot_db):
        db_path, base, head, diff = snapshot_db
        packed = SnapshotDatasetProvider(db_path, engine="packed")
        registry = ArtifactRegistry()
        # Parent not cached at all: nothing to patch from.
        assert registry.patch(_state(packed, base), _state(packed, head), diff) is None
        # Parent cached on the bitset engine: apply_diff has no packed index.
        bitset = SnapshotDatasetProvider(db_path, engine="bitset")
        registry.get(_state(bitset, base), bitset.load)
        assert registry.patch(_state(bitset, base), _state(bitset, head), diff) is None
        assert registry.patched_count == 0

    def test_patch_returns_existing_artifacts_when_already_compiled(
        self, snapshot_db
    ):
        db_path, base, head, diff = snapshot_db
        provider = SnapshotDatasetProvider(db_path, engine="packed")
        registry = ArtifactRegistry()
        registry.get(_state(provider, base), provider.load)
        compiled = registry.get(_state(provider, head), provider.load)
        assert (
            registry.patch(_state(provider, base), _state(provider, head), diff)
            is compiled
        )
        assert registry.patched_count == 0


class TestPackedServiceOverHttp:
    @pytest.fixture()
    def packed_server(self, corpus, tmp_path):
        """A live packed-engine server over a snapshot store."""
        db_path = tmp_path / "serve-packed.db"
        database = VulnerabilityDatabase(db_path)
        pipeline = IngestPipeline(database=database)
        pipeline.ingest_raw(corpus.to_raw_feed_entries())
        SnapshotStore(database).commit(source="full ingest")
        database.close()

        app = DiversityService(
            ServiceConfig(db=str(db_path), engine="packed"),
            SnapshotDatasetProvider(str(db_path), engine="packed"),
        )
        service = ServiceServer(app)
        client = ServiceClient(service.start())
        try:
            yield client, app
        finally:
            service.stop(drain_grace=30.0)

    def test_delta_ingest_patches_instead_of_recompiling(
        self, packed_server, corpus, tmp_path
    ):
        client, app = packed_server
        before = client.get("/v1/matrix/pairs")
        assert before.status == 200
        assert app.registry.compile_count == 1

        feed = evolve_corpus(corpus, fraction=0.01, seed=5).write_feed(
            tmp_path / "delta.xml"
        )
        assert client.request(
            "POST", "/v1/ingest/delta",
            headers={"Content-Type": "application/xml"},
            body=feed.read_bytes(),
        ).status == 200
        # The subscription patched the new head into the registry...
        assert app.registry.patched_count == 1
        after = client.get("/v1/matrix/pairs")
        assert after.status == 200
        assert after.etag != before.etag
        # ...so serving the new head never recompiled the corpus.
        assert app.registry.compile_count == 1
        assert client.get("/healthz").json()["registry"]["patches"] == 1

        # Both paths serve identical bytes: recompiling from scratch (cold
        # registry) reproduces the patched ETag and payload exactly.
        app.registry.clear()
        recompiled = client.get("/v1/matrix/pairs")
        assert recompiled.etag == after.etag
        assert recompiled.body == after.body
        assert app.registry.compile_count == 2
