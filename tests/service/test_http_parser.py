"""Front-end parser edge cases, held on raw sockets.

The urllib-based :class:`~tests.service.conftest.ServiceClient` can't
send deliberately broken framing, so these tests speak bytes directly:
chunked transfer coding (unsupported -> 501 + connection close, never a
silently ignored body), negative ``Content-Length`` (400 before any
``readexactly``), and the keep-alive desync regression the 501 close
prevents.
"""

from __future__ import annotations

import json
import socket
from urllib.parse import urlsplit

import pytest


def _raw_exchange(base_url: str, payload: bytes, timeout: float = 10.0) -> bytes:
    """Send raw bytes, read until the server closes the connection."""
    parts = urlsplit(base_url)
    with socket.create_connection((parts.hostname, parts.port), timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def _split_responses(raw: bytes):
    """Naive HTTP/1.1 response splitter (Content-Length framing only)."""
    responses = []
    rest = raw
    while rest:
        head, _, rest = rest.partition(b"\r\n\r\n")
        if not head:
            break
        headers = dict(
            line.split(b": ", 1)
            for line in head.split(b"\r\n")[1:]
            if b": " in line
        )
        length = int(headers.get(b"Content-Length", b"0"))
        body, rest = rest[:length], rest[length:]
        status = int(head.split(b" ", 2)[1])
        responses.append((status, headers, body))
    return responses


def _error_code(body: bytes) -> str:
    return json.loads(body)["error"]["code"]


class TestChunkedBodies:
    def test_chunked_request_is_501_and_closes(self, server):
        client, _app = server
        raw = _raw_exchange(
            client.base_url,
            b"POST /v1/ingest/delta HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
            b"5\r\nhello\r\n0\r\n\r\n",
        )
        responses = _split_responses(raw)
        assert len(responses) == 1
        status, headers, body = responses[0]
        assert status == 501
        assert headers[b"Connection"] == b"close"
        assert _error_code(body) == "not_implemented"

    def test_chunked_get_cannot_desync_a_pipelined_request(self, server):
        """Regression: the chunk bytes used to stay unread in the stream,
        so the next pipelined request line would be parsed out of garbage.
        Closing on 501 means the follow-up request gets no answer at all
        -- one 501, nothing else."""
        client, _app = server
        raw = _raw_exchange(
            client.base_url,
            b"POST /v1/simulations HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
            b"16\r\nGET /healthz HTTP/1.1\r\n\r\n"
            b"0\r\n\r\n"
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        responses = _split_responses(raw)
        assert [status for status, _headers, _body in responses] == [501]

    def test_transfer_encoding_identity_is_accepted(self, server):
        client, _app = server
        raw = _raw_exchange(
            client.base_url,
            b"GET /healthz HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Transfer-Encoding: identity\r\n"
            b"Connection: close\r\n"
            b"\r\n",
        )
        responses = _split_responses(raw)
        assert len(responses) == 1
        assert responses[0][0] == 200


class TestContentLength:
    @pytest.mark.parametrize("length", [b"-1", b"-999999"])
    def test_negative_content_length_is_400_and_closes(self, server, length):
        client, _app = server
        raw = _raw_exchange(
            client.base_url,
            b"POST /v1/simulations HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: " + length + b"\r\n"
            b"\r\n",
        )
        responses = _split_responses(raw)
        assert len(responses) == 1
        status, headers, body = responses[0]
        assert status == 400
        assert headers[b"Connection"] == b"close"
        assert _error_code(body) == "bad_request"

    def test_malformed_content_length_is_still_400(self, server):
        client, _app = server
        raw = _raw_exchange(
            client.base_url,
            b"POST /v1/simulations HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: banana\r\n"
            b"\r\n",
        )
        assert _split_responses(raw)[0][0] == 400

    def test_wellformed_body_still_works_on_the_same_framing(self, server):
        """Control: the new guards don't break ordinary bodied requests."""
        client, _app = server
        body = json.dumps({"configurations": {}, "runs": 1}).encode()
        raw = _raw_exchange(
            client.base_url,
            b"POST /v1/simulations HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n"
            b"\r\n" + body,
        )
        responses = _split_responses(raw)
        assert len(responses) == 1
        # 400 (empty grid) proves the body was read and parsed, not skipped.
        assert responses[0][0] == 400
