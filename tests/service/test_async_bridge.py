"""The executor bridge: blocking service work must stay off the event loop.

``dispatch`` reaches sqlite-backed providers and the result cache, and
``jobs.drain`` blocks on worker threads; the asyncio front end is only
allowed to touch them through :meth:`DiversityService.dispatch_async` and
:meth:`DiversityService.drain_async` (the ASY104 lint rule enforces the
call-site discipline, these tests pin the runtime behaviour).
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.server import HttpRequest


def _request(path: str) -> HttpRequest:
    return HttpRequest(method="GET", path=path, query={}, headers={})


class TestExecutorBridge:
    def test_dispatch_async_runs_on_the_request_pool(self, app):
        seen = {}
        original = app.dispatch

        def spy(request):
            seen["dispatch_thread"] = threading.current_thread().name
            return original(request)

        app.dispatch = spy

        async def scenario():
            seen["loop_thread"] = threading.current_thread().name
            return await app.dispatch_async(_request("/healthz"))

        response = asyncio.run(scenario())
        assert response.status == 200
        assert seen["dispatch_thread"] != seen["loop_thread"]
        assert seen["dispatch_thread"].startswith("repro-http")

    def test_drain_async_runs_off_the_event_loop(self, app):
        seen = {}
        original = app.jobs.drain

        def spy(grace):
            seen["drain_thread"] = threading.current_thread().name
            return original(grace)

        app.jobs.drain = spy

        async def scenario():
            seen["loop_thread"] = threading.current_thread().name
            return await app.drain_async(1.0)

        drained = asyncio.run(scenario())
        assert drained is True
        assert seen["drain_thread"] != seen["loop_thread"]
        assert seen["drain_thread"].startswith("repro-http")
