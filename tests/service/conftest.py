"""Fixtures for the serving-layer tests: an in-process app and a live server.

``app`` wires a :class:`~repro.service.server.DiversityService` over the
session corpus through a static provider; ``server`` runs it on a real
socket via :class:`~repro.service.server.ServiceServer` and yields a tiny
HTTP client, so endpoint tests exercise the full asyncio front end (request
parsing, ETag headers, keep-alive) rather than calling handlers directly.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import pytest

from repro.service import (
    DiversityService,
    ServiceConfig,
    ServiceServer,
    StaticDatasetProvider,
)


@dataclass
class HttpResult:
    """One client-observed response: status, headers, body."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    @property
    def etag(self) -> Optional[str]:
        return self.headers.get("ETag")


class ServiceClient:
    """A minimal urllib client bound to one live service."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url

    def request(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: Optional[bytes] = None,
    ) -> HttpResult:
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers or {}, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return HttpResult(
                    response.status, dict(response.headers), response.read()
                )
        except urllib.error.HTTPError as error:
            return HttpResult(error.code, dict(error.headers), error.read())

    def get(self, path: str, headers: Optional[Dict[str, str]] = None) -> HttpResult:
        return self.request("GET", path, headers=headers)

    def post_json(self, path: str, payload: object) -> HttpResult:
        return self.request(
            "POST",
            path,
            headers={"Content-Type": "application/json"},
            body=json.dumps(payload).encode("utf-8"),
        )


def make_app(corpus, **config_kwargs) -> DiversityService:
    """A service over the calibrated corpus via a static provider."""
    return DiversityService(
        ServiceConfig(**config_kwargs),
        StaticDatasetProvider(corpus.entries, label="test corpus"),
    )


@pytest.fixture()
def app(corpus) -> DiversityService:
    return make_app(corpus)


@pytest.fixture()
def server(app) -> Tuple[ServiceClient, DiversityService]:
    """A live server plus its app; stopped (and drained) on teardown."""
    service = ServiceServer(app)
    base_url = service.start()
    try:
        yield ServiceClient(base_url), app
    finally:
        service.stop(drain_grace=30.0)
