"""Concurrency semantics: one compile, byte-identical answers.

The acceptance criterion for the serving layer's memoization: N concurrent
*identical* queries against a cold server return byte-identical payloads
and trigger **at most one** corpus compile.  A threaded client harness
fires the requests through the real socket so the asyncio front end, the
request thread pool, the per-digest registry locks and the response cache
are all exercised together.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

CLIENTS = 8


def _fire_concurrently(client, path: str, clients: int = CLIENTS):
    """``clients`` threads request ``path`` at (as close as possible) once."""
    barrier = threading.Barrier(clients)

    def fetch():
        barrier.wait(timeout=30)
        return client.get(path)

    with ThreadPoolExecutor(max_workers=clients) as pool:
        futures = [pool.submit(fetch) for _ in range(clients)]
        return [future.result(timeout=120) for future in futures]


class TestConcurrentCompiles:
    def test_identical_queries_compile_once_and_agree_byte_for_byte(self, server):
        client, app = server
        assert app.registry.compile_count == 0  # cold: nothing compiled yet
        results = _fire_concurrently(client, "/v1/matrix/pairs")
        assert all(result.status == 200 for result in results)
        bodies = {result.body for result in results}
        assert len(bodies) == 1, "concurrent clients saw different payloads"
        etags = {result.etag for result in results}
        assert len(etags) == 1
        assert app.registry.compile_count == 1

    def test_mixed_endpoints_still_compile_once(self, server):
        client, app = server
        paths = [
            "/v1/catalogue",
            "/v1/shared?os=Debian,OpenBSD",
            "/v1/matrix/pairs",
            "/v1/matrix/ksets?k=3",
            "/v1/selection?n=4&top=2",
            "/v1/widest?top=3",
        ]
        barrier = threading.Barrier(len(paths))

        def fetch(path):
            barrier.wait(timeout=30)
            return client.get(path)

        with ThreadPoolExecutor(max_workers=len(paths)) as pool:
            results = list(pool.map(fetch, paths))
        assert all(result.status == 200 for result in results)
        # Six different queries over one dataset state: one compile total.
        assert app.registry.compile_count == 1

    def test_repeated_volleys_never_recompile(self, server):
        client, app = server
        for _ in range(3):
            results = _fire_concurrently(client, "/v1/shared?os=Debian,NetBSD", 4)
            assert all(result.status == 200 for result in results)
        assert app.registry.compile_count == 1
        assert app.responses.stats()["hits"] >= 8
