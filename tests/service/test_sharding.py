"""Sharded matrix queries: partition determinism and byte-identity.

The PR's core property, in-process: an N-shard fleet wired with
:class:`~repro.service.cluster.LocalPeer` answers every pair/k-set matrix
query with bytes identical to a single-process service over the same
dataset digest -- for any shard count, any configuration filter, and any
worker the request lands on.  Plus the safety rails: span parsing,
digest-guarded partials (409 on mismatch), and merge refusal of
mixed-digest or non-covering partial sets.
"""

from __future__ import annotations

import json

import pytest

from repro.service import ServiceConfig, StaticDatasetProvider, local_shard_fleet
from repro.service.server import HttpRequest
from repro.service import schemas, sharding

from tests.service.conftest import make_app


def _get(app, path, query=None):
    return app.dispatch(
        HttpRequest(method="GET", path=path, query=query or {}, headers={})
    )


@pytest.fixture()
def provider(corpus):
    return StaticDatasetProvider(corpus.entries, label="test corpus")


class TestSpanPlumbing:
    def test_plan_covers_the_space_exactly(self):
        plan = sharding.plan_spans("digest-a", 11, 3, 4)
        spans = [span for span, _owner in plan]
        assert spans[0][0] == 0 and spans[-1][1] == sharding.combination_space(11, 3)
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        assert all(0 <= owner < 4 for _span, owner in plan)

    def test_ownership_is_digest_consistent_and_digest_sensitive(self):
        first = sharding.plan_spans("digest-a", 11, 2, 3)
        again = sharding.plan_spans("digest-a", 11, 2, 3)
        rotated = sharding.plan_spans("digest-b", 11, 2, 3)
        assert first == again
        assert [span for span, _ in first] == [span for span, _ in rotated]
        # sha256 offsets for these two digests differ mod 3, so the
        # rotation moves every span to a different owner.
        assert [owner for _, owner in first] != [owner for _, owner in rotated]

    def test_empty_spans_are_dropped_from_the_plan(self):
        # C(3, 2) = 3 combinations over 5 shards: two spans are empty.
        plan = sharding.plan_spans("d", 3, 2, 5)
        assert len(plan) == 3
        assert all(span[0] < span[1] for span, _owner in plan)

    @pytest.mark.parametrize("raw", ["", "5", "a-b", "3-2", "0-999999"])
    def test_parse_span_rejects_malformed_and_out_of_bounds(self, raw):
        from repro.service.errors import BadRequest

        with pytest.raises(BadRequest):
            sharding.parse_span({"span": (raw,)}, total=100)

    def test_parse_span_round_trips_format_span(self):
        span = (7, 42)
        assert sharding.parse_span(
            {"span": (sharding.format_span(span),)}, total=100
        ) == span


class TestMergeGuards:
    def test_mixed_digests_refuse_to_merge(self):
        partials = [
            {"digest": "aaa", "span": [0, 5], "pairs": []},
            {"digest": "bbb", "span": [5, 10], "pairs": []},
        ]
        with pytest.raises(ValueError, match="dataset states"):
            sharding._check_merge(partials, total=10)

    def test_gap_refuses_to_merge(self):
        partials = [
            {"digest": "aaa", "span": [0, 4], "pairs": []},
            {"digest": "aaa", "span": [5, 10], "pairs": []},
        ]
        with pytest.raises(ValueError, match="not contiguous"):
            sharding._check_merge(partials, total=10)

    def test_partial_cover_refuses_to_merge(self):
        partials = [{"digest": "aaa", "span": [0, 9], "pairs": []}]
        with pytest.raises(ValueError, match="combination"):
            sharding._check_merge(partials, total=10)


class TestShardPartialEndpoints:
    def test_digest_guard_is_a_409(self, corpus, provider):
        app = make_app(corpus)
        result = _get(
            app, "/internal/v1/shards/pairs",
            {"span": ("0-5",), "digest": ("not-the-current-digest",)},
        )
        assert result.status == 409
        assert json.loads(result.body)["error"]["code"] == "conflict"

    def test_partial_carries_digest_and_span(self, corpus):
        app = make_app(corpus)
        artifacts = app.artifacts()
        result = _get(app, "/internal/v1/shards/pairs", {"span": ("0-5",)})
        assert result.status == 200
        partial = json.loads(result.body)
        assert partial["digest"] == artifacts.digest
        assert partial["span"] == [0, 5]
        assert len(partial["pairs"]) == 5

    def test_span_is_required(self, corpus):
        app = make_app(corpus)
        assert _get(app, "/internal/v1/shards/ksets").status == 400

    def test_invalidate_rejects_bad_bodies(self, corpus):
        app = make_app(corpus)
        result = app.dispatch(
            HttpRequest(
                method="POST", path="/internal/v1/invalidate", query={},
                headers={}, body=json.dumps({"digest": 7}).encode(),
            )
        )
        assert result.status == 400


class TestByteIdentity:
    """workers=1 and workers=N produce bit-for-bit identical payloads."""

    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_pairs_matrix_is_byte_identical(self, corpus, provider, shards):
        single = make_app(corpus)
        fleet = local_shard_fleet(ServiceConfig(), shards, provider=provider)
        reference = _get(single, "/v1/matrix/pairs")
        assert reference.status == 200
        for app in fleet:
            result = _get(app, "/v1/matrix/pairs")
            assert result.status == 200
            assert result.body == reference.body

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("slug", list(schemas.CONFIGURATIONS))
    def test_ksets_are_byte_identical_across_configurations(
        self, corpus, provider, shards, slug
    ):
        single = make_app(corpus)
        fleet = local_shard_fleet(ServiceConfig(), shards, provider=provider)
        query = {"k": ("3",), "top": ("7",), "configuration": (slug,)}
        reference = _get(single, "/v1/matrix/ksets", query)
        assert reference.status == 200
        result = _get(fleet[shards - 1], "/v1/matrix/ksets", query)
        assert result.status == 200
        assert result.body == reference.body

    def test_scatter_actually_ran_remotely(self, corpus, provider):
        fleet = local_shard_fleet(ServiceConfig(), 3, provider=provider)
        _get(fleet[0], "/v1/matrix/pairs")
        assert fleet[0].scatter_remote > 0
        assert fleet[0].scatter_fallback == 0

    def test_peer_outage_degrades_to_local_compute(self, corpus, provider):
        single = make_app(corpus)
        fleet = local_shard_fleet(ServiceConfig(), 3, provider=provider)

        class DeadPeer:
            def get_json(self, path):
                raise OSError("connection refused")

            def post_json(self, path, body):
                raise OSError("connection refused")

        fleet[0].peers = [DeadPeer() for _ in fleet]
        reference = _get(single, "/v1/matrix/pairs")
        result = _get(fleet[0], "/v1/matrix/pairs")
        assert result.status == 200
        assert result.body == reference.body
        assert fleet[0].scatter_fallback > 0

    def test_digest_mismatch_mid_scatter_degrades_to_local(self, corpus, provider):
        """A peer answering for a different dataset state is never merged."""
        single = make_app(corpus)
        fleet = local_shard_fleet(ServiceConfig(), 2, provider=provider)

        class StaleDigestPeer:
            def get_json(self, path):
                return {"digest": "some-other-snapshot", "span": [0, 1], "pairs": []}

            def post_json(self, path, body):
                return 200

        fleet[0].peers = [StaleDigestPeer() for _ in fleet]
        reference = _get(single, "/v1/matrix/pairs")
        result = _get(fleet[0], "/v1/matrix/pairs")
        assert result.status == 200
        assert result.body == reference.body
        assert fleet[0].scatter_fallback > 0
