"""The soak harness itself: classification unit tests + a short live soak.

The heavy production-churn gate lives in ``benchmarks/bench_soak.py``; this
module keeps the harness honest at unit level (does ``stale_reads`` flag
exactly the right observations? does ``snapshot_regressions`` respect
stream boundaries?) and runs one short 2-worker soak so the harness's
plumbing is exercised in every tier-1 run, not only in the benchmark job.
"""

from __future__ import annotations

import os

import pytest

from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import ServiceCluster, ServiceConfig
from repro.snapshots.store import SnapshotStore

from tests.service.soak import (
    TOUCHED_PATH,
    UNTOUCHED_PATH,
    DeltaMark,
    Observation,
    SoakReport,
    debian_delta,
    run_soak,
)


def _obs(timestamp, *, reader=0, url="http://w0", path=TOUCHED_PATH,
         status=200, etag=None, presented=None, snapshot_id=None,
         digest=None, latency=0.01):
    return Observation(
        timestamp=timestamp, reader=reader, url=url, path=path,
        status=status, etag=etag, presented=presented,
        snapshot_id=snapshot_id, digest=digest, latency=latency,
    )


def _mark(returned_at, *retired):
    return DeltaMark(
        index=0, returned_at=returned_at,
        retired_etags=frozenset(retired), report={"modified": 1},
    )


class TestStaleReadClassification:
    def test_post_ingest_304_against_retired_etag_is_stale(self):
        report = SoakReport(
            observations=[
                _obs(5.0, status=304, presented='"old"'),
            ],
            marks=[_mark(4.0, '"old"')],
            elapsed=10.0,
        )
        assert len(report.stale_reads()) == 1

    def test_post_ingest_200_carrying_retired_etag_is_stale(self):
        report = SoakReport(
            observations=[_obs(5.0, status=200, etag='"old"')],
            marks=[_mark(4.0, '"old"')],
            elapsed=10.0,
        )
        assert len(report.stale_reads()) == 1

    def test_pre_ingest_and_fresh_observations_are_clean(self):
        report = SoakReport(
            observations=[
                # Before the ingest returned: stale is allowed.
                _obs(3.0, status=304, presented='"old"'),
                # After, but revalidating a *fresh* ETag: fine.
                _obs(5.0, status=304, presented='"new"'),
                # After, fresh 200: fine.
                _obs(6.0, status=200, etag='"new"'),
                # Untouched scope never counts, whatever it revalidates.
                _obs(7.0, path=UNTOUCHED_PATH, status=304, presented='"old"'),
            ],
            marks=[_mark(4.0, '"old"')],
            elapsed=10.0,
        )
        assert report.stale_reads() == []

    def test_each_delta_retires_its_own_etags(self):
        report = SoakReport(
            observations=[
                _obs(5.0, status=200, etag='"v2"'),  # fresh for delta 1
                _obs(9.0, status=200, etag='"v2"'),  # stale after delta 2
            ],
            marks=[
                _mark(4.0, '"v1"'),
                DeltaMark(index=1, returned_at=8.0,
                          retired_etags=frozenset(('"v2"',)),
                          report={"modified": 1}),
            ],
            elapsed=10.0,
        )
        stale = report.stale_reads()
        assert [obs.timestamp for obs in stale] == [9.0]


class TestSnapshotMonotonicity:
    def test_decrease_within_a_stream_is_a_regression(self):
        report = SoakReport(
            observations=[
                _obs(1.0, snapshot_id=2),
                _obs(2.0, snapshot_id=3),
                _obs(3.0, snapshot_id=2),
            ],
            marks=[],
            elapsed=10.0,
        )
        regressions = report.snapshot_regressions()
        assert len(regressions) == 1
        earlier, later = regressions[0]
        assert (earlier.snapshot_id, later.snapshot_id) == (3, 2)

    def test_streams_are_independent(self):
        # Reader 1 seeing an older snapshot than reader 0 already saw is
        # NOT a regression -- only a decrease within one serial stream is.
        report = SoakReport(
            observations=[
                _obs(1.0, reader=0, snapshot_id=3),
                _obs(2.0, reader=1, snapshot_id=2),
                _obs(3.0, reader=1, snapshot_id=3),
            ],
            marks=[],
            elapsed=10.0,
        )
        assert report.snapshot_regressions() == []

    def test_observations_without_snapshot_ids_are_ignored(self):
        report = SoakReport(
            observations=[_obs(1.0), _obs(2.0, status=304)],
            marks=[],
            elapsed=10.0,
        )
        assert report.snapshot_regressions() == []


class TestReportHelpers:
    def test_latency_percentile_orders_successes_only(self):
        observations = [
            _obs(float(i), latency=latency)
            for i, latency in enumerate((0.05, 0.01, 0.03, 0.02, 0.04))
        ]
        observations.append(_obs(9.0, status=0, latency=99.0))  # dead worker
        report = SoakReport(observations=observations, marks=[], elapsed=10.0)
        assert report.latency_percentile(0.5) == pytest.approx(0.03)
        assert report.latency_percentile(0.99) == pytest.approx(0.05)
        assert report.latency_percentile(1.0) == pytest.approx(0.05)

    def test_digests_after_filters_by_worker_and_time(self):
        report = SoakReport(
            observations=[
                _obs(1.0, url="http://w0", digest="aaa"),
                _obs(5.0, url="http://w0", digest="bbb"),
                _obs(6.0, url="http://w1", digest="ccc"),
            ],
            marks=[],
            elapsed=10.0,
        )
        assert report.digests_after(2.0, "http://w0") == frozenset({"bbb"})

    def test_errors_and_statuses(self):
        report = SoakReport(
            observations=[_obs(1.0), _obs(2.0, status=304), _obs(3.0, status=0)],
            marks=[],
            elapsed=10.0,
        )
        assert len(report.errors) == 1
        assert report.statuses == {200: 1, 304: 1, 0: 1}

    def test_run_soak_rejects_seed_exhaustion_and_empty_urls(self):
        with pytest.raises(ValueError):
            run_soak([], None, ".")
        with pytest.raises(ValueError):
            run_soak(["http://w0"], None, ".", deltas=3, delta_seeds=(1, 2))


def test_debian_delta_touches_debian_only(corpus):
    """Soak deltas must move the touched scope and spare the Windows one."""
    delta = debian_delta(corpus, seed=47)
    assert delta.modified
    by_id = {entry.cve_id: entry for entry in corpus.entries}
    windows = {"Windows2000", "Windows2003", "Windows2008"}
    for cve_id in delta.modified_ids:
        oses = by_id[cve_id].affected_os
        assert "Debian" in oses
        assert not oses & windows


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="the live soak needs >= 2 cores to mean anything",
)
def test_short_soak_live_cluster(corpus, tmp_path_factory):
    """One delta, small request floor: the full harness loop end to end."""
    root = tmp_path_factory.mktemp("soak-short")
    db_path = root / "soak.db"
    database = VulnerabilityDatabase(db_path)
    IngestPipeline(database=database).ingest_raw(corpus.to_raw_feed_entries())
    base = SnapshotStore(database).commit(source="soak seed")
    database.close()

    config = ServiceConfig(port=0, workers=2, db=str(db_path), drain_grace=10.0)
    cluster = ServiceCluster(config)
    cluster.start()
    try:
        report = run_soak(
            cluster.internal_urls,
            corpus,
            root,
            deltas=1,
            readers_per_url=1,
            min_requests=40,
            settle=0.3,
        )
    finally:
        cluster.stop()

    assert len(report.observations) >= 40
    assert not report.errors
    assert not report.stale_reads()
    assert not report.snapshot_regressions()
    assert len(report.marks) == 1
    seen = {o.snapshot_id for o in report.observations if o.snapshot_id is not None}
    assert base.snapshot_id + 1 in seen
