"""Multi-process deployments, end to end: spawn real workers, query them.

Covers the cluster lifecycle (spawn, per-worker health, clean SIGTERM
drain), both public-socket modes (``SO_REUSEPORT`` kernel balancing and
the stdlib front-router proxy), public-vs-single-process byte identity,
and the cross-worker invalidation path: a delta ingested on one worker's
internal listener makes the other worker answer stale ETags fresh.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import (
    DiversityService,
    HttpPeer,
    ServiceCluster,
    ServiceConfig,
)
from repro.snapshots.store import SnapshotStore

from tests.service.conftest import ServiceClient
from tests.service.test_delta_freshness import _debian_delta

#: Small generated catalogue: 20 OS releases keeps worker start-up quick.
CATALOGUE = "scaled:4x5"


def _fetch(url: str, etag=None):
    headers = {"If-None-Match": etag} if etag else {}
    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def catalogue_cluster():
    """A live 2-worker cluster over the generated catalogue."""
    config = ServiceConfig(
        port=0, workers=2, catalogue=CATALOGUE, drain_grace=5.0
    )
    cluster = ServiceCluster(config)
    cluster.start()
    yield cluster
    cluster.stop()


class TestClusterLifecycle:
    def test_every_worker_reports_its_shard(self, catalogue_cluster):
        payloads = catalogue_cluster.healthz()
        assert [p["shard"]["index"] for p in payloads] == [0, 1]
        assert all(p["shard"]["count"] == 2 for p in payloads)
        assert all(p["shard"]["peers"] == 2 for p in payloads)
        # Same config -> every worker rebuilt the identical dataset state.
        assert len({p["dataset"]["digest"] for p in payloads}) == 1

    def test_public_address_answers(self, catalogue_cluster):
        status, _headers, body = _fetch(catalogue_cluster.base_url + "/healthz")
        assert status == 200
        assert json.loads(body)["shard"]["count"] == 2

    def test_public_matrix_matches_single_process_bytes(self, catalogue_cluster):
        single = DiversityService(
            ServiceConfig(catalogue=CATALOGUE)
        )
        client = ServiceClient(catalogue_cluster.base_url)
        for path in ("/v1/matrix/pairs", "/v1/matrix/ksets?k=3&top=5"):
            from repro.service.server import HttpRequest
            from urllib.parse import parse_qs, urlsplit

            parts = urlsplit(path)
            query = {
                name: tuple(values)
                for name, values in parse_qs(parts.query).items()
            }
            reference = single.dispatch(
                HttpRequest(method="GET", path=parts.path, query=query, headers={})
            )
            result = client.get(path)
            assert result.status == 200
            assert result.body == reference.body

    def test_clean_sigterm_drain(self):
        config = ServiceConfig(
            port=0, workers=2, catalogue=CATALOGUE, drain_grace=5.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        assert cluster.stop() is True  # every worker exited 0 after drain


class TestFrontRouterMode:
    def test_forced_front_router_serves_the_public_port(self):
        config = ServiceConfig(
            port=0, workers=2, catalogue=CATALOGUE,
            front_router=True, drain_grace=5.0,
        )
        cluster = ServiceCluster(config)
        assert cluster.mode == "front-router"
        try:
            base = cluster.start()
            # Round-robin: consecutive connections hit alternating workers.
            seen = set()
            for _ in range(4):
                status, _headers, body = _fetch(base + "/healthz")
                assert status == 200
                seen.add(json.loads(body)["shard"]["index"])
            assert seen == {0, 1}
            status, _headers, _body = _fetch(base + "/v1/matrix/pairs")
            assert status == 200
        finally:
            assert cluster.stop() is True


class TestCrossWorkerInvalidation:
    def test_delta_on_one_worker_freshens_the_other(
        self, corpus, tmp_path_factory
    ):
        db_path = tmp_path_factory.mktemp("cluster-db") / "serve.db"
        database = VulnerabilityDatabase(db_path)
        pipeline = IngestPipeline(database=database)
        pipeline.ingest_raw(corpus.to_raw_feed_entries())
        SnapshotStore(database).commit(source="full ingest")
        database.close()

        config = ServiceConfig(
            port=0, workers=2, db=str(db_path), drain_grace=10.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        try:
            first, second = cluster.internal_urls
            debian_path = "/v1/shared?os=Debian,OpenBSD"
            windows_path = "/v1/shared?os=Windows2000,Windows2003"

            # Prime worker 1 (the one that will NOT ingest the delta).
            status, headers, debian_before = _fetch(second + debian_path)
            assert status == 200
            debian_etag = headers["ETag"]
            status, headers, _body = _fetch(second + windows_path)
            windows_etag = headers["ETag"]

            # Ingest a Debian-only delta on worker 0's internal listener.
            feed = _debian_delta(corpus).write_feed(
                tmp_path_factory.mktemp("cluster-delta") / "delta.xml"
            )
            request = urllib.request.Request(
                first + "/v1/ingest/delta", data=feed.read_bytes(),
                headers={"Content-Type": "application/xml"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                report = json.loads(response.read())
            assert report["modified"] > 0

            # Worker 1's scoped caches were invalidated by the broadcast
            # (eager), and its next read re-reads the shared ledger head
            # (correct even without the broadcast): the stale Debian ETag
            # misses and fresh bytes arrive.
            status, headers, debian_after = _fetch(
                second + debian_path, etag=debian_etag
            )
            assert status == 200
            assert headers["ETag"] != debian_etag
            assert debian_after != debian_before

            # The untouched Windows scope still revalidates to 304.
            status, _headers, body = _fetch(
                second + windows_path, etag=windows_etag
            )
            assert status == 304
            assert body == b""

            # The broadcast reached worker 1 before the ingest returned.
            health = HttpPeer(second).get_json("/healthz")
            assert health["response_cache"]["invalidations"] > 0
        finally:
            cluster.stop()
