"""Multi-process deployments, end to end: spawn real workers, query them.

Covers the cluster lifecycle (spawn, per-worker health, clean SIGTERM
drain), both public-socket modes (``SO_REUSEPORT`` kernel balancing and
the stdlib front-router proxy), public-vs-single-process byte identity,
and the cross-worker invalidation path: a delta ingested on one worker's
internal listener makes the other worker answer stale ETags fresh.
It also hosts the fault-injection suite: a worker killed hard (SIGKILL, no
drain) mid-operation must leave the survivor answering every query with
locally-computed, internally-consistent payloads -- scatter-gather degrades
to local compute, never to a mixed-digest merge.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import (
    DiversityService,
    HttpPeer,
    ServiceCluster,
    ServiceConfig,
)
from repro.snapshots.store import SnapshotStore

from tests.service.conftest import ServiceClient
from tests.service.soak import run_soak
from tests.service.test_delta_freshness import _debian_delta

#: Small generated catalogue: 20 OS releases keeps worker start-up quick.
CATALOGUE = "scaled:4x5"


def _fetch(url: str, etag=None):
    headers = {"If-None-Match": etag} if etag else {}
    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def catalogue_cluster():
    """A live 2-worker cluster over the generated catalogue."""
    config = ServiceConfig(
        port=0, workers=2, catalogue=CATALOGUE, drain_grace=5.0
    )
    cluster = ServiceCluster(config)
    cluster.start()
    yield cluster
    cluster.stop()


class TestClusterLifecycle:
    def test_every_worker_reports_its_shard(self, catalogue_cluster):
        records = catalogue_cluster.healthz()
        assert all(r["ok"] for r in records)
        assert all(r["error"] is None for r in records)
        payloads = [r["payload"] for r in records]
        assert [p["shard"]["index"] for p in payloads] == [0, 1]
        assert all(p["shard"]["count"] == 2 for p in payloads)
        assert all(p["shard"]["peers"] == 2 for p in payloads)
        # Same config -> every worker rebuilt the identical dataset state.
        assert len({p["dataset"]["digest"] for p in payloads}) == 1

    def test_public_address_answers(self, catalogue_cluster):
        status, _headers, body = _fetch(catalogue_cluster.base_url + "/healthz")
        assert status == 200
        assert json.loads(body)["shard"]["count"] == 2

    def test_public_matrix_matches_single_process_bytes(self, catalogue_cluster):
        single = DiversityService(
            ServiceConfig(catalogue=CATALOGUE)
        )
        client = ServiceClient(catalogue_cluster.base_url)
        for path in ("/v1/matrix/pairs", "/v1/matrix/ksets?k=3&top=5"):
            from repro.service.server import HttpRequest
            from urllib.parse import parse_qs, urlsplit

            parts = urlsplit(path)
            query = {
                name: tuple(values)
                for name, values in parse_qs(parts.query).items()
            }
            reference = single.dispatch(
                HttpRequest(method="GET", path=parts.path, query=query, headers={})
            )
            result = client.get(path)
            assert result.status == 200
            assert result.body == reference.body

    def test_clean_sigterm_drain(self):
        config = ServiceConfig(
            port=0, workers=2, catalogue=CATALOGUE, drain_grace=5.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        assert cluster.stop() is True  # every worker exited 0 after drain


class TestFrontRouterMode:
    def test_forced_front_router_serves_the_public_port(self):
        config = ServiceConfig(
            port=0, workers=2, catalogue=CATALOGUE,
            front_router=True, drain_grace=5.0,
        )
        cluster = ServiceCluster(config)
        assert cluster.mode == "front-router"
        try:
            base = cluster.start()
            # Round-robin: consecutive connections hit alternating workers.
            seen = set()
            for _ in range(4):
                status, _headers, body = _fetch(base + "/healthz")
                assert status == 200
                seen.add(json.loads(body)["shard"]["index"])
            assert seen == {0, 1}
            status, _headers, _body = _fetch(base + "/v1/matrix/pairs")
            assert status == 200
        finally:
            assert cluster.stop() is True


class TestCrossWorkerInvalidation:
    def test_delta_on_one_worker_freshens_the_other(
        self, corpus, tmp_path_factory
    ):
        db_path = tmp_path_factory.mktemp("cluster-db") / "serve.db"
        database = VulnerabilityDatabase(db_path)
        pipeline = IngestPipeline(database=database)
        pipeline.ingest_raw(corpus.to_raw_feed_entries())
        SnapshotStore(database).commit(source="full ingest")
        database.close()

        config = ServiceConfig(
            port=0, workers=2, db=str(db_path), drain_grace=10.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        try:
            first, second = cluster.internal_urls
            debian_path = "/v1/shared?os=Debian,OpenBSD"
            windows_path = "/v1/shared?os=Windows2000,Windows2003"

            # Prime worker 1 (the one that will NOT ingest the delta).
            status, headers, debian_before = _fetch(second + debian_path)
            assert status == 200
            debian_etag = headers["ETag"]
            status, headers, _body = _fetch(second + windows_path)
            windows_etag = headers["ETag"]

            # Ingest a Debian-only delta on worker 0's internal listener.
            feed = _debian_delta(corpus).write_feed(
                tmp_path_factory.mktemp("cluster-delta") / "delta.xml"
            )
            request = urllib.request.Request(
                first + "/v1/ingest/delta", data=feed.read_bytes(),
                headers={
                    "Content-Type": "application/xml",
                    "X-Repro-Trace": "cluster-delta-trace",
                },
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                report = json.loads(response.read())
            assert report["modified"] > 0

            # The traced ingest recorded both the apply and the broadcast.
            with urllib.request.urlopen(
                first + "/v1/traces?id=cluster-delta-trace", timeout=60
            ) as response:
                trace = json.loads(response.read())
            span_names = {span["name"] for span in trace["spans"]}
            assert {"ingest.apply", "ingest.broadcast"} <= span_names

            # Worker 1's scoped caches were invalidated by the broadcast
            # (eager), and its next read re-reads the shared ledger head
            # (correct even without the broadcast): the stale Debian ETag
            # misses and fresh bytes arrive.
            status, headers, debian_after = _fetch(
                second + debian_path, etag=debian_etag
            )
            assert status == 200
            assert headers["ETag"] != debian_etag
            assert debian_after != debian_before

            # The untouched Windows scope still revalidates to 304.
            status, _headers, body = _fetch(
                second + windows_path, etag=windows_etag
            )
            assert status == 304
            assert body == b""

            # The broadcast reached worker 1 before the ingest returned.
            health = HttpPeer(second).get_json("/healthz")
            assert health["response_cache"]["invalidations"] > 0
        finally:
            cluster.stop()


class TestWorkerFaultInjection:
    """Kill a worker hard and assert the survivor degrades gracefully."""

    def test_killed_peer_degrades_to_local_compute(self):
        """Scatter-gather falls back to local compute, bytes stay identical.

        With its peer SIGKILLed, the survivor's sharded matrix queries
        cannot gather remote partials; the digest-guarded scatter must
        degrade to computing every span locally -- and the payload must be
        byte-identical to a single-process deployment's, which rules out
        any mixed-digest merge.
        """
        from urllib.parse import parse_qs, urlsplit

        from repro.service.server import HttpRequest

        config = ServiceConfig(
            port=0, workers=2, catalogue=CATALOGUE, drain_grace=5.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        try:
            survivor = cluster.internal_urls[0]
            victim = cluster.processes[1]
            victim.kill()
            victim.join(timeout=30)
            assert not victim.is_alive()

            single = DiversityService(ServiceConfig(catalogue=CATALOGUE))
            for path in ("/v1/matrix/pairs", "/v1/matrix/ksets?k=3&top=4"):
                status, _headers, body = _fetch(survivor + path)
                assert status == 200
                parts = urlsplit(path)
                reference = single.dispatch(
                    HttpRequest(
                        method="GET", path=parts.path,
                        query={
                            name: tuple(values)
                            for name, values in parse_qs(parts.query).items()
                        },
                        headers={},
                    )
                )
                assert body == reference.body, (
                    f"{path} diverged from single-process bytes after the "
                    "peer died"
                )
                # One internally consistent dataset digest per payload.
                payload = json.loads(body)
                health = HttpPeer(survivor).get_json("/healthz")
                assert payload["dataset"]["digest"] == health["dataset"]["digest"]

            health = HttpPeer(survivor).get_json("/healthz")
            assert health["shard"]["scatter"]["fallback"] > 0, (
                "the survivor never took the local-compute fallback"
            )
        finally:
            # The victim was SIGKILLed, so the cluster cannot stop cleanly;
            # stop() must still reap every process without hanging.
            cluster.stop()

    def test_worker_killed_mid_soak_survivor_stays_consistent(
        self, corpus, tmp_path_factory
    ):
        """Mid-soak worker death: no stale reads, no mixed digests after.

        Runs the reusable soak harness (one delta, readers on both
        workers), SIGKILLs worker 1 the moment the delta's ingest returns,
        and asserts the survivor keeps serving fresh, monotone,
        single-digest payloads while the dead worker's readers record
        connection errors instead of crashing the soak.
        """
        root = tmp_path_factory.mktemp("soak-fault")
        db_path = root / "soak.db"
        database = VulnerabilityDatabase(db_path)
        IngestPipeline(database=database).ingest_raw(
            corpus.to_raw_feed_entries()
        )
        SnapshotStore(database).commit(source="soak seed")
        database.close()

        config = ServiceConfig(
            port=0, workers=2, db=str(db_path), drain_grace=10.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        killed_at = {}
        try:
            survivor, victim_url = cluster.internal_urls

            def kill_victim(mark):
                victim = cluster.processes[1]
                victim.kill()
                victim.join(timeout=30)
                killed_at["t"] = time.monotonic()

            report = run_soak(
                cluster.internal_urls,
                corpus,
                root,
                deltas=1,
                readers_per_url=1,
                min_requests=60,
                settle=1.0,
                on_delta=kill_victim,
            )

            assert killed_at, "the fault-injection hook never fired"
            # The survivor kept answering: every post-kill observation on
            # it succeeded, nothing stale, nothing moving backwards.
            after = [
                obs
                for obs in report.observations_after(killed_at["t"])
                if obs.url == survivor
            ]
            assert after, "no post-kill observations on the survivor"
            assert all(obs.status in (200, 304) for obs in after)
            assert not report.stale_reads()
            assert not report.snapshot_regressions()
            # The harness absorbed the dead worker as recorded errors.
            assert any(
                obs.status == 0
                for obs in report.observations
                if obs.url == victim_url
            ), "the dead worker's readers recorded no connection errors"
            # Post-kill the survivor serves exactly one dataset digest.
            digests = report.digests_after(killed_at["t"], survivor)
            assert len(digests) == 1, (
                f"mixed dataset digests after the kill: {sorted(digests)}"
            )

            # A never-cached sharded query now must scatter, hit the dead
            # peer and take the local fallback -- still one clean payload.
            status, _headers, body = _fetch(
                survivor + "/v1/matrix/ksets?k=2&top=3"
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["dataset"]["digest"] in digests
            health = HttpPeer(survivor).get_json("/healthz")
            assert health["shard"]["scatter"]["fallback"] > 0
        finally:
            cluster.stop()
