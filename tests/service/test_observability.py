"""Observability across the serving stack: /metrics, /v1/traces, healthz.

In-process tests cover the single-worker surface (exposition validity,
healthz/metrics agreement, trace-id adoption and echo) and the LocalPeer
fleet (trace propagation through scatter-gather).  The cluster test spawns
two real worker processes and follows one client-supplied trace id across
the scatter hop, end to end.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.obs import TRACE_HEADER, valid_trace_id
from repro.service import (
    ServiceCluster,
    ServiceConfig,
    StaticDatasetProvider,
    local_shard_fleet,
)
from repro.service.server import HttpRequest

from tests.service.conftest import make_app

#: Prometheus text lines: `name{labels} value` with a numeric value.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?(\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
)


def _get(app, path, query=None, headers=None):
    return app.dispatch(
        HttpRequest(
            method="GET", path=path, query=query or {}, headers=headers or {}
        )
    )


def _sample_value(text: str, prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(prefix):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample starting with {prefix!r} in exposition")


@pytest.fixture()
def provider(corpus):
    return StaticDatasetProvider(corpus.entries, label="test corpus")


class TestMetricsEndpoint:
    def test_exposition_is_valid_prometheus_text(self, corpus):
        app = make_app(corpus)
        assert _get(app, "/v1/matrix/pairs").status == 200
        result = _get(app, "/metrics")
        assert result.status == 200
        assert result.content_type.startswith("text/plain")
        text = result.body.decode("utf-8")
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
            else:
                assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'route="/v1/matrix/pairs"' in text
        # Single worker: every sample carries this worker's shard label.
        assert 'shard="0"' in text

    def test_request_counter_increments_per_request(self, corpus):
        app = make_app(corpus)
        for _ in range(3):
            assert _get(app, "/healthz").status == 200
        text = _get(app, "/metrics").body.decode("utf-8")
        assert (
            _sample_value(
                text,
                'repro_http_requests_total{method="GET",route="/healthz",'
                'status="200"',
            )
            == 3
        )

    def test_unrouted_requests_share_one_label(self, corpus):
        app = make_app(corpus)
        assert _get(app, "/no/such/path").status == 404
        assert _get(app, "/other/missing").status == 404
        text = _get(app, "/metrics").body.decode("utf-8")
        assert (
            _sample_value(
                text,
                'repro_http_requests_total{method="GET",route="unrouted",'
                'status="404"',
            )
            == 2
        )

    def test_unknown_scope_is_a_400(self, corpus):
        app = make_app(corpus)
        assert _get(app, "/metrics", {"scope": ("bogus",)}).status == 400

    def test_metrics_flag_removes_the_public_surface_only(self, corpus):
        app = make_app(corpus, metrics=False)
        assert _get(app, "/metrics").status == 404
        assert _get(app, "/v1/traces").status == 404
        # The internal transport stays up: peers still aggregate this worker.
        assert _get(app, "/internal/v1/metrics").status == 200
        assert _get(app, "/internal/v1/traces").status == 200

    def test_healthz_and_metrics_report_from_one_registry(self, corpus):
        app = make_app(corpus)
        for _ in range(2):
            assert _get(app, "/v1/matrix/pairs").status == 200
        health = json.loads(_get(app, "/healthz").body)
        text = _get(app, "/metrics").body.decode("utf-8")
        assert _sample_value(
            text, 'repro_response_cache_events_total{event="hit"'
        ) == health["response_cache"]["hits"]
        assert _sample_value(
            text, 'repro_response_cache_events_total{event="miss"'
        ) == health["response_cache"]["misses"]
        assert _sample_value(
            text, 'repro_registry_events_total{event="compile"'
        ) == health["registry"]["compiles"]


class TestTraceEndpoint:
    def test_every_response_echoes_a_trace_id(self, corpus):
        app = make_app(corpus)
        response = _get(app, "/healthz")
        assert valid_trace_id(response.headers[TRACE_HEADER])

    def test_client_supplied_ids_are_adopted_and_queryable(self, corpus):
        app = make_app(corpus)
        response = _get(
            app, "/v1/matrix/pairs",
            headers={TRACE_HEADER.lower(): "my-trace-1"},
        )
        assert response.headers[TRACE_HEADER] == "my-trace-1"
        payload = json.loads(
            _get(app, "/v1/traces", {"id": ("my-trace-1",)}).body
        )
        assert payload["trace_id"] == "my-trace-1"
        (record,) = payload["records"]
        assert record["name"] == "GET /v1/matrix/pairs"
        assert record["status"] == 200
        assert {span["name"] for span in record["spans"]} >= {"cache.lookup"}

    def test_malformed_ids_are_rejected_not_adopted(self, corpus):
        app = make_app(corpus)
        response = _get(
            app, "/healthz", headers={TRACE_HEADER.lower(): "bad id!"}
        )
        assert response.headers[TRACE_HEADER] != "bad id!"
        assert _get(app, "/v1/traces", {"id": ("bad id!",)}).status == 400

    def test_recent_traces_list_newest_first(self, corpus):
        app = make_app(corpus)
        for path in ("/healthz", "/v1/catalogue"):
            assert _get(app, path).status == 200
        payload = json.loads(_get(app, "/v1/traces", {"limit": ("2",)}).body)
        names = [record["name"] for record in payload["traces"]]
        assert names[0] == "GET /v1/catalogue"
        assert "GET /healthz" in names


class TestFleetTracePropagation:
    def test_scatter_propagates_the_trace_id_to_peers(self, corpus, provider):
        fleet = local_shard_fleet(ServiceConfig(), 3, provider=provider)
        response = _get(
            fleet[0], "/v1/matrix/pairs",
            headers={TRACE_HEADER.lower(): "fleet-trace-1"},
        )
        assert response.status == 200
        assert fleet[0].scatter_remote > 0

        payload = json.loads(
            _get(fleet[0], "/v1/traces", {"id": ("fleet-trace-1",)}).body
        )
        record_shards = {record["shard"] for record in payload["records"]}
        assert 0 in record_shards and len(record_shards) >= 2
        coordinator_spans = {
            span["name"] for span in payload["spans"] if span["shard"] == 0
        }
        assert {"scatter", "merge"} <= coordinator_spans


class TestClusterTracePropagation:
    def test_one_trace_spans_both_workers_end_to_end(self):
        import urllib.request

        config = ServiceConfig(
            port=0, workers=2, catalogue="scaled:4x5", drain_grace=5.0
        )
        cluster = ServiceCluster(config)
        cluster.start()
        try:
            first = cluster.internal_urls[0]
            trace_id = "e2e-scatter-trace"
            request = urllib.request.Request(
                first + "/v1/matrix/pairs",
                headers={TRACE_HEADER: trace_id},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 200
                assert response.headers[TRACE_HEADER] == trace_id

            with urllib.request.urlopen(
                first + f"/v1/traces?id={trace_id}", timeout=60
            ) as response:
                payload = json.loads(response.read())
            assert {record["shard"] for record in payload["records"]} == {0, 1}
            span_shards = {span["shard"] for span in payload["spans"]}
            assert span_shards == {0, 1}
            names = {span["name"] for span in payload["spans"]}
            # Real sockets: both sides record a parse span; the coordinator
            # adds the fan-out and merge.
            assert {"parse", "scatter", "merge"} <= names
        finally:
            cluster.stop()
