"""Endpoint payloads over a live server: golden files, ETags, healthz.

The JSON bodies of the data endpoints are deterministic for a fixed corpus
seed (canonical JSON over content-addressed state), so the committed files
under ``tests/golden/`` pin them byte for byte -- refresh with ``pytest
--update-golden`` after an intentional payload change, exactly like the
CLI golden tests.
"""

from __future__ import annotations

import json

from repro import __version__


def _body(client, path: str) -> str:
    result = client.get(path)
    assert result.status == 200, result.body
    return result.body.decode("utf-8")


class TestGoldenPayloads:
    def test_catalogue_matches_golden(self, server, golden):
        client, _app = server
        golden("service_catalogue.json", _body(client, "/v1/catalogue"))

    def test_shared_matches_golden(self, server, golden):
        client, _app = server
        golden(
            "service_shared.json",
            _body(client, "/v1/shared?os=Debian,OpenBSD,Solaris"),
        )

    def test_pair_matrix_matches_golden(self, server, golden):
        client, _app = server
        golden("service_pairs.json", _body(client, "/v1/matrix/pairs"))

    def test_ksets_matches_golden(self, server, golden):
        client, _app = server
        golden(
            "service_ksets.json", _body(client, "/v1/matrix/ksets?k=4&top=3")
        )

    def test_selection_matches_golden(self, server, golden):
        client, _app = server
        golden(
            "service_selection.json",
            _body(client, "/v1/selection?n=4&top=3&strategy=exhaustive"),
        )

    def test_widest_matches_golden(self, server, golden):
        client, _app = server
        golden(
            "service_widest.json",
            _body(client, "/v1/widest?top=3&configuration=fat"),
        )


class TestPayloadShapes:
    def test_shared_count_agrees_with_dataset(self, server, valid_dataset):
        client, _app = server
        payload = client.get("/v1/shared?os=Debian,OpenBSD").json()
        from repro.core.enums import ServerConfiguration

        expected = valid_dataset.filtered(
            ServerConfiguration.ISOLATED_THIN
        ).shared_count(("Debian", "OpenBSD"))
        assert payload["shared_count"] == expected
        assert payload["dataset"]["digest"]

    def test_pair_matrix_covers_every_pair(self, server, dataset):
        client, _app = server
        payload = client.get("/v1/matrix/pairs").json()
        count = len(dataset.os_names)
        assert len(payload["pairs"]) == count * (count - 1) // 2

    def test_configuration_slug_changes_the_numbers(self, server):
        client, _app = server
        fat = client.get("/v1/matrix/pairs?configuration=fat").json()
        isolated = client.get("/v1/matrix/pairs").json()
        total_fat = sum(row["shared"] for row in fat["pairs"])
        total_isolated = sum(row["shared"] for row in isolated["pairs"])
        assert total_fat > total_isolated

    def test_selection_groups_are_ranked(self, server):
        client, _app = server
        payload = client.get("/v1/selection?n=4&top=5").json()
        scores = [group["pairwise_shared"] for group in payload["groups"]]
        assert scores == sorted(scores)
        assert payload["strategy"] == "exhaustive"


class TestConditionalRequests:
    def test_if_none_match_revalidates_to_304(self, server):
        client, _app = server
        first = client.get("/v1/matrix/pairs")
        assert first.status == 200
        assert first.etag
        second = client.get(
            "/v1/matrix/pairs", headers={"If-None-Match": first.etag}
        )
        assert second.status == 304
        assert second.body == b""
        assert second.etag == first.etag

    def test_star_matches_any_representation(self, server):
        client, _app = server
        client.get("/v1/catalogue")
        result = client.get("/v1/catalogue", headers={"If-None-Match": "*"})
        assert result.status == 304

    def test_stale_etag_gets_full_response(self, server):
        client, _app = server
        result = client.get(
            "/v1/matrix/pairs", headers={"If-None-Match": '"stale"'}
        )
        assert result.status == 200
        assert result.body

    def test_repeat_request_is_served_from_cache(self, server):
        client, app = server
        first = client.get("/v1/matrix/ksets?k=3")
        second = client.get("/v1/matrix/ksets?k=3")
        assert first.headers.get("X-Cache") == "miss"
        assert second.headers.get("X-Cache") == "hit"
        assert first.body == second.body
        assert app.responses.stats()["hits"] >= 1

    def test_query_order_does_not_fragment_the_cache(self, server):
        client, _app = server
        one = client.get("/v1/matrix/ksets?k=3&top=5")
        two = client.get("/v1/matrix/ksets?top=5&k=3")
        assert one.etag == two.etag
        assert two.headers.get("X-Cache") == "hit"

    def test_catalogue_variants_share_one_etag_and_entry(self, server):
        # No parameter changes the catalogue payload, so every query
        # variant revalidates against the same ETag and cache entry.
        client, _app = server
        plain = client.get("/v1/catalogue")
        varied = client.get("/v1/catalogue?configuration=fat")
        assert plain.etag == varied.etag
        assert varied.headers.get("X-Cache") == "hit"
        revalidated = client.get(
            "/v1/catalogue?configuration=thin",
            headers={"If-None-Match": plain.etag},
        )
        assert revalidated.status == 304

    def test_reordered_os_values_are_distinct_responses(self, server):
        # os order is part of the response identity (os_names echoes it),
        # so the reordered request must not be served from the first
        # request's cache entry or share its ETag.
        client, _app = server
        one = client.get("/v1/shared?os=Debian&os=OpenBSD")
        two = client.get("/v1/shared?os=OpenBSD&os=Debian")
        assert one.json()["os_names"] == ["Debian", "OpenBSD"]
        assert two.json()["os_names"] == ["OpenBSD", "Debian"]
        assert one.etag != two.etag
        assert two.headers.get("X-Cache") == "miss"


class TestHealthz:
    def test_healthz_reports_version_digest_uptime(self, server, dataset):
        client, _app = server
        payload = client.get("/healthz").json()
        assert payload["service"] == "repro"
        assert payload["version"] == __version__
        assert payload["dataset"]["digest"] == dataset.digest()
        assert payload["uptime_seconds"] >= 0
        assert payload["jobs"] == {
            "queued": 0, "running": 0, "done": 0, "failed": 0,
        }
        assert payload["draining"] is False

    def test_healthz_counts_registry_compiles(self, server):
        client, app = server
        client.get("/healthz")
        client.get("/v1/catalogue")
        payload = client.get("/healthz").json()
        assert payload["registry"]["compiles"] == app.registry.compile_count == 1


class TestKeepAlive:
    def test_connection_close_is_honoured(self, server):
        client, _app = server
        result = client.get("/healthz", headers={"Connection": "close"})
        assert result.status == 200
        assert result.headers.get("Connection") == "close"

    def test_payloads_are_canonical_json(self, server):
        client, _app = server
        body = client.get("/v1/catalogue").body.decode("utf-8")
        payload = json.loads(body)
        assert body == json.dumps(payload, indent=2, sort_keys=True) + "\n"
