"""Tracing: deterministic span timing, the ring buffer, and the log seam.

Every timing here runs against a :class:`ManualClock`, so span offsets and
durations are exact equalities -- the same injectable seam that keeps the
production payloads deterministic makes the tests precise.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs import (
    JsonLogger,
    ManualClock,
    Tracer,
    new_trace_id,
    trace_sink,
    valid_trace_id,
)


class TestClock:
    def test_manual_clock_advances_both_readings(self):
        clock = ManualClock(start=10.0)
        clock.advance(2.5)
        assert clock.perf() == 12.5
        assert clock.wall() == 12.5

    def test_manual_clock_cannot_run_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestTraceIds:
    def test_minted_ids_are_sixteen_hex_chars_and_valid(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        assert valid_trace_id(trace_id)

    @pytest.mark.parametrize("value", ["abc", "a-b_c.d:e", "x" * 128])
    def test_propagation_safe_ids_are_adopted(self, value):
        assert valid_trace_id(value)
        assert Tracer().begin("GET /x", value).trace_id == value

    @pytest.mark.parametrize("value", [None, "", "has space", "x" * 129, "a\nb"])
    def test_unsafe_ids_are_replaced_with_fresh_ones(self, value):
        assert not valid_trace_id(value)
        trace = Tracer().begin("GET /x", value)
        assert trace.trace_id != value
        assert valid_trace_id(trace.trace_id)


class TestSpans:
    def test_span_offsets_and_durations_are_exact(self):
        clock = ManualClock()
        tracer = Tracer(shard=1, clock=clock)
        trace = tracer.begin("GET /v1/matrix/pairs", "trace-1")
        with tracer.activate(trace):
            clock.advance(0.25)
            with tracer.span("cache.lookup", kind="pairs") as handle:
                clock.advance(0.5)
                handle.tag(result="miss")
        tracer.finish(trace, status=200)

        payload = trace.to_json()
        assert payload["trace_id"] == "trace-1"
        assert payload["shard"] == 1
        assert payload["status"] == 200
        assert payload["duration_ms"] == 750.0
        assert payload["spans"] == [
            {
                "name": "cache.lookup",
                "start_ms": 250.0,
                "duration_ms": 500.0,
                "tags": {"kind": "pairs", "result": "miss"},
            }
        ]

    def test_span_without_an_active_trace_is_inert(self):
        tracer = Tracer()
        with tracer.span("orphan") as handle:
            handle.tag(ignored="yes")
        assert tracer.recent() == []

    def test_explicit_trace_reaches_across_threads(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.begin("GET /x")

        def worker() -> None:
            # Foreign thread: no thread-local current trace here.
            assert tracer.current() is None
            with tracer.span("scatter.partial", trace=trace, owner="1"):
                clock.advance(0.1)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        (span,) = trace.spans()
        assert span.name == "scatter.partial"
        assert span.tags == {"owner": "1"}

    def test_activation_restores_the_previous_trace(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        with tracer.activate(outer):
            with tracer.activate(inner):
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None


class TestRingBuffer:
    def test_ring_keeps_only_the_newest_traces(self):
        tracer = Tracer(buffer_size=3)
        for index in range(5):
            tracer.finish(tracer.begin(f"GET /{index}"), status=200)
        names = [trace.name for trace in tracer.recent(limit=10)]
        assert names == ["GET /4", "GET /3", "GET /2"]

    def test_find_returns_matches_oldest_first(self):
        tracer = Tracer(buffer_size=8)
        for status in (200, 304):
            tracer.finish(tracer.begin("GET /x", "shared-id"), status=status)
        tracer.finish(tracer.begin("GET /y", "other-id"), status=200)
        found = tracer.find("shared-id")
        assert [trace.status for trace in found] == [200, 304]
        assert tracer.find("missing") == []

    def test_buffer_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)


class TestLogSeam:
    def test_json_logger_emits_sorted_single_line_json(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, clock=ManualClock(start=12.5))
        logger.log("worker.up", shard=0, public=None)
        line = stream.getvalue()
        assert line.endswith("\n") and "\n" not in line[:-1]
        assert json.loads(line) == {
            "ts": 12.5,
            "event": "worker.up",
            "shard": 0,
            "public": None,
        }

    def test_trace_sink_logs_finished_traces(self):
        stream = io.StringIO()
        clock = ManualClock()
        logger = JsonLogger(stream=stream, clock=clock)
        tracer = Tracer(clock=clock, sink=trace_sink(logger))
        tracer.finish(tracer.begin("GET /x", "sunk-id"), status=200)
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "trace"
        assert payload["trace_id"] == "sunk-id"
        assert payload["status"] == 200
