"""Metrics primitives: semantics, thread-safety, and the text exposition.

The golden test pins the exact Prometheus text format a scrape sees; the
hammer test drives one Counter and one Histogram from a thread pool and
asserts no update was lost (every mutation takes the instrument lock).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    render_exposition,
)


class TestInstrumentSemantics:
    def test_counter_counts_per_label_series(self):
        counter = Counter("events_total", "Events.", labels=("event",))
        counter.inc(event="hit")
        counter.inc(2, event="miss")
        assert counter.value(event="hit") == 1.0
        assert counter.value(event="miss") == 2.0
        assert counter.value(event="never") == 0.0
        assert counter.total() == 3.0

    def test_counters_only_go_up(self):
        counter = Counter("events_total", "Events.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_set_is_validated(self):
        counter = Counter("events_total", "Events.", labels=("event",))
        with pytest.raises(ValueError):
            counter.inc(wrong="label")
        with pytest.raises(ValueError):
            counter.inc()

    def test_histogram_bins_cumulatively(self):
        histogram = Histogram("seconds", "Latency.", buckets=(0.1, 0.5, 1.0))
        for value in (0.05, 0.3, 0.4, 2.0):
            histogram.observe(value)
        (sample,) = histogram.snapshot()["samples"]
        assert sample["buckets"] == [[0.1, 1], [0.5, 3], [1.0, 3]]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(2.75)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("seconds", "x", buckets=())
        with pytest.raises(ValueError):
            Histogram("seconds", "x", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("seconds", "x", buckets=(1.0, float("inf")))

    def test_metric_names_are_validated(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit", "x")
        with pytest.raises(ValueError):
            Counter("has space", "x")


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("events_total", "Events.", labels=("event",))
        second = registry.counter("events_total", "ignored", labels=("event",))
        assert first is second

    def test_type_or_label_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events.", labels=("event",))
        with pytest.raises(ValueError):
            registry.gauge("events_total", "Events.", labels=("event",))
        with pytest.raises(ValueError):
            registry.counter("events_total", "Events.", labels=("other",))

    def test_namespace_prefixes_every_name(self):
        registry = MetricsRegistry(namespace="repro")
        assert registry.counter("x_total", "x").name == "repro_x_total"


class TestExposition:
    def test_worker_render_matches_the_golden_file(self, golden):
        registry = MetricsRegistry()
        requests = registry.counter(
            "http_requests_total",
            "HTTP requests served, by method and route.",
            labels=("method", "route"),
        )
        requests.inc(method="GET", route="/v1/matrix/pairs")
        requests.inc(2, method="GET", route="/healthz")
        registry.gauge("jobs_queued", "Jobs waiting to run.").set(3)
        latency = registry.histogram(
            "http_request_seconds",
            "Request latency in seconds.",
            buckets=(0.1, 0.5, 1.0),
        )
        for value in (0.05, 0.3, 2.0):
            latency.observe(value)
        golden("obs_exposition.txt", registry.render())

    def test_cluster_parts_merge_under_shard_labels(self):
        shard0, shard1 = MetricsRegistry(), MetricsRegistry()
        for index, registry in enumerate((shard0, shard1)):
            counter = registry.counter(
                "http_requests_total", "HTTP requests served."
            )
            counter.inc(index + 1)
        text = render_exposition(
            [
                (shard0.snapshot(), {"shard": "0"}),
                (shard1.snapshot(), {"shard": "1"}),
            ]
        )
        # One header, both shards' series side by side -- never summed.
        assert text.count("# TYPE repro_http_requests_total counter") == 1
        assert 'repro_http_requests_total{shard="0"} 1' in text
        assert 'repro_http_requests_total{shard="1"} 2' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestThreadSafety:
    def test_concurrent_updates_are_never_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "hammer_total", "Hammered.", labels=("worker",)
        )
        histogram = registry.histogram(
            "hammer_seconds", "Hammered.", buckets=(0.25, 0.75)
        )
        threads, per_thread = 8, 2500
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for iteration in range(per_thread):
                counter.inc(worker=str(worker % 2))
                histogram.observe((iteration % 2) * 0.5)

        pool = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert counter.total() == threads * per_thread
        assert counter.value(worker="0") == threads * per_thread / 2
        (sample,) = histogram.snapshot()["samples"]
        assert sample["count"] == threads * per_thread
        # Half the observations were 0.0 (<= 0.25), half 0.5 (<= 0.75).
        assert sample["buckets"] == [
            [0.25, threads * per_thread // 2],
            [0.75, threads * per_thread],
        ]
