"""Tests for the keyword rules and the component classifier."""

import pytest

from repro.classify.classifier import ComponentClassifier
from repro.classify.rules import DEFAULT_RULES, ClassificationRule
from repro.core.enums import ComponentClass
from repro.core.exceptions import ClassificationError
from repro.synthetic import descriptions
from repro.core.enums import AccessVector
from tests.conftest import make_entry


class TestRules:
    def test_rules_are_sorted_by_priority_when_used(self):
        priorities = [rule.priority for rule in sorted(DEFAULT_RULES, key=lambda r: r.priority)]
        assert priorities == sorted(priorities)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("A bug in the wireless network card driver", ComponentClass.DRIVER),
            ("The TCP/IP stack mishandles fragmented packets", ComponentClass.KERNEL),
            ("The login service accepts empty passwords", ComponentClass.SYSTEM_SOFTWARE),
            ("The bundled web browser mishandles javascript", ComponentClass.APPLICATION),
            ("Buffer overflow in the Java virtual machine runtime", ComponentClass.APPLICATION),
            ("Race condition in the UFS file system code", ComponentClass.KERNEL),
            ("The print spooler daemon crashes on long names", ComponentClass.SYSTEM_SOFTWARE),
        ],
    )
    def test_rule_examples(self, text, expected):
        classifier = ComponentClassifier()
        assert classifier.classify_text(text) is expected

    def test_driver_rule_wins_over_kernel_keywords(self):
        classifier = ComponentClassifier()
        text = "The video graphics card driver in the kernel tree has a flaw"
        assert classifier.classify_text(text) is ComponentClass.DRIVER

    def test_unmatched_text_returns_none(self):
        classifier = ComponentClassifier()
        assert classifier.classify_text("An entirely unrelated sentence.") is None


class TestClassifier:
    def test_classify_uses_rules(self):
        classifier = ComponentClassifier()
        entry = make_entry(summary="A flaw in the TCP/IP stack allows a crash.",
                           component_class=None)
        assert classifier.classify(entry) is ComponentClass.KERNEL

    def test_override_wins_over_rules(self):
        classifier = ComponentClassifier(overrides={"CVE-2005-0001": ComponentClass.DRIVER})
        entry = make_entry(summary="A flaw in the TCP/IP stack allows a crash.",
                           component_class=None)
        assert classifier.classify(entry) is ComponentClass.DRIVER
        assert classifier.report.overridden == 1

    def test_add_override(self):
        classifier = ComponentClassifier()
        classifier.add_override("CVE-2005-0001", ComponentClass.SYSTEM_SOFTWARE)
        entry = make_entry(summary="unmatchable text", component_class=None)
        assert classifier.classify(entry) is ComponentClass.SYSTEM_SOFTWARE

    def test_fallback_used_when_nothing_matches(self):
        classifier = ComponentClassifier()
        entry = make_entry(summary="nothing relevant here", component_class=None)
        assert classifier.classify(entry) is ComponentClass.APPLICATION
        assert classifier.report.fallback_used == 1

    def test_strict_mode_raises_when_nothing_matches(self):
        classifier = ComponentClassifier(fallback=None)
        entry = make_entry(summary="nothing relevant here", component_class=None)
        with pytest.raises(ClassificationError):
            classifier.classify(entry)

    def test_classify_all_keep_existing(self):
        classifier = ComponentClassifier()
        pre_classified = make_entry(component_class=ComponentClass.DRIVER,
                                    summary="The TCP/IP stack ...")
        out = classifier.classify_all([pre_classified], keep_existing=True)
        assert out[0].component_class is ComponentClass.DRIVER

    def test_classify_all_reclassifies_by_default(self):
        classifier = ComponentClassifier()
        pre_classified = make_entry(component_class=ComponentClass.DRIVER,
                                    summary="A bug in the TCP/IP stack")
        out = classifier.classify_all([pre_classified])
        assert out[0].component_class is ComponentClass.KERNEL

    def test_class_distribution(self):
        classifier = ComponentClassifier()
        entries = [
            make_entry(cve_id="CVE-2001-0001", component_class=ComponentClass.KERNEL),
            make_entry(cve_id="CVE-2001-0002", component_class=ComponentClass.KERNEL),
            make_entry(cve_id="CVE-2001-0003", component_class=ComponentClass.APPLICATION),
        ]
        histogram = classifier.class_distribution(entries)
        assert histogram[ComponentClass.KERNEL] == 2
        assert histogram[ComponentClass.APPLICATION] == 1
        assert histogram[ComponentClass.DRIVER] == 0


class TestSyntheticDescriptionsAreClassifiable:
    """The generated descriptions must be recovered by the rule classifier.

    This is the property that lets the ingest pipeline re-derive the paper's
    hand classification from description text alone.
    """

    @pytest.mark.parametrize("component_class", list(ComponentClass))
    def test_every_template_maps_back_to_its_class(self, component_class):
        classifier = ComponentClassifier(fallback=None)
        for salt in range(60):
            text = descriptions.describe(
                component_class, AccessVector.NETWORK, ["Debian", "OpenBSD"], salt
            )
            assert classifier.classify_text(text) is component_class, text
