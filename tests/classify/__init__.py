"""Test package."""
