"""Tests for validity and server-configuration filters."""

import pytest

from repro.classify.filters import (
    ServerConfigurationFilter,
    ValidityFilter,
    configuration_filters,
    fat_server,
    isolated_thin_server,
    thin_server,
)
from repro.core.enums import AccessVector, ComponentClass, ServerConfiguration, ValidityStatus
from repro.synthetic.descriptions import describe_invalid
from tests.conftest import make_entry


class TestValidityFilter:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("Unknown vulnerability in Solaris mentioned in a patch.", ValidityStatus.UNKNOWN),
            ("Unspecified vulnerability in RedHat with unspecified vectors.", ValidityStatus.UNSPECIFIED),
            ("** DISPUTED ** The vendor disagrees this is a flaw.", ValidityStatus.DISPUTED),
            ("**DISPUTED** no spaces variant.", ValidityStatus.DISPUTED),
            ("A buffer overflow in the kernel allows code execution.", ValidityStatus.VALID),
        ],
    )
    def test_status_for_text(self, text, expected):
        assert ValidityFilter().status_for_text(text) is expected

    def test_disputed_wins_over_unknown(self):
        text = "** DISPUTED ** Unknown vulnerability with unknown impact."
        assert ValidityFilter().status_for_text(text) is ValidityStatus.DISPUTED

    def test_synthetic_invalid_descriptions_are_detected(self):
        validity_filter = ValidityFilter()
        for kind, status in (
            ("unknown", ValidityStatus.UNKNOWN),
            ("unspecified", ValidityStatus.UNSPECIFIED),
            ("disputed", ValidityStatus.DISPUTED),
        ):
            text = describe_invalid(kind, ["Solaris"], 3)
            assert validity_filter.status_for_text(text) is status

    def test_describe_invalid_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            describe_invalid("bogus", ["Solaris"], 0)

    def test_split(self):
        validity_filter = ValidityFilter()
        entries = [
            make_entry(cve_id="CVE-2001-0001", summary="A kernel buffer overflow."),
            make_entry(cve_id="CVE-2001-0002",
                       summary="Unknown vulnerability in the base system."),
        ]
        valid, excluded = validity_filter.split(entries)
        assert [e.cve_id for e in valid] == ["CVE-2001-0001"]
        assert [e.cve_id for e in excluded] == ["CVE-2001-0002"]
        assert excluded[0].validity is ValidityStatus.UNKNOWN

    def test_exclusion_counts(self):
        validity_filter = ValidityFilter()
        entries = [
            make_entry(cve_id="CVE-2001-0001"),
            make_entry(cve_id="CVE-2001-0002", summary="Unspecified vulnerability."),
            make_entry(cve_id="CVE-2001-0003", summary="Unspecified vulnerability again."),
        ]
        counts = validity_filter.exclusion_counts(entries)
        assert counts[ValidityStatus.VALID] == 1
        assert counts[ValidityStatus.UNSPECIFIED] == 2


class TestServerConfigurationFilter:
    def test_fat_admits_everything_valid(self):
        entry = make_entry(component_class=ComponentClass.APPLICATION, access=AccessVector.LOCAL)
        assert fat_server().admits(entry)

    def test_fat_rejects_invalid(self):
        entry = make_entry(validity=ValidityStatus.DISPUTED)
        assert not fat_server().admits(entry)

    def test_thin_rejects_applications(self):
        app = make_entry(component_class=ComponentClass.APPLICATION)
        kernel = make_entry(component_class=ComponentClass.KERNEL, access=AccessVector.LOCAL)
        assert not thin_server().admits(app)
        assert thin_server().admits(kernel)

    def test_isolated_thin_rejects_local(self):
        local_kernel = make_entry(component_class=ComponentClass.KERNEL, access=AccessVector.LOCAL)
        remote_kernel = make_entry(component_class=ComponentClass.KERNEL, access=AccessVector.NETWORK)
        adjacent = make_entry(component_class=ComponentClass.KERNEL,
                              access=AccessVector.ADJACENT_NETWORK)
        assert not isolated_thin_server().admits(local_kernel)
        assert isolated_thin_server().admits(remote_kernel)
        assert isolated_thin_server().admits(adjacent)

    def test_filter_is_callable_and_applies(self):
        entries = [
            make_entry(cve_id="CVE-2001-0001", component_class=ComponentClass.APPLICATION),
            make_entry(cve_id="CVE-2001-0002", component_class=ComponentClass.KERNEL),
        ]
        thin = thin_server()
        assert [e.cve_id for e in thin.apply(entries)] == ["CVE-2001-0002"]
        assert thin(entries[1])

    def test_configuration_filters_order(self):
        configurations = [f.configuration for f in configuration_filters()]
        assert configurations == [
            ServerConfiguration.FAT,
            ServerConfiguration.THIN,
            ServerConfiguration.ISOLATED_THIN,
        ]

    def test_filters_are_monotone_on_the_corpus(self, valid_dataset):
        """Fat ⊇ Thin ⊇ Isolated Thin for every OS (Table III structure)."""
        fat = valid_dataset.filtered(ServerConfiguration.FAT)
        thin = valid_dataset.filtered(ServerConfiguration.THIN)
        isolated = valid_dataset.filtered(ServerConfiguration.ISOLATED_THIN)
        for name in valid_dataset.os_names:
            assert fat.count_for(name) >= thin.count_for(name) >= isolated.count_for(name)
