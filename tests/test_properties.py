"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import datetime as dt

from hypothesis import given, settings, strategies as st

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.pairs import PairAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.constants import OS_NAMES
from repro.core.enums import AccessVector, ComponentClass, ServerConfiguration, ValidityStatus
from repro.core.models import CVSSVector, VulnerabilityEntry
from repro.itsys.events import EventQueue
from repro.itsys.replica import ReplicaGroup

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

os_subsets = st.sets(st.sampled_from(OS_NAMES), min_size=1, max_size=5)

entries_strategy = st.lists(
    st.builds(
        lambda index, oses, cls, access, year, valid: VulnerabilityEntry(
            cve_id=f"CVE-{year}-{1000 + index}",
            published=dt.date(year, 1 + index % 12, 1 + index % 28),
            summary="generated entry",
            cvss=CVSSVector(access_vector=access),
            affected_os=frozenset(oses),
            component_class=cls,
            validity=ValidityStatus.VALID if valid else ValidityStatus.UNKNOWN,
        ),
        index=st.integers(min_value=0, max_value=9999),
        oses=os_subsets,
        cls=st.sampled_from(list(ComponentClass)),
        access=st.sampled_from(list(AccessVector)),
        year=st.integers(min_value=1994, max_value=2010),
        valid=st.booleans(),
    ),
    min_size=0,
    max_size=60,
    unique_by=lambda entry: entry.cve_id,
)


# ---------------------------------------------------------------------------
# dataset invariants
# ---------------------------------------------------------------------------


@given(entries=entries_strategy)
@settings(max_examples=60, deadline=None)
def test_filters_are_nested_subsets(entries):
    """Fat ⊇ Thin ⊇ Isolated-Thin, for any collection of entries."""
    dataset = VulnerabilityDataset(entries)
    fat = {e.cve_id for e in dataset.filtered(ServerConfiguration.FAT)}
    thin = {e.cve_id for e in dataset.filtered(ServerConfiguration.THIN)}
    isolated = {e.cve_id for e in dataset.filtered(ServerConfiguration.ISOLATED_THIN)}
    assert isolated <= thin <= fat
    valid_ids = {e.cve_id for e in dataset.valid()}
    assert fat <= valid_ids


@given(entries=entries_strategy)
@settings(max_examples=60, deadline=None)
def test_validity_summary_totals_are_consistent(entries):
    dataset = VulnerabilityDataset(entries)
    summary = dataset.validity_summary()
    assert sum(summary.distinct.values()) == len(dataset)
    # Per-OS counts never exceed the number of entries affecting that OS.
    for name in OS_NAMES:
        assert sum(summary.per_os[name].values()) == dataset.count_for(name)


@given(entries=entries_strategy, a=st.sampled_from(OS_NAMES), b=st.sampled_from(OS_NAMES))
@settings(max_examples=60, deadline=None)
def test_shared_counts_are_symmetric_and_bounded(entries, a, b):
    dataset = VulnerabilityDataset(entries).valid()
    if a == b:
        return
    shared_ab = dataset.shared_count((a, b))
    shared_ba = dataset.shared_count((b, a))
    assert shared_ab == shared_ba
    assert shared_ab <= min(dataset.count_for(a), dataset.count_for(b))
    # Adding a third OS can only shrink the intersection.
    for c in OS_NAMES[:3]:
        if c not in (a, b):
            assert dataset.shared_count((a, b, c)) <= shared_ab


@given(entries=entries_strategy)
@settings(max_examples=40, deadline=None)
def test_pair_analysis_reduction_is_bounded(entries):
    dataset = VulnerabilityDataset(entries)
    analysis = PairAnalysis(dataset, OS_NAMES[:5])
    reduction = analysis.reduction_between(
        ServerConfiguration.FAT, ServerConfiguration.ISOLATED_THIN
    )
    assert 0.0 <= reduction <= 100.0


@given(entries=entries_strategy, names=st.lists(st.sampled_from(OS_NAMES), min_size=2, max_size=5, unique=True))
@settings(max_examples=40, deadline=None)
def test_three_engines_answer_every_query_identically(entries, names):
    """naive, bitset and packed are observationally equivalent datasets."""
    naive, bitset, packed = (
        VulnerabilityDataset(entries, engine=engine).valid()
        for engine in ("naive", "bitset", "packed")
    )
    group = tuple(names)
    assert naive.shared_count(group) == bitset.shared_count(group) == packed.shared_count(group)
    assert naive.shared_between(group) == bitset.shared_between(group) == packed.shared_between(group)
    for k in (1, 2, len(group)):
        assert (
            len(naive.affecting_at_least(k))
            == len(bitset.affecting_at_least(k))
            == len(packed.affecting_at_least(k))
        )
    assert naive.compromising(group, threshold=2) == bitset.compromising(
        group, threshold=2
    ) == packed.compromising(group, threshold=2)


# ---------------------------------------------------------------------------
# selection invariants
# ---------------------------------------------------------------------------

pair_matrices = st.dictionaries(
    keys=st.tuples(st.sampled_from(OS_NAMES[:6]), st.sampled_from(OS_NAMES[:6])).filter(
        lambda pair: pair[0] < pair[1]
    ),
    values=st.integers(min_value=0, max_value=50),
    min_size=6,
    max_size=15,
)


@given(matrix=pair_matrices, n=st.integers(min_value=2, max_value=4))
@settings(max_examples=50, deadline=None)
def test_exhaustive_selection_is_optimal(matrix, n):
    selector = ReplicaSetSelector(pair_matrix=matrix)
    if n > len(selector.candidates):
        return
    best = selector.exhaustive(n, top=1)[0]
    greedy = selector.greedy(n)
    graph = selector.graph_based(n)
    # Exhaustive search is the optimum; heuristics can only be worse or equal.
    assert best.pairwise_shared <= greedy.pairwise_shared
    assert best.pairwise_shared <= graph.pairwise_shared
    # Every returned group has the right size and no duplicates.
    for result in (best, greedy, graph):
        assert len(result.os_names) == n
        assert len(set(result.os_names)) == n


# ---------------------------------------------------------------------------
# event queue and replica-group invariants
# ---------------------------------------------------------------------------


@given(times=st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
@settings(max_examples=60, deadline=None)
def test_event_queue_delivers_in_order(times):
    queue = EventQueue()
    for time in times:
        queue.schedule(time, "tick")
    delivered = [event.time for event in queue.drain()]
    assert delivered == sorted(times)


@given(
    oses=st.lists(st.sampled_from(OS_NAMES), min_size=1, max_size=10),
    exploit_sets=st.lists(os_subsets, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_replica_group_compromise_monotone(oses, exploit_sets):
    """Compromised count only grows, never exceeds n, and safety follows f."""
    group = ReplicaGroup(list(oses))
    previous = 0
    for index, affected in enumerate(exploit_sets):
        group.apply_exploit(float(index), f"CVE-{index}", affected)
        current = group.compromised_count()
        assert previous <= current <= group.n
        previous = current
        assert group.safety_violated == (current > group.f)
