"""Content-addressing unit tests (repro.snapshots.digests)."""

import dataclasses

import pytest

from repro.snapshots.digests import (
    dataset_digest,
    dataset_digest_of,
    entry_digest,
    entry_from_json,
    entry_from_payload,
    entry_payload,
    entry_to_json,
)
from tests.conftest import make_entry


class TestEntryDigest:
    def test_is_deterministic(self):
        entry = make_entry()
        assert entry_digest(entry) == entry_digest(make_entry())

    def test_changes_with_every_normalized_field(self):
        base = make_entry()
        variants = [
            make_entry(cve_id="CVE-2005-0002"),
            make_entry(summary="A different remote kernel flaw crashes the system."),
            make_entry(year=2006),
            make_entry(oses=("Debian", "RedHat")),
            make_entry(versions={"Debian": ("3.0",)}),
            make_entry(component_class=None),
            dataclasses.replace(base, cvss=dataclasses.replace(base.cvss, base_score=9.1)),
        ]
        digests = {entry_digest(variant) for variant in variants}
        assert entry_digest(base) not in digests
        assert len(digests) == len(variants)

    def test_ignores_raw_cpes(self):
        # Raw CPE names are feed provenance, not normalized content.
        base = make_entry()
        with_cpes = dataclasses.replace(base, raw_cpes=())
        assert entry_digest(base) == entry_digest(with_cpes)

    def test_affected_os_order_does_not_matter(self):
        a = make_entry(oses=("Debian", "RedHat", "Solaris"))
        b = make_entry(oses=("Solaris", "Debian", "RedHat"))
        assert entry_digest(a) == entry_digest(b)


class TestPayloadRoundTrip:
    def test_payload_round_trips_exactly(self):
        entry = make_entry(
            oses=("Debian", "OpenBSD"), versions={"Debian": ("3.0", "4.0")}
        )
        rebuilt = entry_from_payload(entry_payload(entry))
        assert rebuilt == dataclasses.replace(entry, raw_cpes=())
        assert entry_digest(rebuilt) == entry_digest(entry)

    def test_json_round_trip(self, corpus):
        for entry in corpus.entries[:50]:
            rebuilt = entry_from_json(entry_to_json(entry))
            assert entry_digest(rebuilt) == entry_digest(entry)
            assert rebuilt.affected_os == entry.affected_os
            assert rebuilt.validity == entry.validity


class TestDatasetDigest:
    def test_is_order_insensitive(self):
        a, b = make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002")
        assert dataset_digest_of([a, b]) == dataset_digest_of([b, a])

    def test_depends_on_membership_and_content(self):
        a, b = make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002")
        changed = make_entry("CVE-2005-0002", summary="A revised kernel flaw.")
        digests = {
            dataset_digest_of([a, b]),
            dataset_digest_of([a]),
            dataset_digest_of([a, changed]),
        }
        assert len(digests) == 3

    def test_empty_state_digest_is_stable(self):
        assert dataset_digest({}) == dataset_digest({})

    def test_raw_mapping_and_entry_list_agree(self):
        entries = [make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002")]
        state = {entry.cve_id: entry_digest(entry) for entry in entries}
        assert dataset_digest(state) == dataset_digest_of(entries)

    def test_duplicate_cve_ids_collapse(self):
        entry = make_entry()
        assert dataset_digest_of([entry, entry]) == dataset_digest_of([entry])
