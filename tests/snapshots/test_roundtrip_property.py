"""Property tests: random delta batches vs from-scratch ingestion.

The contract under test is the heart of the incremental pipeline: after any
sequence of upserts and tombstones, (1) the head snapshot's time-travelled
dataset is *identical* to a from-scratch ingest of the final state, (2)
replaying any applied batch changes neither the database nor the ledger,
and (3) sweep-cache scope digests move only for replica groups whose OSes
the batch touched.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.enums import ServerConfiguration
from repro.db.database import VulnerabilityDatabase
from repro.runner.cache import scoped_corpus_digest
from repro.snapshots.digests import dataset_digest_of
from repro.snapshots.store import SnapshotStore
from tests.conftest import make_entry

OSES = ("Debian", "RedHat", "Solaris", "OpenBSD")
CVE_IDS = tuple(f"CVE-2005-{index:04d}" for index in range(1, 9))

#: One mutation: (cve_id, None) tombstones, (cve_id, (revision, oses)) upserts.
_mutation = st.tuples(
    st.sampled_from(CVE_IDS),
    st.one_of(
        st.none(),
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.sets(st.sampled_from(OSES), min_size=1, max_size=3),
        ),
    ),
)


def _entry(cve_id, revision, oses):
    return make_entry(
        cve_id=cve_id,
        oses=tuple(sorted(oses)),
        summary=f"A kernel flaw (rev {revision}) allows remote attackers "
        "to crash the system.",
        # Spread publication dates so ordering is exercised.
        month=(int(cve_id[-4:]) % 12) + 1,
    )


def _apply(database, state, batch):
    """Apply one mutation batch to a database and a model state dict."""
    for cve_id, action in batch:
        if action is None:
            database.tombstone_entry(cve_id)
            state.pop(cve_id, None)
        else:
            revision, oses = action
            entry = _entry(cve_id, revision, oses)
            database.upsert_entry(entry)
            state[cve_id] = entry


@settings(max_examples=25, deadline=None)
@given(batches=st.lists(st.lists(_mutation, min_size=1, max_size=6),
                        min_size=1, max_size=4))
def test_snapshot_chain_matches_from_scratch_ingest(batches):
    database = VulnerabilityDatabase()
    database.register_os_catalog()
    store = SnapshotStore(database)
    state = {}
    for batch in batches:
        _apply(database, state, batch)
        store.commit(source="batch")
    head = store.head()
    assert head is not None

    # From scratch: a fresh database holding only the final state.
    fresh = VulnerabilityDatabase()
    fresh.register_os_catalog()
    for entry in state.values():
        fresh.insert_entry(entry)

    assert head.digest == dataset_digest_of(state.values())
    if state:
        assert list(store.dataset_at(head.snapshot_id)) == fresh.load_entries()
    else:
        assert store.dataset_at(head.snapshot_id).entries == ()


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(_mutation, min_size=1, max_size=6))
def test_replaying_an_applied_batch_is_a_noop(batch):
    database = VulnerabilityDatabase()
    database.register_os_catalog()
    store = SnapshotStore(database)
    state = {}
    _apply(database, state, batch)
    first = store.commit()
    _apply(database, state, batch)  # replay the identical batch
    second = store.commit()
    assert second == first
    assert len(store.list()) == 1


@settings(max_examples=25, deadline=None)
@given(
    before=st.lists(_mutation, min_size=2, max_size=8),
    after=st.lists(_mutation, min_size=1, max_size=4),
)
def test_scope_digests_move_only_for_touched_groups(before, after):
    database = VulnerabilityDatabase()
    database.register_os_catalog()
    store = SnapshotStore(database)
    state = {}
    _apply(database, state, before)
    first = store.commit()
    old_entries = store.entries_at(first.snapshot_id)

    _apply(database, state, after)
    second = store.commit()
    if second == first:
        return  # the batch was a net no-op; nothing to compare
    new_entries = store.entries_at(second.snapshot_id)
    diff = store.diff(first.snapshot_id, second.snapshot_id)

    for group in ((OSES[0],), (OSES[1], OSES[2]), OSES):
        untouched = not diff.touches_group(group)
        same_digest = scoped_corpus_digest(
            old_entries, group, ServerConfiguration.ISOLATED_THIN
        ) == scoped_corpus_digest(
            new_entries, group, ServerConfiguration.ISOLATED_THIN
        )
        if untouched:
            # The cache-key scope of an untouched group never moves.
            assert same_digest
