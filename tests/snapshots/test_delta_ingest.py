"""Delta ingestion: upserts, tombstones, idempotence, schema migration."""

import dataclasses
import sqlite3

import pytest

from repro.core.enums import ValidityStatus
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.db.schema import SCHEMA_VERSION, migrate_connection
from repro.nvd.feed_parser import RawFeedEntry, parse_xml_feed
from repro.nvd.feed_writer import rejection_entry, write_modified_feed
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.digests import entry_digest
from repro.snapshots.store import SnapshotStore
from tests.conftest import make_entry


@pytest.fixture()
def pipeline():
    return IngestPipeline()


@pytest.fixture()
def delta(pipeline):
    return DeltaIngestPipeline(pipeline)


def raw(cve_id="CVE-2005-0001", summary="A kernel flaw in Debian allows "
        "remote attackers to crash the system.", year=2005,
        cpes=("cpe:/o:debian:debian_linux:4.0",)):
    import datetime as dt

    return RawFeedEntry(
        cve_id=cve_id,
        published=dt.date(year, 6, 15),
        summary=summary,
        cvss_vector="AV:N/AC:L/Au:N/C:P/I:P/A:P",
        cpe_uris=tuple(cpes),
    )


class TestUpsert:
    def test_new_entry_is_added(self, delta):
        report = delta.apply_raw([raw()])
        assert (report.added, report.modified, report.unchanged) == (1, 0, 0)
        assert delta.database.entry_count() == 1

    def test_identical_reapplication_is_unchanged(self, delta):
        delta.apply_raw([raw()])
        report = delta.apply_raw([raw()])
        assert (report.added, report.modified, report.unchanged) == (0, 0, 1)
        assert report.changed == 0

    def test_content_change_is_modified(self, delta):
        delta.apply_raw([raw()])
        revised = raw(summary="A kernel flaw in Debian allows remote "
                      "attackers to crash the system. Revised advisory.")
        report = delta.apply_raw([revised])
        assert report.modified == 1
        entries = delta.database.load_entries()
        assert len(entries) == 1
        assert "Revised advisory" in entries[0].summary

    def test_upsert_replaces_relationships(self, delta):
        delta.apply_raw([raw()])
        moved = raw(cpes=("cpe:/o:redhat:enterprise_linux:5",))
        delta.apply_raw([moved])
        (entry,) = delta.database.load_entries()
        assert entry.affected_os == frozenset({"RedHat"})

    def test_upsert_entry_outcomes_directly(self):
        database = VulnerabilityDatabase()
        database.register_os_catalog()
        entry = make_entry()
        assert database.upsert_entry(entry) == "added"
        assert database.upsert_entry(entry) == "unchanged"
        revised = make_entry(summary="A revised kernel flaw.")
        assert database.upsert_entry(revised) == "modified"
        stored = database.load_entries()[0]
        assert entry_digest(stored) == entry_digest(revised)


class TestTombstones:
    def test_rejection_tombstones_the_entry(self, delta):
        delta.apply_raw([raw()])
        report = delta.apply_raw([rejection_entry("CVE-2005-0001", raw().published)])
        assert report.removed == 1
        assert delta.database.entry_count() == 0
        assert delta.database.load_entries() == []

    def test_rejecting_unknown_entry_is_skipped(self, delta):
        report = delta.apply_raw([rejection_entry("CVE-1999-9999", raw().published)])
        assert report.removed == 0
        assert report.skipped_no_os == 1

    def test_out_of_scope_republication_tombstones(self, delta):
        delta.apply_raw([raw()])
        # Republished with only an application CPE: leaves the study scope.
        out = raw(cpes=("cpe:/a:apache:http_server:2.2",))
        report = delta.apply_raw([out])
        assert report.removed == 1
        assert delta.database.entry_count() == 0

    def test_tombstoned_entry_can_be_resurrected(self, delta):
        delta.apply_raw([raw()])
        delta.apply_raw([rejection_entry("CVE-2005-0001", raw().published)])
        report = delta.apply_raw([raw()])
        assert report.modified == 1  # same id, content restored
        assert delta.database.entry_count() == 1

    def test_tombstone_excluded_from_counts_and_digests(self):
        database = VulnerabilityDatabase()
        database.register_os_catalog()
        database.insert_entry(make_entry("CVE-2005-0001"))
        database.insert_entry(make_entry("CVE-2005-0002"))
        database.tombstone_entry("CVE-2005-0001")
        assert database.entry_count() == 1
        assert set(database.live_state()) == {"CVE-2005-0002"}


class TestFeedApplication:
    def test_apply_xml_feed_commits_snapshot(self, delta, tmp_path):
        path = write_modified_feed([raw()], tmp_path / "modified.xml")
        report = delta.apply_feed(path)
        assert report.added == 1
        assert report.snapshot is not None
        assert report.snapshot.source == str(path)

    def test_rejection_survives_the_feed_round_trip(self, tmp_path):
        tombstone = rejection_entry("CVE-2005-0001", raw().published)
        path = write_modified_feed([tombstone], tmp_path / "modified.xml")
        (parsed,) = parse_xml_feed(path)
        assert parsed.is_rejected
        assert parsed.cve_id == "CVE-2005-0001"

    def test_commit_false_leaves_no_snapshot(self, delta):
        report = delta.apply_raw([raw()], commit=False)
        assert report.snapshot is None
        assert SnapshotStore(delta.database).head() is None


class TestSchemaMigration:
    V1_STATEMENTS = (
        """
        CREATE TABLE vulnerability (
            vuln_id INTEGER PRIMARY KEY,
            cve_id TEXT NOT NULL UNIQUE,
            published DATE NOT NULL,
            summary TEXT NOT NULL,
            validity TEXT NOT NULL DEFAULT 'Valid'
        )
        """,
        """
        CREATE TABLE vulnerability_type (
            vuln_id INTEGER PRIMARY KEY REFERENCES vulnerability(vuln_id),
            component_class TEXT
        )
        """,
    )

    def test_v1_database_is_upgraded_in_place(self, tmp_path):
        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        for statement in self.V1_STATEMENTS:
            conn.execute(statement)
        conn.execute(
            "INSERT INTO vulnerability (cve_id, published, summary)"
            " VALUES ('CVE-2001-0001', '2001-05-01', 'An old flaw.')"
        )
        conn.commit()
        conn.close()

        database = VulnerabilityDatabase(path)
        version = database.connection.execute("PRAGMA user_version").fetchone()[0]
        assert version == SCHEMA_VERSION
        columns = {
            row[1]
            for row in database.connection.execute(
                "PRAGMA table_info(vulnerability)"
            )
        }
        assert {"entry_digest", "tombstoned"} <= columns
        # The pre-existing row survived with NULL digest and live status.
        row = database.connection.execute(
            "SELECT entry_digest, tombstoned FROM vulnerability"
        ).fetchone()
        assert row["entry_digest"] is None
        assert row["tombstoned"] == 0
        database.close()

    def test_migration_is_idempotent(self, tmp_path):
        path = tmp_path / "fresh.db"
        with VulnerabilityDatabase(path):
            pass
        conn = sqlite3.connect(path)
        conn.row_factory = sqlite3.Row
        assert migrate_connection(conn) == SCHEMA_VERSION
        assert migrate_connection(conn) == SCHEMA_VERSION
        conn.close()

    def test_live_state_backfills_missing_digests(self):
        database = VulnerabilityDatabase()
        database.register_os_catalog()
        entry = make_entry()
        database.insert_entry(entry)
        with database.connection:
            database.connection.execute(
                "UPDATE vulnerability SET entry_digest = NULL"
            )
        state = database.live_state()
        assert state == {entry.cve_id: entry_digest(entry)}
        # The backfill is persisted.
        row = database.connection.execute(
            "SELECT entry_digest FROM vulnerability"
        ).fetchone()
        assert row["entry_digest"] == entry_digest(entry)


class TestLoadEntriesChunking:
    def test_large_cve_id_filters_are_chunked(self, monkeypatch):
        import repro.db.database as database_module

        monkeypatch.setattr(database_module, "_CVE_ID_CHUNK", 2)
        database = VulnerabilityDatabase()
        database.register_os_catalog()
        entries = [
            make_entry(f"CVE-2005-{index:04d}", month=(index % 12) + 1)
            for index in range(1, 8)
        ]
        for entry in entries:
            database.insert_entry(entry)
        wanted = [entry.cve_id for entry in entries]
        loaded = database.load_entries(cve_ids=wanted)
        # Chunked loads return the same entries in the same global order as
        # an unfiltered load.
        assert loaded == database.load_entries()

    def test_full_corpus_commit_exceeding_chunk_size(self, monkeypatch):
        # The first commit passes every CVE id through load_entries at once;
        # with a tiny chunk size this exercises the chunked path end to end.
        import repro.db.database as database_module

        monkeypatch.setattr(database_module, "_CVE_ID_CHUNK", 3)
        database = VulnerabilityDatabase()
        database.register_os_catalog()
        entries = [
            make_entry(f"CVE-2005-{index:04d}", month=(index % 12) + 1)
            for index in range(1, 11)
        ]
        for entry in entries:
            database.insert_entry(entry)
        record = SnapshotStore(database).commit(source="chunked")
        assert record.added == len(entries)
        store = SnapshotStore(database)
        assert list(store.dataset_at(record.snapshot_id)) == database.load_entries()
