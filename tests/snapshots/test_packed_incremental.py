"""Incremental packed-index maintenance against the snapshot ledger.

The contract: for any chain of deltas landing on a snapshot store,
:meth:`~repro.analysis.engine.PackedIndex.apply_diff` over the ledger diff
produces an index **bit-for-bit equal** to compiling the target snapshot
from scratch -- same entry tuple, same boolean incidence matrix, same
packed words, and therefore the same answer to every query.  The deltas
here are randomly generated ``evolve_corpus`` batches (modifications and
rejections) interleaved with brand-new entries, so additions, removals and
content changes -- including publication-date changes that reorder the
canonical ``(published, cve_id)`` entry order -- are all exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.engine import PackedIndex
from repro.core.constants import OS_NAMES
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus


@pytest.fixture()
def ledger(corpus):
    """(store, delta pipeline, base snapshot) over the first 300 entries."""
    pipeline = IngestPipeline(database=VulnerabilityDatabase())
    pipeline.ingest_raw(corpus.to_raw_feed_entries()[:300])
    store = SnapshotStore(pipeline.database)
    base = store.commit(source="full")
    return store, DeltaIngestPipeline(pipeline, store), base


def _assert_bit_for_bit(patched: PackedIndex, fresh: PackedIndex) -> None:
    assert patched.entries == fresh.entries
    assert np.array_equal(patched._bool_matrix(), fresh._bool_matrix())
    assert np.array_equal(patched._rows, fresh._rows)


@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_random_delta_batch_patches_bit_for_bit(ledger, corpus, seed):
    store, delta_pipeline, base = ledger
    known = {entry.cve_id for entry in store.entries_at(base.snapshot_id)}
    batch = evolve_corpus(corpus, fraction=0.03, seed=seed, rejections=2)
    delta_pipeline.apply_raw(
        [raw for raw in batch.entries if raw.cve_id in known], source="delta"
    )
    head = store.head()
    diff = store.diff(base.snapshot_id, head.snapshot_id)
    assert not diff.is_empty
    old = PackedIndex(store.entries_at(base.snapshot_id), OS_NAMES)
    _assert_bit_for_bit(
        old.apply_diff(diff), PackedIndex(store.entries_at(head.snapshot_id), OS_NAMES)
    )


def test_delta_chain_with_additions_patches_every_link(ledger, corpus):
    """A chain of deltas (adds + modifications + removals), patched link by
    link and also end to end across the whole chain."""
    store, delta_pipeline, base = ledger
    raw_entries = corpus.to_raw_feed_entries()
    known = {raw.cve_id for raw in raw_entries[:300]}
    previous = base
    snapshots = [base]
    for step, seed in enumerate((11, 12, 13)):
        batch = evolve_corpus(corpus, fraction=0.02, seed=seed, rejections=1)
        adds = raw_entries[300 + 10 * step : 300 + 10 * (step + 1)]
        delta_pipeline.apply_raw(
            [*adds, *(raw for raw in batch.entries if raw.cve_id in known)],
            source=f"delta-{step}",
        )
        head = store.head()
        assert head.snapshot_id != previous.snapshot_id
        diff = store.diff(previous.snapshot_id, head.snapshot_id)
        assert diff.counts()["added"] == 10
        old = PackedIndex(store.entries_at(previous.snapshot_id), OS_NAMES)
        fresh = PackedIndex(store.entries_at(head.snapshot_id), OS_NAMES)
        _assert_bit_for_bit(old.apply_diff(diff), fresh)
        previous = head
        snapshots.append(head)
    # One combined diff across the whole chain patches identically too.
    combined = store.diff(base.snapshot_id, previous.snapshot_id)
    first = PackedIndex(store.entries_at(base.snapshot_id), OS_NAMES)
    last = PackedIndex(store.entries_at(previous.snapshot_id), OS_NAMES)
    _assert_bit_for_bit(first.apply_diff(combined), last)


def test_patched_index_answers_queries_like_the_recompile(ledger, corpus):
    store, delta_pipeline, base = ledger
    known = {entry.cve_id for entry in store.entries_at(base.snapshot_id)}
    batch = evolve_corpus(corpus, fraction=0.05, seed=42, rejections=3)
    delta_pipeline.apply_raw(
        [raw for raw in batch.entries if raw.cve_id in known], source="delta"
    )
    head = store.head()
    diff = store.diff(base.snapshot_id, head.snapshot_id)
    patched = PackedIndex(store.entries_at(base.snapshot_id), OS_NAMES).apply_diff(diff)
    fresh = PackedIndex(store.entries_at(head.snapshot_id), OS_NAMES)
    assert patched.pair_matrix(OS_NAMES) == fresh.pair_matrix(OS_NAMES)
    assert patched.k_set_totals(OS_NAMES, 3) == fresh.k_set_totals(OS_NAMES, 3)
    assert patched.breadth_histogram() == fresh.breadth_histogram()
    for name in diff.affected_os_names():
        assert patched.count_for(name) == fresh.count_for(name)


def test_reverse_diff_patches_back_to_the_parent(ledger, corpus):
    """Diffs run in either direction; patching backwards restores the old."""
    store, delta_pipeline, base = ledger
    known = {entry.cve_id for entry in store.entries_at(base.snapshot_id)}
    batch = evolve_corpus(corpus, fraction=0.02, seed=9, rejections=1)
    delta_pipeline.apply_raw(
        [raw for raw in batch.entries if raw.cve_id in known], source="delta"
    )
    head = store.head()
    backwards = store.diff(head.snapshot_id, base.snapshot_id)
    new_index = PackedIndex(store.entries_at(head.snapshot_id), OS_NAMES)
    _assert_bit_for_bit(
        new_index.apply_diff(backwards),
        PackedIndex(store.entries_at(base.snapshot_id), OS_NAMES),
    )
