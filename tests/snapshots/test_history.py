"""Closure lifetimes mined from the snapshot ledger (``repro.snapshots.history``)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.db.ingest import IngestPipeline
from repro.itsys.scenarios import ScenarioSpec
from repro.nvd.feed_parser import RawFeedEntry
from repro.nvd.feed_writer import rejection_entry
from repro.snapshots import closure_lifetimes
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.store import SnapshotStore


def _raw(cve_id="CVE-2005-0001", summary="A kernel flaw in Debian allows "
         "remote attackers to crash the system."):
    return RawFeedEntry(
        cve_id=cve_id,
        published=dt.date(2005, 6, 15),
        summary=summary,
        cvss_vector="AV:N/AC:L/Au:N/C:P/I:P/A:P",
        cpe_uris=("cpe:/o:debian:debian_linux:4.0",),
    )


def _stamp(day: int) -> str:
    return f"2011-01-{day:02d}T00:00:00+00:00"


@pytest.fixture()
def delta():
    return DeltaIngestPipeline(IngestPipeline())


class TestClosureLifetimes:
    def test_empty_ledger_yields_no_lifetimes(self, delta):
        assert closure_lifetimes(delta.store) == ()

    def test_unmodified_entries_are_right_censored(self, delta):
        # One snapshot, entries never touched again: no observed closure.
        delta.apply_raw([_raw()], created=_stamp(1))
        assert closure_lifetimes(delta.store) == ()

    def test_modification_measures_days_between_snapshots(self, delta):
        delta.apply_raw([_raw()], created=_stamp(1))
        delta.apply_raw(
            [_raw(summary="A kernel flaw in Debian allows remote attackers "
                  "to crash the system. Revised advisory.")],
            created=_stamp(4),
        )
        assert closure_lifetimes(delta.store) == (3.0,)

    def test_tombstones_count_as_closures_too(self, delta):
        delta.apply_raw([_raw()], created=_stamp(1))
        delta.apply_raw(
            [rejection_entry("CVE-2005-0001", _raw().published)],
            created=_stamp(6),
        )
        assert closure_lifetimes(delta.store) == (5.0,)

    def test_lifetimes_come_back_sorted_across_cves(self, delta):
        first = _raw("CVE-2005-0001")
        second = _raw("CVE-2005-0002", summary="A remote kernel flaw in "
                      "Debian allows attackers to gain elevated privileges.")
        delta.apply_raw([first, second], created=_stamp(1))
        # Second closes after 1 day, first after 7: report must be sorted,
        # not in ledger order.
        delta.apply_raw(
            [RawFeedEntry(
                cve_id=second.cve_id, published=second.published,
                summary=second.summary + " Fix released.",
                cvss_vector=second.cvss_vector, cpe_uris=second.cpe_uris,
            )],
            created=_stamp(2),
        )
        delta.apply_raw(
            [RawFeedEntry(
                cve_id=first.cve_id, published=first.published,
                summary=first.summary + " Fix released.",
                cvss_vector=first.cvss_vector, cpe_uris=first.cpe_uris,
            )],
            created=_stamp(8),
        )
        assert closure_lifetimes(delta.store) == (1.0, 7.0)

    def test_each_new_version_rearms_the_clock(self, delta):
        entry = _raw()
        delta.apply_raw([entry], created=_stamp(1))
        for day, note in ((3, " First advisory."), (7, " Second advisory.")):
            delta.apply_raw(
                [RawFeedEntry(
                    cve_id=entry.cve_id, published=entry.published,
                    summary=entry.summary + note,
                    cvss_vector=entry.cvss_vector, cpe_uris=entry.cpe_uris,
                )],
                created=_stamp(day),
            )
        # Days 1->3 and 3->7, not 1->7.
        assert closure_lifetimes(delta.store) == (2.0, 4.0)

    def test_zero_length_lifetimes_are_dropped(self, delta):
        delta.apply_raw([_raw()], created=_stamp(1))
        delta.apply_raw(
            [_raw(summary="A kernel flaw in Debian allows remote attackers "
                  "to crash the system. Same-day fix.")],
            created=_stamp(1),
        )
        assert closure_lifetimes(delta.store) == ()

    def test_lifetimes_feed_an_empirical_patch_race_spec(self, delta):
        """The mined sample plugs straight into ScenarioSpec."""
        delta.apply_raw([_raw()], created=_stamp(1))
        delta.apply_raw(
            [_raw(summary="A kernel flaw in Debian allows remote attackers "
                  "to crash the system. Patched.")],
            created=_stamp(3),
        )
        lifetimes = closure_lifetimes(delta.store)
        spec = ScenarioSpec(
            family="patch-race", closure="empirical", lifetimes=lifetimes
        )
        assert spec.lifetimes == lifetimes == (2.0,)
