"""Snapshot ledger: commits, chaining, time travel, diffs, checkout."""

import pytest

from repro.core.exceptions import DatabaseError
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.digests import dataset_digest_of
from repro.snapshots.export import entry_to_raw, write_snapshot_feeds
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus
from tests.conftest import make_entry


@pytest.fixture()
def store():
    database = VulnerabilityDatabase()
    database.register_os_catalog()
    return SnapshotStore(database)


def _fill(store, *entries):
    for entry in entries:
        store.database.upsert_entry(entry)


class TestCommit:
    def test_first_commit_records_everything_as_added(self, store):
        _fill(store, make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002"))
        record = store.commit(source="seed")
        assert record.snapshot_id == 1
        assert record.parent_digest is None
        assert (record.entry_count, record.added, record.modified, record.removed) \
            == (2, 2, 0, 0)
        assert record.source == "seed"

    def test_commit_created_timestamp_is_injectable(self, store):
        # The ledger timestamp is the store's only wall-clock seam; pinning
        # it makes two commits of the same state byte-identical ledgers.
        _fill(store, make_entry("CVE-2005-0001"))
        record = store.commit(source="seed", created="2010-09-30T12:00:00+00:00")
        assert record.created == "2010-09-30T12:00:00+00:00"

    def test_delta_pipeline_threads_created_through(self):
        from repro.nvd.feed_parser import RawFeedEntry
        import datetime as dt

        pipeline = DeltaIngestPipeline(IngestPipeline())
        raw = RawFeedEntry(
            cve_id="CVE-2006-0001",
            published=dt.date(2006, 1, 2),
            summary="A flaw in the kernel allows remote attackers in.",
            cvss_vector="AV:N/AC:L/Au:N/C:P/I:P/A:P",
            cpe_uris=("cpe:/o:debian:debian_linux:3.1",),
        )
        report = pipeline.apply_raw([raw], created="2010-09-30T12:00:00+00:00")
        assert report.snapshot is not None
        assert report.snapshot.created == "2010-09-30T12:00:00+00:00"

    def test_commit_digest_is_the_dataset_content_address(self, store):
        entries = [make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002")]
        _fill(store, *entries)
        assert store.commit().digest == dataset_digest_of(entries)

    def test_unchanged_commit_returns_head(self, store):
        _fill(store, make_entry())
        first = store.commit()
        again = store.commit(source="different label")
        assert again == first
        assert len(store.list()) == 1

    def test_chained_commits_record_parent_and_deltas(self, store):
        _fill(store, make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002"))
        first = store.commit()
        _fill(store, make_entry("CVE-2005-0002", summary="A revised flaw."),
              make_entry("CVE-2005-0003"))
        store.database.tombstone_entry("CVE-2005-0001")
        second = store.commit()
        assert second.parent_digest == first.digest
        assert (second.added, second.modified, second.removed) == (1, 1, 1)
        assert second.entry_count == 2

    def test_head_and_get_and_by_digest(self, store):
        _fill(store, make_entry())
        record = store.commit()
        assert store.head() == record
        assert store.get(record.snapshot_id) == record
        assert store.by_digest(record.digest[:8]) == record
        with pytest.raises(DatabaseError):
            store.get(99)
        with pytest.raises(DatabaseError):
            store.by_digest("feedface")

    def test_empty_store_has_no_head(self, store):
        assert store.head() is None
        assert store.list() == []


class TestTimeTravel:
    def test_dataset_at_reproduces_each_state(self, store):
        a, b = make_entry("CVE-2005-0001"), make_entry("CVE-2005-0002")
        _fill(store, a, b)
        first = store.commit()
        revised = make_entry("CVE-2005-0002", summary="A revised flaw.")
        _fill(store, revised)
        store.database.tombstone_entry("CVE-2005-0001")
        second = store.commit()

        at_first = store.dataset_at(first.snapshot_id)
        assert sorted(e.cve_id for e in at_first) == ["CVE-2005-0001", "CVE-2005-0002"]
        assert at_first.digest() == first.digest
        assert at_first.snapshot == first

        at_second = store.dataset_at(second.snapshot_id)
        assert [e.cve_id for e in at_second] == ["CVE-2005-0002"]
        assert at_second.entries[0].summary == "A revised flaw."
        assert at_second.digest() == second.digest

    def test_dataset_at_matches_from_scratch_ingest(self, store):
        entries = [
            make_entry("CVE-2005-0001", oses=("Debian", "RedHat")),
            make_entry("CVE-2006-0002", year=2006, oses=("Solaris",)),
            make_entry("CVE-2004-0003", year=2004, oses=("OpenBSD",)),
        ]
        _fill(store, *entries)
        record = store.commit()

        fresh = VulnerabilityDatabase()
        fresh.register_os_catalog()
        for entry in entries:
            fresh.insert_entry(entry)
        assert list(store.dataset_at(record.snapshot_id)) == fresh.load_entries()

    def test_dataset_at_unknown_snapshot_raises(self, store):
        with pytest.raises(DatabaseError):
            store.dataset_at(1)


class TestDiff:
    def test_diff_classifies_changes(self, store):
        _fill(store, make_entry("CVE-2005-0001", oses=("Debian",)),
              make_entry("CVE-2005-0002", oses=("Solaris",)))
        first = store.commit()
        _fill(store, make_entry("CVE-2005-0002", oses=("Solaris", "RedHat"),
                                summary="A revised flaw."),
              make_entry("CVE-2005-0003", oses=("OpenBSD", "NetBSD")))
        store.database.tombstone_entry("CVE-2005-0001")
        second = store.commit()

        diff = store.diff(first.snapshot_id, second.snapshot_id)
        assert diff.added == ("CVE-2005-0003",)
        assert diff.modified == ("CVE-2005-0002",)
        assert diff.removed == ("CVE-2005-0001",)
        assert diff.affected_os_names() == frozenset(
            {"Debian", "Solaris", "RedHat", "OpenBSD", "NetBSD"}
        )
        assert ("NetBSD", "OpenBSD") in diff.affected_pairs()
        # Pairs must come from within one changed entry, not across entries.
        assert ("Debian", "Solaris") not in diff.affected_pairs()
        assert diff.touches_group(("Debian", "Ubuntu")) is True
        assert diff.touches_group(("Ubuntu", "FreeBSD")) is False

    def test_empty_diff(self, store):
        _fill(store, make_entry())
        record = store.commit()
        diff = store.diff(record.snapshot_id, record.snapshot_id)
        assert diff.is_empty
        assert diff.affected_os_names() == frozenset()
        assert not diff.touches_group(("Debian",))

    def test_diff_summary_mentions_affected_oses(self, store):
        _fill(store, make_entry("CVE-2005-0001", oses=("Debian",)))
        first = store.commit()
        _fill(store, make_entry("CVE-2005-0001", oses=("Debian",),
                                summary="A revised flaw."))
        second = store.commit()
        summary = store.diff(first.snapshot_id, second.snapshot_id).summary()
        assert "Debian" in summary
        assert "~1 modified" in summary


class TestCheckout:
    def test_checkout_reingest_reproduces_digest(self, corpus, tmp_path):
        pipeline = IngestPipeline()
        pipeline.ingest_raw(corpus.to_raw_feed_entries()[:200])
        store = SnapshotStore(pipeline.database)
        record = store.commit(source="seed")

        feed_dir = tmp_path / "checkout"
        paths = write_snapshot_feeds(store, record.snapshot_id, feed_dir)
        assert paths

        fresh = IngestPipeline()
        fresh.ingest_xml_feeds(paths)
        assert dataset_digest_of(fresh.database.load_entries()) == record.digest

    def test_entry_to_raw_synthesises_catalogue_cpes(self):
        entry = make_entry(oses=("Debian",), versions={"Debian": ("4.0",)})
        raw = entry_to_raw(entry)
        assert raw.cpe_uris and "debian" in raw.cpe_uris[0]
        assert raw.cve_id == entry.cve_id


class TestDeltaRoundTrip:
    def test_delta_chain_equals_from_scratch(self, corpus, tmp_path):
        raw_entries = corpus.to_raw_feed_entries()[:300]
        pipeline = IngestPipeline()
        pipeline.ingest_raw(raw_entries)
        store = SnapshotStore(pipeline.database)
        store.commit(source="full")

        delta = evolve_corpus(corpus, fraction=0.02, seed=5, rejections=3)
        applied = DeltaIngestPipeline(pipeline, store).apply_raw(
            [raw for raw in delta.entries
             if raw.cve_id in {r.cve_id for r in raw_entries}],
            source="delta",
        )
        head = store.head()
        assert applied.snapshot == head

        # From scratch: ingest the final state directly.
        fresh = IngestPipeline()
        rejected = set(delta.rejected_ids)
        modified = {raw.cve_id: raw for raw in delta.modified}
        final = [
            modified.get(raw.cve_id, raw)
            for raw in raw_entries
            if raw.cve_id not in rejected
        ]
        fresh.ingest_raw(final)
        fresh_store = SnapshotStore(fresh.database)
        scratch = fresh_store.commit(source="scratch")
        assert scratch.digest == head.digest
        assert list(fresh_store.dataset_at(scratch.snapshot_id)) == list(
            store.dataset_at(head.snapshot_id)
        )


class TestDigestSelectorSafety:
    def test_wildcards_do_not_match(self, store):
        _fill(store, make_entry())
        store.commit()
        for selector in ("%", "____", "", "%a%"):
            with pytest.raises(DatabaseError):
                store.by_digest(selector)

    def test_exact_prefix_still_matches(self, store):
        _fill(store, make_entry())
        record = store.commit()
        assert store.by_digest(record.digest[:4]) == record
