"""Docs-system guards: link checker, API-reference drift, examples matrix.

These tests keep the documentation machinery honest from inside the tier-1
suite, so doc drift fails fast locally rather than only in the dedicated CI
jobs.
"""

import re
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
TOOLS = ROOT / "tools"

sys.path.insert(0, str(TOOLS))

import check_docs_links  # noqa: E402
import gen_api_docs  # noqa: E402


class TestDocsLinks:
    def test_all_docs_pass_every_audit(self, capsys):
        assert check_docs_links.main([]) == 0

    def test_broken_anchor_is_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Title\n\n[x](#no-such-section)\n", encoding="utf-8")
        assert check_docs_links.main([str(page)]) == 1

    def test_valid_anchor_passes(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "# Title\n\n## My `fancy` — section\n\n[x](#my-fancy--section)\n",
            encoding="utf-8",
        )
        assert check_docs_links.main([str(page)]) == 0

    def test_stale_code_reference_is_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see `src/repro/cli.py:999999`\n", encoding="utf-8")
        assert check_docs_links.main([str(page)]) == 1

    def test_valid_code_reference_passes(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see `src/repro/cli.py:1`\n", encoding="utf-8")
        assert check_docs_links.main([str(page)]) == 0

    def test_cli_doc_flag_audit_catches_stale_flag(self, tmp_path, monkeypatch):
        fake_cli = tmp_path / "cli.md"
        fake_cli.write_text("`tables` uses `--no-such-flag`\n", encoding="utf-8")
        failures = check_docs_links.check_cli_doc(fake_cli)
        assert any("--no-such-flag" in failure for failure in failures)


class TestApiReference:
    def test_generated_pages_match_committed_docs(self):
        problems = gen_api_docs.check_pages(gen_api_docs.build_pages())
        assert problems == [], (
            "docs/api drifted; regenerate with "
            "`PYTHONPATH=src python tools/gen_api_docs.py`"
        )

    def test_generation_is_deterministic(self):
        assert gen_api_docs.build_pages() == gen_api_docs.build_pages()

    def test_every_subpackage_has_a_page(self):
        pages = set(gen_api_docs.build_pages())
        for package_dir in sorted((ROOT / "src" / "repro").iterdir()):
            if package_dir.is_dir() and (package_dir / "__init__.py").exists():
                assert f"repro.{package_dir.name}.md" in pages


class TestExamplesCoverage:
    def examples(self):
        return sorted(path.name for path in (ROOT / "examples").glob("*.py"))

    def test_ci_matrix_runs_every_example(self):
        workflow = (ROOT / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )
        matrix = re.findall(r"^\s+- (\w+\.py)\s*$", workflow, re.MULTILINE)
        assert sorted(matrix) == self.examples()

    def test_readme_links_every_example(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for example in self.examples():
            assert f"examples/{example}" in readme, (
                f"README.md does not cross-link examples/{example}"
            )
