"""Partial-run merging: order independence, contiguity, engine equivalence.

The merge-order regression matters because parallel workers complete chunks
in nondeterministic order: ``merge_run_ranges`` must therefore sort partials
by run-range start before concatenating, or per-run sequences (and with them
``mean_compromised`` / ``mean_time_to_violation``) would depend on worker
scheduling.
"""

import random

import pytest

from repro.core.exceptions import SimulationError
from repro.itsys.simulation import (
    CompromiseSimulation,
    RunRangeTallies,
    merge_run_ranges,
    result_from_tallies,
)

SET1 = ("Windows2003", "Solaris", "Debian", "OpenBSD")


@pytest.fixture(scope="module")
def simulation(request):
    corpus = request.getfixturevalue("corpus")
    return CompromiseSimulation(corpus.valid_entries, seed=123)


class TestRunRangeTallies:
    def test_rejects_inverted_ranges(self):
        with pytest.raises(SimulationError):
            RunRangeTallies(5, 5, 0, 0, (), ())

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            RunRangeTallies(-1, 2, 0, 0, (0, 0, 0), ())

    def test_rejects_count_length_mismatch(self):
        with pytest.raises(SimulationError):
            RunRangeTallies(0, 3, 0, 0, (1, 1), ())

    def test_rejects_violation_time_mismatch(self):
        with pytest.raises(SimulationError):
            RunRangeTallies(0, 2, 1, 0, (1, 1), ())


class TestMergeOrderIndependence:
    def test_shuffled_partials_merge_identically(self, simulation):
        """Regression: merging must not depend on worker completion order."""
        boundaries = [0, 7, 11, 24, 30, 40]
        partials = [
            simulation.run_range(SET1, start, stop, horizon=3.0)
            for start, stop in zip(boundaries, boundaries[1:])
        ]
        reference = merge_run_ranges(partials)
        rng = random.Random(5)
        for _ in range(10):
            shuffled = list(partials)
            rng.shuffle(shuffled)
            assert merge_run_ranges(shuffled) == reference

    def test_merge_is_associative_over_groupings(self, simulation):
        partials = [
            simulation.run_range(SET1, start, stop, horizon=3.0)
            for start, stop in ((0, 5), (5, 12), (12, 20))
        ]
        left_first = merge_run_ranges(
            [merge_run_ranges(partials[:2]), partials[2]]
        )
        right_first = merge_run_ranges(
            [partials[0], merge_run_ranges(partials[1:])]
        )
        assert left_first == right_first == merge_run_ranges(partials)

    def test_gap_rejected(self, simulation):
        first = simulation.run_range(SET1, 0, 5, horizon=3.0)
        late = simulation.run_range(SET1, 6, 10, horizon=3.0)
        with pytest.raises(SimulationError, match="not contiguous"):
            merge_run_ranges([first, late])

    def test_overlap_rejected(self, simulation):
        first = simulation.run_range(SET1, 0, 5, horizon=3.0)
        overlapping = simulation.run_range(SET1, 4, 10, horizon=3.0)
        with pytest.raises(SimulationError, match="not contiguous"):
            merge_run_ranges([first, overlapping])

    def test_empty_merge_rejected(self):
        with pytest.raises(SimulationError):
            merge_run_ranges([])


class TestRunRangeEquivalence:
    @pytest.mark.parametrize("engine", ["bitset", "naive"])
    def test_chunked_equals_single_campaign(self, corpus, engine):
        """Any chunking merges to the exact single-process result."""
        simulation = CompromiseSimulation(
            corpus.valid_entries, seed=99, engine=engine
        )
        campaign = dict(horizon=3.0, recovery_interval=1.5)
        whole = simulation.run_configuration("set1", SET1, runs=30, **campaign)
        for boundaries in ([0, 30], [0, 1, 30], [0, 10, 20, 30], list(range(31))):
            partials = [
                simulation.run_range(SET1, start, stop, **campaign)
                for start, stop in zip(boundaries, boundaries[1:])
            ]
            merged = result_from_tallies("set1", SET1, merge_run_ranges(partials))
            assert merged == whole

    def test_result_requires_complete_tallies(self, simulation):
        partial = simulation.run_range(SET1, 5, 10, horizon=3.0)
        with pytest.raises(SimulationError, match="run 0"):
            result_from_tallies("set1", SET1, partial)

    def test_run_range_validates_bounds(self, simulation):
        with pytest.raises(SimulationError):
            simulation.run_range(SET1, 3, 3)
        with pytest.raises(SimulationError):
            simulation.run_range(SET1, -1, 4)
