"""Scenario sweeps through the runner: parallel, cached, CSV-visible.

The scenario axis must inherit every runner guarantee the classic axes
enjoy: ``workers=1`` and ``workers=N`` merge to identical results per seed,
a warm cache serves byte-identical JSON without simulating, and scenario
cells never collide with classic cells in the cache or the report.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.itsys.scenarios import ScenarioSpec
from repro.itsys.simulation import CompromiseSimulation
from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner, ResultCache
from tests.runner.test_runner_parallel import corpora

#: The classic adversary plus one representative of every scenario family.
SCENARIO_AXIS = (
    None,
    ScenarioSpec(family="campaign", adversaries=3),
    ScenarioSpec(
        family="patch-race", closure="empirical", lifetimes=(0.5, 1.5, 3.0)
    ),
    ScenarioSpec(family="epidemic", spread=0.4),
    ScenarioSpec(family="adaptive", explore=0.1),
)


@st.composite
def scenario_grids(draw):
    scenarios = tuple(
        draw(
            st.lists(
                st.sampled_from(SCENARIO_AXIS),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
    )
    return ExperimentGrid(
        configurations={
            "diverse": ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            "homogeneous": ("Debian",) * 4,
        },
        quorum_models=("3f+1",),
        arrivals=(ArrivalSpec("poisson"),),
        scenarios=scenarios,
        runs=draw(st.integers(min_value=5, max_value=10)),
        horizon=3.0,
    )


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=corpora(), grid=scenario_grids(), seed=st.integers(0, 10_000))
def test_scenario_sweeps_merge_identically_across_worker_counts(
    entries, grid, seed
):
    serial = GridRunner(entries, seed=seed, workers=1).run(grid)
    pooled = GridRunner(entries, seed=seed, workers=4).run(grid)
    assert serial.results() == pooled.results()
    assert [c.cell for c in serial.cells] == [c.cell for c in pooled.cells]
    assert json.dumps(serial.to_json_payload(), sort_keys=True) == json.dumps(
        pooled.to_json_payload(), sort_keys=True
    )


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=corpora(), grid=scenario_grids(), seed=st.integers(0, 10_000))
def test_scenario_cache_hits_are_byte_identical(
    entries, grid, seed, tmp_path_factory
):
    cache_dir = tmp_path_factory.mktemp("scenario-cache")
    cold = GridRunner(
        entries, seed=seed, workers=1, cache=ResultCache(cache_dir)
    ).run(grid)
    warm = GridRunner(
        entries, seed=seed, workers=1, cache=ResultCache(cache_dir)
    ).run(grid)
    assert warm.simulated_cells == 0
    assert warm.results() == cold.results()
    assert json.dumps(warm.to_json_payload(), sort_keys=True) == json.dumps(
        cold.to_json_payload(), sort_keys=True
    )


class TestScenarioCacheIsolation:
    def test_scenario_cells_never_reuse_classic_entries(self, corpus, tmp_path):
        """A classic warm cache must not answer a scenario sweep, or back."""
        entries = corpus.valid_entries
        configurations = {
            "Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")
        }
        classic = ExperimentGrid(
            configurations=configurations, runs=6, horizon=2.0
        )
        scenario = ExperimentGrid(
            configurations=configurations,
            scenarios=(ScenarioSpec(family="epidemic", spread=0.4),),
            runs=6,
            horizon=2.0,
        )
        GridRunner(
            entries, seed=5, workers=1, cache=ResultCache(tmp_path)
        ).run(classic)
        report = GridRunner(
            entries, seed=5, workers=1, cache=ResultCache(tmp_path)
        ).run(scenario)
        assert report.cached_cells == 0
        assert report.simulated_cells == 1
        rerun = GridRunner(
            entries, seed=5, workers=1, cache=ResultCache(tmp_path)
        ).run(classic)
        assert rerun.simulated_cells == 0  # classic entries stayed warm

    def test_classic_cache_keys_unchanged_by_the_scenario_axis(
        self, corpus, tmp_path, monkeypatch
    ):
        """A pre-scenario cache directory still serves a scenarios=(None,) grid."""
        entries = corpus.valid_entries
        grid = ExperimentGrid(
            configurations={"Set1": ("Debian", "OpenBSD", "Solaris", "RedHat")},
            runs=6,
            horizon=2.0,
        )
        GridRunner(
            entries, seed=9, workers=1, cache=ResultCache(tmp_path)
        ).run(grid)

        def _forbidden(*args, **kwargs):
            raise AssertionError("simulation invoked on a warm cache")

        monkeypatch.setattr(CompromiseSimulation, "run_range", _forbidden)
        explicit = ExperimentGrid(
            configurations={"Set1": ("Debian", "OpenBSD", "Solaris", "RedHat")},
            scenarios=(None,),
            runs=6,
            horizon=2.0,
        )
        warm = GridRunner(
            entries, seed=9, workers=1, cache=ResultCache(tmp_path)
        ).run(explicit)
        assert warm.simulated_cells == 0


class TestScenarioReportShape:
    def test_csv_scenario_column(self, corpus):
        spec = ScenarioSpec(family="campaign", adversaries=3)
        grid = ExperimentGrid(
            configurations={"Set1": ("Debian", "OpenBSD", "Solaris", "RedHat")},
            scenarios=(None, spec),
            runs=5,
            horizon=2.0,
        )
        report = GridRunner(corpus.valid_entries, seed=5, workers=1).run(grid)
        rows = report.csv_rows()
        assert len(rows) == 2
        column = report.CSV_HEADERS.index("scenario")
        assert all(len(row) == len(report.CSV_HEADERS) for row in rows)
        assert sorted(row[column] for row in rows) == ["", "campaign(n=3)"]

    def test_json_payload_carries_scenario_params(self, corpus):
        spec = ScenarioSpec(family="adaptive", explore=0.1)
        grid = ExperimentGrid(
            configurations={"Set1": ("Debian", "OpenBSD", "Solaris", "RedHat")},
            scenarios=(spec,),
            runs=5,
            horizon=2.0,
        )
        report = GridRunner(corpus.valid_entries, seed=5, workers=1).run(grid)
        (cell,) = report.to_json_payload()["cells"]
        assert cell["params"]["scenario"] == spec.params()
        assert cell["cell_id"].endswith("|adaptive(eps=0.1)")
