"""Packed-engine sweeps survive the process pool bit for bit.

``repro sweep --engine packed --workers N`` ships the corpus to worker
processes and rebuilds a :class:`~repro.analysis.engine.PackedIndex` on the
far side, so these tests pin the two contracts that make that safe:

* ``workers=1`` and ``workers=4`` merge to identical results on the packed
  engine, exactly as they do for bitset;
* the packed engine lands in the cache key, so packed and bitset sweeps
  sharing a cache directory never serve each other's cells -- while the
  simulation results themselves stay engine-independent.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runner import ExperimentGrid, GridRunner, ResultCache

from tests.runner.test_runner_parallel import corpora, grids


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=corpora(), grid=grids(), seed=st.integers(0, 10_000))
def test_packed_workers_one_and_four_merge_identically(entries, grid, seed):
    serial = GridRunner(entries, seed=seed, engine="packed", workers=1).run(grid)
    pooled = GridRunner(entries, seed=seed, engine="packed", workers=4).run(grid)
    assert serial.results() == pooled.results()
    assert [c.cell for c in serial.cells] == [c.cell for c in pooled.cells]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=corpora(), grid=grids(), seed=st.integers(0, 10_000))
def test_packed_results_match_bitset_results(entries, grid, seed):
    packed = GridRunner(entries, seed=seed, engine="packed", workers=1).run(grid)
    bitset = GridRunner(entries, seed=seed, engine="bitset", workers=1).run(grid)
    assert packed.results() == bitset.results()


def test_packed_sweep_through_the_pool_matches_serial_json(corpus, tmp_path):
    """The full paper corpus through a real 4-process pool, byte for byte."""
    grid = ExperimentGrid(
        configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
        recovery_intervals=(None, 2.0),
        runs=8,
        horizon=3.0,
    )
    entries = corpus.valid_entries
    serial = GridRunner(entries, seed=5, engine="packed", workers=1).run(grid)
    pooled = GridRunner(entries, seed=5, engine="packed", workers=4).run(grid)
    assert json.dumps(serial.to_json_payload(), sort_keys=True) == json.dumps(
        pooled.to_json_payload(), sort_keys=True
    )


def test_packed_and_bitset_sweeps_do_not_share_cache_entries(corpus, tmp_path):
    grid = ExperimentGrid(
        configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
        runs=5,
        horizon=2.0,
    )
    entries = corpus.valid_entries
    bitset = GridRunner(
        entries, seed=5, workers=1, cache=ResultCache(tmp_path)
    ).run(grid)
    packed = GridRunner(
        entries, seed=5, engine="packed", workers=1, cache=ResultCache(tmp_path)
    ).run(grid)
    assert packed.cached_cells == 0  # engine is part of the cache key
    assert packed.results() == bitset.results()  # ...but the physics agree
