"""Content-addressed result cache: keys, round trips, corruption handling."""

import json

import pytest

from repro.itsys.simulation import CompromiseSimulation
from repro.runner import (
    ArrivalSpec,
    ExperimentGrid,
    ResultCache,
    cell_key,
    corpus_digest,
    result_from_json,
    result_to_json,
)

SET1 = ("Windows2003", "Solaris", "Debian", "OpenBSD")


def _cell(**overrides):
    parameters = dict(
        configurations={"Set1": SET1},
        runs=overrides.pop("runs", 12),
    )
    grid = ExperimentGrid(**parameters, **overrides)
    return grid.expand()[0]


@pytest.fixture(scope="module")
def result(request):
    corpus = request.getfixturevalue("corpus")
    simulation = CompromiseSimulation(corpus.valid_entries, seed=3)
    return simulation.run_configuration("Set1", SET1, runs=12, horizon=3.0)


class TestCorpusDigest:
    def test_digest_is_stable(self, corpus):
        assert corpus_digest(corpus.valid_entries) == corpus_digest(corpus.valid_entries)

    def test_digest_depends_on_content(self, corpus, entry_factory):
        entries = corpus.valid_entries
        extended = entries + [entry_factory(cve_id="CVE-2099-0001")]
        assert corpus_digest(entries) != corpus_digest(extended)

    def test_digest_depends_on_order(self, corpus):
        """Pool order drives ``rng.choice``, so order must change the digest."""
        entries = corpus.valid_entries
        assert corpus_digest(entries) != corpus_digest(list(reversed(entries)))


class TestCellKey:
    def test_same_inputs_same_key(self, corpus):
        digest = corpus_digest(corpus.valid_entries)
        assert cell_key(digest, _cell(), 7, "bitset") == cell_key(
            digest, _cell(), 7, "bitset"
        )

    @pytest.mark.parametrize("variation", [
        dict(runs=13),
        dict(horizon=9.0),
        dict(quorum_models=("2f+1",)),
        dict(recovery_intervals=(2.0,)),
        dict(arrivals=(ArrivalSpec("aging", 1.8),)),
        dict(adversaries=("smart",)),
    ])
    def test_any_parameter_changes_the_key(self, corpus, variation):
        digest = corpus_digest(corpus.valid_entries)
        base = cell_key(digest, _cell(), 7, "bitset")
        assert cell_key(digest, _cell(**variation), 7, "bitset") != base

    def test_seed_and_engine_change_the_key(self, corpus):
        digest = corpus_digest(corpus.valid_entries)
        base = cell_key(digest, _cell(), 7, "bitset")
        assert cell_key(digest, _cell(), 8, "bitset") != base
        assert cell_key(digest, _cell(), 7, "naive") != base

    def test_filter_configuration_and_catalogued_change_the_key(self, corpus):
        """The attack-surface filter selects the pool, so it must be keyed."""
        digest = corpus_digest(corpus.valid_entries)
        base = cell_key(digest, _cell(), 7, "bitset")
        assert cell_key(
            digest, _cell(), 7, "bitset", configuration="Fat Server"
        ) != base
        assert cell_key(digest, _cell(), 7, "bitset", catalogued=False) != base


class TestResultJson:
    def test_round_trip_is_exact(self, result):
        assert result_from_json(result_to_json(result)) == result

    def test_round_trip_through_serialised_text(self, result):
        text = json.dumps(result_to_json(result))
        assert result_from_json(json.loads(text)) == result


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        path = cache.put("somekey", _cell(), result)
        assert path.exists()
        assert cache.get("somekey") == result
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)

    def test_hit_is_byte_identical_on_rewrite(self, tmp_path, result):
        """Re-putting the same result must reproduce the same file bytes."""
        cache = ResultCache(tmp_path)
        path = cache.put("k", _cell(), result)
        first = path.read_bytes()
        cache.put("k", _cell(), result)
        assert path.read_bytes() == first

    def test_corrupt_file_counts_as_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("k", _cell(), result)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get("k") is None

    @pytest.mark.parametrize("broken", [
        "[]",                      # JSON but not an object
        '"just a string"',
        '{"schema": 1, "result": []}',          # result not an object
        '{"schema": 1, "result": {"name": "x"}}',  # result missing fields
        '{"schema": 1, "result": {"name": "x", "os_names": 3, "runs": 1, '
        '"safety_violation_probability": 0, "mean_compromised": 0, '
        '"mean_time_to_violation": null, "liveness_loss_probability": 0, '
        '"safety_violation_ci": [0, 1], "liveness_loss_ci": [0, 1]}}',
    ])
    def test_structurally_broken_payloads_count_as_miss(
        self, tmp_path, result, broken
    ):
        cache = ResultCache(tmp_path)
        path = cache.put("k", _cell(), result)
        path.write_text(broken, encoding="utf-8")
        assert cache.get("k") is None

    def test_schema_mismatch_counts_as_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("k", _cell(), result)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get("k") is None

    def test_cache_dir_created_lazily(self, tmp_path, result):
        target = tmp_path / "nested" / "cache"
        cache = ResultCache(target)
        assert not target.exists()
        cache.put("k", _cell(), result)
        assert target.is_dir()
