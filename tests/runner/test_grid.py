"""Unit tests for declarative experiment grids."""

import pytest

from repro.core.exceptions import SimulationError
from repro.itsys.scenarios import ScenarioSpec
from repro.runner import ADVERSARY_MODES, ArrivalSpec, ExperimentGrid, GridCell


def _grid(**overrides):
    parameters = dict(
        configurations={"A": ("Debian",) * 4, "B": ("Debian", "OpenBSD", "Solaris", "RedHat")},
        quorum_models=("3f+1", "2f+1"),
        recovery_intervals=(None, 2.0),
        arrivals=(ArrivalSpec("poisson"), ArrivalSpec("aging", 1.8)),
        adversaries=("standard",),
        runs=10,
    )
    parameters.update(overrides)
    return ExperimentGrid(**parameters)


class TestArrivalSpec:
    def test_poisson_shape_is_normalised(self):
        assert ArrivalSpec("poisson", 7.0) == ArrivalSpec("poisson", 1.0)

    def test_unknown_process_rejected(self):
        with pytest.raises(SimulationError):
            ArrivalSpec("bursty")

    def test_non_positive_shape_rejected(self):
        with pytest.raises(SimulationError):
            ArrivalSpec("aging", 0.0)

    def test_labels(self):
        assert ArrivalSpec("poisson").label == "poisson"
        assert ArrivalSpec("aging", 1.8).label == "aging(k=1.8)"


class TestExpansion:
    def test_cell_count_is_the_axis_product(self):
        grid = _grid()
        assert len(grid) == 2 * 2 * 2 * 2
        assert len(grid.expand()) == len(grid)

    def test_cell_ids_are_unique_and_deterministic(self):
        cells = _grid().expand()
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)
        assert ids == [cell.cell_id for cell in _grid().expand()]

    def test_expansion_order_is_axis_major(self):
        cells = _grid().expand()
        # Configurations vary slowest, the last axis fastest.
        assert cells[0].configuration == "A"
        assert cells[len(cells) // 2].configuration == "B"
        assert cells[0].arrival.process == "poisson"
        assert cells[1].arrival.process == "aging"

    def test_cells_carry_campaign_scalars(self):
        cell = _grid(runs=42, exploit_rate=2.5, horizon=9.0).expand()[0]
        assert cell.runs == 42
        assert cell.exploit_rate == 2.5
        assert cell.horizon == 9.0
        kwargs = cell.campaign_kwargs()
        assert kwargs["exploit_rate"] == 2.5
        assert kwargs["horizon"] == 9.0
        assert "runs" not in kwargs  # run counts travel as run ranges

    def test_adversary_modes_map_to_simulator_switches(self):
        grid = _grid(adversaries=("standard", "smart", "untargeted"))
        by_adversary = {cell.adversary: cell for cell in grid.expand()}
        assert by_adversary["standard"].targeted and not by_adversary["standard"].smart
        assert by_adversary["smart"].targeted and by_adversary["smart"].smart
        assert not by_adversary["untargeted"].targeted
        assert set(by_adversary) == set(ADVERSARY_MODES)

    def test_params_round_trip_through_cell_id(self):
        for cell in _grid().expand():
            params = cell.params()
            assert params["configuration"] == cell.configuration
            assert tuple(params["os_names"]) == cell.os_names
            assert cell.cell_id.startswith(cell.configuration)


class TestScenarioAxis:
    def test_scenario_axis_multiplies_the_cell_count(self):
        grid = _grid(scenarios=(None, ScenarioSpec(family="epidemic")))
        assert len(grid) == 2 * 2 * 2 * 2 * 2
        assert len(grid.expand()) == len(grid)

    def test_default_axis_is_the_classic_adversary_only(self):
        grid = _grid()
        assert grid.scenarios == (None,)
        assert all(cell.scenario is None for cell in grid.expand())

    def test_scenario_cells_carry_spec_and_labelled_cell_id(self):
        spec = ScenarioSpec(family="campaign", adversaries=3)
        grid = _grid(scenarios=(None, spec))
        classic = [c for c in grid.expand() if c.scenario is None]
        scenario = [c for c in grid.expand() if c.scenario is not None]
        assert len(classic) == len(scenario)
        for cell in scenario:
            assert cell.scenario == spec
            assert cell.cell_id.endswith("|campaign(n=3)")
            assert cell.campaign_kwargs()["scenario"] == spec
        for cell in classic:
            assert "campaign(n=3)" not in cell.cell_id
            assert cell.campaign_kwargs()["scenario"] is None

    def test_classic_cells_omit_the_scenario_param_key(self):
        # Cache-key stability: pre-scenario sweeps must keep hitting their
        # warm entries, so a classic cell's params() must not grow a key.
        spec = ScenarioSpec(family="adaptive", explore=0.1)
        cells = _grid(scenarios=(None, spec)).expand()
        classic = next(c for c in cells if c.scenario is None)
        scenario = next(c for c in cells if c.scenario is not None)
        assert "scenario" not in classic.params()
        assert scenario.params()["scenario"] == spec.params()

    @pytest.mark.parametrize("value", [
        (),
        (ScenarioSpec(family="epidemic"), ScenarioSpec(family="epidemic")),
        ("epidemic",),
    ])
    def test_bad_scenario_axes_rejected(self, value):
        with pytest.raises(SimulationError):
            _grid(scenarios=value)


class TestValidation:
    def test_empty_configurations_rejected(self):
        with pytest.raises(SimulationError):
            _grid(configurations={})

    def test_empty_replica_list_rejected(self):
        with pytest.raises(SimulationError):
            _grid(configurations={"empty": ()})

    @pytest.mark.parametrize("axis,value", [
        ("quorum_models", ()),
        ("quorum_models", ("4f+2",)),
        ("quorum_models", ("3f+1", "3f+1")),
        ("recovery_intervals", (0.0,)),
        ("recovery_intervals", (-1.0,)),
        ("adversaries", ("clever",)),
        ("arrivals", ()),
    ])
    def test_bad_axes_rejected(self, axis, value):
        with pytest.raises(SimulationError):
            _grid(**{axis: value})

    @pytest.mark.parametrize("scalar,value", [
        ("runs", 0), ("exploit_rate", 0.0), ("horizon", -1.0),
    ])
    def test_bad_scalars_rejected(self, scalar, value):
        with pytest.raises(SimulationError):
            _grid(**{scalar: value})
