"""Property-based tests: parallel sweeps are indistinguishable from serial.

Two properties gate the runner (mirroring ``benchmarks/bench_sweep.py`` but
over *random* corpora and seeds):

* for any corpus, seed and grid, ``workers=1`` and ``workers=4`` produce
  identical merged ``SimulationResult`` values per cell;
* a warm cache serves byte-identical JSON with zero simulation calls.

Process pools are expensive, so example counts are deliberately small; the
deterministic unit tests in this directory cover the edge cases.
"""

import datetime as dt
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.enums import AccessVector, ComponentClass, ValidityStatus
from repro.core.models import CVSSVector, VulnerabilityEntry
from repro.itsys.simulation import CompromiseSimulation
from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner, ResultCache

OS_POOL = ("Debian", "RedHat", "OpenBSD", "Solaris", "Windows2000", "Windows2003")


def _entry(index: int, oses) -> VulnerabilityEntry:
    return VulnerabilityEntry(
        cve_id=f"CVE-2004-{index:04d}",
        published=dt.date(2004, 1 + index % 12, 1 + index % 28),
        summary="A remote flaw in the kernel allows attackers to gain control.",
        cvss=CVSSVector(access_vector=AccessVector.NETWORK),
        affected_os=frozenset(oses),
        component_class=ComponentClass.KERNEL,
        validity=ValidityStatus.VALID,
    )


@st.composite
def corpora(draw):
    """Small random corpora of remote kernel flaws over the OS pool."""
    count = draw(st.integers(min_value=4, max_value=16))
    entries = []
    for index in range(count):
        oses = draw(
            st.sets(st.sampled_from(OS_POOL), min_size=1, max_size=3)
        )
        entries.append(_entry(index, oses))
    return entries


@st.composite
def grids(draw):
    group = tuple(
        draw(st.lists(st.sampled_from(OS_POOL), min_size=4, max_size=4))
    )
    return ExperimentGrid(
        configurations={"random-group": group, "homogeneous": (group[0],) * 4},
        quorum_models=("3f+1",),
        recovery_intervals=(None, draw(st.sampled_from((1.0, 2.5)))),
        arrivals=(ArrivalSpec("poisson"),),
        adversaries=(draw(st.sampled_from(("standard", "smart"))),),
        runs=draw(st.integers(min_value=5, max_value=12)),
        horizon=3.0,
    )


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=corpora(), grid=grids(), seed=st.integers(0, 10_000))
def test_workers_one_and_four_merge_identically(entries, grid, seed):
    serial = GridRunner(entries, seed=seed, workers=1).run(grid)
    pooled = GridRunner(entries, seed=seed, workers=4).run(grid)
    assert serial.results() == pooled.results()
    assert [c.cell for c in serial.cells] == [c.cell for c in pooled.cells]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=corpora(), grid=grids(), seed=st.integers(0, 10_000))
def test_cache_hits_are_byte_identical_to_cold_runs(entries, grid, seed, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    cold = GridRunner(
        entries, seed=seed, workers=1, cache=ResultCache(cache_dir)
    ).run(grid)
    cold_bytes = {
        path.name: path.read_bytes() for path in cache_dir.glob("*.json")
    }
    warm = GridRunner(
        entries, seed=seed, workers=1, cache=ResultCache(cache_dir)
    ).run(grid)
    assert warm.simulated_cells == 0
    assert warm.results() == cold.results()
    # The warm sweep emits the same JSON payload byte for byte...
    assert json.dumps(warm.to_json_payload(), sort_keys=True) == json.dumps(
        cold.to_json_payload(), sort_keys=True
    )
    # ...and never rewrites the cache files.
    assert {
        path.name: path.read_bytes() for path in cache_dir.glob("*.json")
    } == cold_bytes


class TestWarmCacheBypassesSimulation:
    def test_warm_sweep_never_calls_the_simulator(
        self, corpus, tmp_path, monkeypatch
    ):
        """After a cold sweep, reruns must not invoke ``run_range`` at all."""
        grid = ExperimentGrid(
            configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
            recovery_intervals=(None, 2.0),
            runs=8,
            horizon=3.0,
        )
        entries = corpus.valid_entries
        cold = GridRunner(
            entries, seed=5, workers=1, cache=ResultCache(tmp_path)
        ).run(grid)

        def _forbidden(*args, **kwargs):
            raise AssertionError("simulation invoked on a warm cache")

        monkeypatch.setattr(CompromiseSimulation, "run_range", _forbidden)
        warm = GridRunner(
            entries, seed=5, workers=1, cache=ResultCache(tmp_path)
        ).run(grid)
        assert warm.simulated_cells == 0
        assert warm.results() == cold.results()

    def test_different_filter_configurations_do_not_share_cache_entries(
        self, corpus, tmp_path
    ):
        """A shared cache dir must not serve one filter's results to another."""
        from repro.core.enums import ServerConfiguration

        grid = ExperimentGrid(
            configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
            runs=8,
            horizon=3.0,
        )
        entries = corpus.valid_entries
        isolated = GridRunner(
            entries, seed=5, workers=1, cache=ResultCache(tmp_path)
        ).run(grid)
        fat = GridRunner(
            entries, seed=5, workers=1,
            configuration=ServerConfiguration.FAT,
            cache=ResultCache(tmp_path),
        ).run(grid)
        assert fat.cached_cells == 0  # different pool => different key
        assert fat.results() != isolated.results()

    def test_no_cache_runner_simulates_every_cell(self, corpus):
        grid = ExperimentGrid(
            configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
            runs=5,
            horizon=2.0,
        )
        report = GridRunner(corpus.valid_entries, seed=5, workers=1).run(grid)
        assert report.simulated_cells == len(report.cells) == 1
        assert report.cached_cells == 0


class TestReportShape:
    def test_csv_rows_align_with_headers(self, corpus):
        grid = ExperimentGrid(
            configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
            recovery_intervals=(None, 2.0),
            runs=5,
            horizon=2.0,
        )
        report = GridRunner(corpus.valid_entries, seed=5, workers=1).run(grid)
        rows = report.csv_rows()
        assert len(rows) == 2
        assert all(len(row) == len(report.CSV_HEADERS) for row in rows)
        recovery_column = report.CSV_HEADERS.index("recovery_interval")
        assert rows[0][recovery_column] == ""
        assert rows[1][recovery_column] == 2.0

    def test_json_payload_has_no_timings(self, corpus):
        grid = ExperimentGrid(
            configurations={"Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD")},
            runs=5,
            horizon=2.0,
        )
        report = GridRunner(corpus.valid_entries, seed=5, workers=1).run(grid)
        payload = report.to_json_payload()
        assert "elapsed" not in json.dumps(payload)
        assert payload["cells"][0]["cell_id"].startswith("Set1")
        assert report.elapsed_seconds > 0  # kept on the report, not the payload
