"""The generic span-partitioning/merge discipline behind both the PR-3
run-range merge and the serving layer's sharded matrix queries."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.runner.spans import order_contiguous, partition_spans


class TestPartitionSpans:
    def test_even_split(self):
        assert partition_spans(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_goes_to_the_leading_spans(self):
        assert partition_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items_yields_empty_spans(self):
        spans = partition_spans(2, 4)
        assert spans == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_total(self):
        assert partition_spans(0, 3) == [(0, 0), (0, 0), (0, 0)]

    @pytest.mark.parametrize("total,parts", [(-1, 2), (5, 0), (5, -3)])
    def test_invalid_inputs_raise(self, total, parts):
        with pytest.raises(ValueError):
            partition_spans(total, parts)

    @given(st.integers(0, 5000), st.integers(1, 64))
    def test_partition_tiles_the_space(self, total, parts):
        spans = partition_spans(total, parts)
        assert len(spans) == parts
        assert spans[0][0] == 0 and spans[-1][1] == total
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        widths = [stop - start for start, stop in spans]
        # Near-even: no span more than one wider than another.
        assert max(widths) - min(widths) <= 1


class TestOrderContiguous:
    def test_orders_by_start(self):
        items = [{"s": (5, 10)}, {"s": (0, 5)}]
        ordered = order_contiguous(items, lambda item: item["s"])
        assert [item["s"] for item in ordered] == [(0, 5), (5, 10)]

    def test_gap_raises_not_contiguous(self):
        with pytest.raises(ValueError, match="not contiguous"):
            order_contiguous([{"s": (0, 4)}, {"s": (5, 9)}], lambda i: i["s"])

    def test_overlap_raises_not_contiguous(self):
        with pytest.raises(ValueError, match="not contiguous"):
            order_contiguous([{"s": (0, 6)}, {"s": (5, 9)}], lambda i: i["s"])

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="empty"):
            order_contiguous([], lambda item: item)

    def test_empty_spans_are_tolerated(self):
        items = [{"s": (3, 3)}, {"s": (0, 3)}, {"s": (3, 7)}]
        ordered = order_contiguous(items, lambda item: item["s"])
        assert ordered[0]["s"] == (0, 3) and ordered[-1]["s"] == (3, 7)

    @given(st.integers(0, 500), st.integers(1, 16), st.randoms())
    def test_shuffled_partition_round_trips(self, total, parts, rng):
        spans = partition_spans(total, parts)
        shuffled = list(spans)
        rng.shuffle(shuffled)
        ordered = order_contiguous(shuffled, lambda span: span)
        assert ordered == spans
