"""Scoped cache digests and selective invalidation (runner.cache schema 2)."""

from pathlib import Path

import pytest

from repro.core.enums import AccessVector, ComponentClass, ServerConfiguration
from repro.runner import (
    ExperimentGrid,
    GridRunner,
    ResultCache,
    scoped_corpus_digest,
    scoped_pool,
)
from tests.conftest import make_entry


def _corpus():
    return [
        make_entry("CVE-2005-0001", oses=("Debian",)),
        make_entry("CVE-2005-0002", oses=("Solaris", "OpenBSD")),
        make_entry("CVE-2005-0003", oses=("Windows2000", "Windows2003")),
        make_entry("CVE-2005-0004", oses=("Debian", "RedHat")),
        make_entry("CVE-2005-0005", oses=("NetBSD",),
                   access=AccessVector.LOCAL),
        make_entry("CVE-2005-0006", oses=("NetBSD",),
                   component_class=ComponentClass.APPLICATION),
    ]


class TestScopedPool:
    def test_targeted_scope_keeps_only_group_entries(self):
        pool = scoped_pool(_corpus(), ("Debian", "RedHat"))
        assert [entry.cve_id for entry in pool] == [
            "CVE-2005-0001", "CVE-2005-0004",
        ]

    def test_untargeted_scope_is_the_admitted_pool(self):
        pool = scoped_pool(_corpus(), None)
        # Isolated Thin drops the local and the application entry.
        assert [entry.cve_id for entry in pool] == [
            "CVE-2005-0001", "CVE-2005-0002", "CVE-2005-0003", "CVE-2005-0004",
        ]

    def test_configuration_filter_applies(self):
        fat = scoped_pool(_corpus(), ("NetBSD",), ServerConfiguration.FAT)
        isolated = scoped_pool(
            _corpus(), ("NetBSD",), ServerConfiguration.ISOLATED_THIN
        )
        assert len(fat) == 2 and isolated == []

    def test_scope_preserves_corpus_order(self):
        entries = list(reversed(_corpus()))
        pool = scoped_pool(entries, ("Debian", "RedHat"))
        assert [entry.cve_id for entry in pool] == [
            "CVE-2005-0004", "CVE-2005-0001",
        ]


class TestScopedDigest:
    def test_unrelated_change_keeps_scoped_digest(self):
        before = _corpus()
        after = list(before)
        after[2] = make_entry("CVE-2005-0003", oses=("Windows2000", "Windows2003"),
                              summary="A revised Windows flaw, remote attack.")
        group = ("Debian", "RedHat")
        assert scoped_corpus_digest(before, group) == scoped_corpus_digest(after, group)
        windows = ("Windows2000", "Windows2003")
        assert scoped_corpus_digest(before, windows) != scoped_corpus_digest(
            after, windows
        )

    def test_membership_change_moves_the_digest(self):
        before = _corpus()
        after = list(before)
        # CVE-2005-0004 stops affecting RedHat: it leaves the group's scope.
        after[3] = make_entry("CVE-2005-0004", oses=("Debian",))
        group = ("RedHat",)
        assert scoped_corpus_digest(before, group) != scoped_corpus_digest(
            after, group
        )

    def test_untargeted_digest_tracks_any_admitted_change(self):
        before = _corpus()
        after = list(before)
        after[0] = make_entry("CVE-2005-0001", oses=("Debian",),
                              summary="A revised Debian flaw, remote attack.")
        assert scoped_corpus_digest(before, None) != scoped_corpus_digest(after, None)


class TestSelectiveInvalidation:
    GRID = dict(runs=6, horizon=1.5)

    def _grid(self):
        return ExperimentGrid(
            configurations={
                "debians": ("Debian", "Debian", "Debian", "Debian"),
                "windows": ("Windows2000", "Windows2003", "Windows2000",
                            "Windows2003"),
            },
            **self.GRID,
        )

    def test_warm_sweep_reruns_only_touched_cells(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        before = _corpus()
        cold = GridRunner(before, seed=3, cache=cache).run(self._grid())
        assert all(not cell.cached for cell in cold.cells)

        # Modify only the Windows entry.
        after = list(before)
        after[2] = make_entry("CVE-2005-0003", oses=("Windows2000", "Windows2003"),
                              summary="A revised Windows flaw, remote attack.")
        warm = GridRunner(after, seed=3, cache=cache).run(self._grid())
        by_name = {cell.cell.configuration: cell for cell in warm.cells}
        assert by_name["debians"].cached is True
        assert by_name["windows"].cached is False

        # The untouched cell's result is byte-identical to the cold run.
        cold_by_name = {cell.cell.configuration: cell for cell in cold.cells}
        assert by_name["debians"].result == cold_by_name["debians"].result
        assert by_name["debians"].scope_digest == cold_by_name["debians"].scope_digest

    def test_untargeted_cells_invalidate_on_any_change(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = ExperimentGrid(
            configurations={"debians": ("Debian",) * 4},
            adversaries=("untargeted",),
            **self.GRID,
        )
        before = _corpus()
        GridRunner(before, seed=3, cache=cache).run(grid)
        after = list(before)
        after[2] = make_entry("CVE-2005-0003", oses=("Windows2000", "Windows2003"),
                              summary="A revised Windows flaw, remote attack.")
        warm = GridRunner(after, seed=3, cache=cache).run(grid)
        assert warm.cells[0].cached is False

    def test_report_carries_scope_digests(self, tmp_path):
        report = GridRunner(_corpus(), seed=3).run(self._grid())
        payload = report.to_json_payload()
        for cell_payload, cell in zip(payload["cells"], report.cells):
            assert cell_payload["scope_digest"] == cell.scope_digest
            assert len(cell.scope_digest) == 64
        headers = report.CSV_HEADERS
        rows = report.csv_rows()
        assert "scope_digest" in headers and "corpus_digest" in headers
        digest_column = headers.index("scope_digest")
        assert rows[0][digest_column] == report.cells[0].scope_digest


class TestDigestMemoization:
    def test_precomputed_digest_map_matches_direct_hashing(self):
        from repro.snapshots.digests import entry_digest

        entries = _corpus()
        digests = {id(entry): entry_digest(entry) for entry in entries}
        group = ("Debian", "RedHat")
        assert scoped_corpus_digest(entries, group, digests=digests) == \
            scoped_corpus_digest(entries, group)

    def test_runner_computes_each_entry_digest_once(self, monkeypatch):
        import repro.runner.runner as runner_module

        calls = {"n": 0}
        from repro.snapshots import digests as digests_module

        original = digests_module.entry_digest

        def counting(entry):
            calls["n"] += 1
            return original(entry)

        monkeypatch.setattr(digests_module, "entry_digest", counting)
        entries = _corpus()
        runner = GridRunner(entries, seed=3)
        grid = ExperimentGrid(
            configurations={
                "a": ("Debian",) * 4,
                "b": ("Solaris", "OpenBSD", "Solaris", "OpenBSD"),
                "c": ("Windows2000", "Windows2003", "Windows2000",
                      "Windows2003"),
            },
            runs=2,
            horizon=1.0,
        )
        for cell in grid.expand():
            runner.scope_digest(cell)
        assert calls["n"] == len(entries)
