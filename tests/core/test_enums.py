"""Tests for the core enumerations."""

import pytest

from repro.core.enums import (
    AccessVector,
    ComponentClass,
    CPEPart,
    OSFamily,
    ServerConfiguration,
    ValidityStatus,
)


class TestComponentClass:
    def test_four_classes_exist(self):
        assert {c.value for c in ComponentClass} == {
            "Driver",
            "Kernel",
            "System Software",
            "Application",
        }

    def test_application_is_not_core(self):
        assert not ComponentClass.APPLICATION.is_core_os

    @pytest.mark.parametrize(
        "cls", [ComponentClass.DRIVER, ComponentClass.KERNEL, ComponentClass.SYSTEM_SOFTWARE]
    )
    def test_core_classes(self, cls):
        assert cls.is_core_os

    def test_string_conversion(self):
        assert str(ComponentClass.SYSTEM_SOFTWARE) == "System Software"


class TestAccessVector:
    def test_network_is_remote(self):
        assert AccessVector.NETWORK.is_remote

    def test_adjacent_network_is_remote(self):
        assert AccessVector.ADJACENT_NETWORK.is_remote

    def test_local_is_not_remote(self):
        assert not AccessVector.LOCAL.is_remote

    @pytest.mark.parametrize(
        "token,expected",
        [("N", AccessVector.NETWORK), ("A", AccessVector.ADJACENT_NETWORK), ("L", AccessVector.LOCAL),
         ("n", AccessVector.NETWORK), ("l", AccessVector.LOCAL)],
    )
    def test_from_cvss_token(self, token, expected):
        assert AccessVector.from_cvss_token(token) is expected

    def test_from_cvss_token_rejects_garbage(self):
        with pytest.raises(ValueError):
            AccessVector.from_cvss_token("X")


class TestValidityStatus:
    def test_only_valid_is_valid(self):
        assert ValidityStatus.VALID.is_valid
        assert not ValidityStatus.UNKNOWN.is_valid
        assert not ValidityStatus.UNSPECIFIED.is_valid
        assert not ValidityStatus.DISPUTED.is_valid


class TestServerConfiguration:
    def test_fat_keeps_everything(self):
        assert not ServerConfiguration.FAT.excludes_applications
        assert not ServerConfiguration.FAT.excludes_local

    def test_thin_removes_applications_only(self):
        assert ServerConfiguration.THIN.excludes_applications
        assert not ServerConfiguration.THIN.excludes_local

    def test_isolated_thin_removes_applications_and_local(self):
        assert ServerConfiguration.ISOLATED_THIN.excludes_applications
        assert ServerConfiguration.ISOLATED_THIN.excludes_local


class TestOSFamilyAndCPEPart:
    def test_four_families(self):
        assert {f.value for f in OSFamily} == {"BSD", "Solaris", "Linux", "Windows"}

    def test_cpe_parts(self):
        assert CPEPart.OPERATING_SYSTEM.value == "o"
        assert CPEPart.APPLICATION.value == "a"
        assert CPEPart.HARDWARE.value == "h"
