"""Test package."""
