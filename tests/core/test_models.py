"""Tests for the core dataclasses."""

import datetime as dt

import pytest

from repro.core.enums import AccessVector, ComponentClass, CPEPart, ValidityStatus
from repro.core.models import CPEName, CVSSVector, VulnerabilityEntry
from tests.conftest import make_entry


class TestCPEName:
    def test_operating_system_flag(self):
        cpe = CPEName(CPEPart.OPERATING_SYSTEM, "debian", "debian_linux", "4.0")
        assert cpe.is_operating_system
        assert cpe.key() == ("debian_linux", "debian")

    def test_application_is_not_os(self):
        cpe = CPEName(CPEPart.APPLICATION, "apache", "http_server", "2.2")
        assert not cpe.is_operating_system

    def test_version_object(self):
        cpe = CPEName(CPEPart.OPERATING_SYSTEM, "sun", "solaris", "10")
        assert cpe.version_obj.parts == (10,)


class TestCVSSVector:
    def test_remote_flag_follows_access_vector(self):
        assert CVSSVector(access_vector=AccessVector.NETWORK).is_remote
        assert not CVSSVector(access_vector=AccessVector.LOCAL).is_remote


class TestVulnerabilityEntry:
    def test_affects(self):
        entry = make_entry(oses=("Debian", "RedHat"))
        assert entry.affects("Debian")
        assert entry.affects("RedHat")
        assert not entry.affects("OpenBSD")

    def test_affects_all_and_any(self):
        entry = make_entry(oses=("Debian", "RedHat"))
        assert entry.affects_all(("Debian", "RedHat"))
        assert not entry.affects_all(("Debian", "OpenBSD"))
        assert entry.affects_any(("OpenBSD", "RedHat"))
        assert not entry.affects_any(("OpenBSD", "NetBSD"))

    def test_year_property(self):
        entry = make_entry(year=2007)
        assert entry.year == 2007

    def test_is_application(self):
        app = make_entry(component_class=ComponentClass.APPLICATION)
        kernel = make_entry(component_class=ComponentClass.KERNEL)
        assert app.is_application
        assert not kernel.is_application

    def test_affected_os_is_coerced_to_frozenset(self):
        entry = VulnerabilityEntry(
            cve_id="CVE-2001-0001",
            published=dt.date(2001, 1, 1),
            summary="x",
            cvss=CVSSVector(access_vector=AccessVector.LOCAL),
            affected_os={"Debian"},  # a plain set on purpose
        )
        assert isinstance(entry.affected_os, frozenset)

    def test_with_class_returns_new_object(self):
        entry = make_entry(component_class=None)
        updated = entry.with_class(ComponentClass.DRIVER)
        assert entry.component_class is None
        assert updated.component_class is ComponentClass.DRIVER
        assert updated.cve_id == entry.cve_id

    def test_with_validity_returns_new_object(self):
        entry = make_entry()
        updated = entry.with_validity(ValidityStatus.DISPUTED)
        assert entry.validity is ValidityStatus.VALID
        assert not updated.is_valid


class TestAffectsRelease:
    def test_no_versions_means_all_releases(self):
        entry = make_entry(oses=("Debian",))
        assert entry.affects_release("Debian", "3.0")
        assert entry.affects_release("Debian", "4.0")

    def test_specific_versions_restrict_releases(self):
        entry = make_entry(oses=("Debian",), versions={"Debian": ("4.0",)})
        assert entry.affects_release("Debian", "4.0")
        assert not entry.affects_release("Debian", "3.0")

    def test_unaffected_os_never_matches(self):
        entry = make_entry(oses=("Debian",))
        assert not entry.affects_release("RedHat", "5.0")

    def test_multiple_versions(self):
        entry = make_entry(oses=("RedHat",), versions={"RedHat": ("4.0", "5.0")})
        assert entry.affects_release("RedHat", "4.0")
        assert entry.affects_release("RedHat", "5.0")
        assert not entry.affects_release("RedHat", "6.2*")
