"""Tests for version parsing and comparison."""

import pytest
from hypothesis import given, strategies as st

from repro.core.versions import Version, split_version


class TestSplitVersion:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("5.0.1", (5, 0, 1)),
            ("6.2*", (6, 2)),
            ("8.04-LTS", (8, 4, "lts")),
            ("2003", (2003,)),
            ("", ()),
            ("*", ()),
            ("-", ()),
            (None, ()),
            ("SP1", ("sp", 1)),
        ],
    )
    def test_examples(self, text, expected):
        assert split_version(text) == expected


class TestVersionOrdering:
    def test_numeric_ordering(self):
        assert Version("4.0") < Version("5.0")
        assert Version("5.0") < Version("5.0.1")
        assert Version("9.04") > Version("5.0")

    def test_equality_across_spellings(self):
        assert Version("5.0") == Version("5-0")
        assert Version("6.2*") == Version("6.2")

    def test_equality_with_string(self):
        assert Version("2003") == "2003"

    def test_hash_consistent_with_equality(self):
        assert hash(Version("5.0")) == hash(Version("5-0"))

    def test_mixed_alpha_numeric(self):
        assert Version("5.0") < Version("5.0a")

    def test_comparison_with_other_types_not_supported(self):
        assert Version("1.0").__eq__(42) is NotImplemented


class TestVersionMatching:
    def test_wildcard_matches_everything(self):
        assert Version("*").matches("5.0")
        assert Version("").matches("anything")

    def test_prefix_matching(self):
        assert Version("5.0").matches("5.0.1")
        assert not Version("5.0").matches("5.1")

    def test_exact_match(self):
        assert Version("4.0").matches(Version("4.0"))

    def test_wildcard_property(self):
        assert Version("*").is_wildcard
        assert not Version("4.0").is_wildcard


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=5))
def test_version_roundtrip_is_self_equal(parts):
    text = ".".join(str(p) for p in parts)
    assert Version(text) == Version(text)
    assert Version(text).parts == tuple(parts)


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=4),
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=4),
)
def test_version_ordering_is_total_and_antisymmetric(a, b):
    va = Version(".".join(map(str, a)))
    vb = Version(".".join(map(str, b)))
    assert (va < vb) or (vb < va) or (va == vb)
    if va < vb:
        assert not (vb < va)
