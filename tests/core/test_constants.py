"""Tests for the OS catalogue and study periods."""

import datetime as dt

import pytest

from repro.core.constants import (
    FAMILY_MEMBERS,
    FIGURE3_CONFIGURATIONS,
    HISTORY_PERIOD,
    OBSERVED_PERIOD,
    OS_CATALOG,
    OS_NAMES,
    STUDY_PERIOD,
    TABLE5_OSES,
    canonical_os_name,
    family_of,
    get_os,
)
from repro.core.enums import OSFamily


class TestCatalog:
    def test_eleven_operating_systems(self):
        assert len(OS_CATALOG) == 11
        assert len(OS_NAMES) == 11

    def test_families_partition_the_catalog(self):
        members = [name for names in FAMILY_MEMBERS.values() for name in names]
        assert sorted(members) == sorted(OS_NAMES)

    def test_each_os_has_at_least_one_cpe_alias(self):
        for os_obj in OS_CATALOG.values():
            assert os_obj.cpe_aliases

    def test_release_years_not_before_first_release(self):
        for os_obj in OS_CATALOG.values():
            for release in os_obj.releases:
                assert release.year >= os_obj.first_release_year - 1

    def test_debian_is_linux(self):
        assert OS_CATALOG["Debian"].family is OSFamily.LINUX

    def test_windows_family_members(self):
        assert FAMILY_MEMBERS[OSFamily.WINDOWS] == (
            "Windows2000",
            "Windows2003",
            "Windows2008",
        )

    def test_release_lookup(self):
        debian = OS_CATALOG["Debian"]
        assert debian.release("4.0").year == 2007
        with pytest.raises(KeyError):
            debian.release("99.9")


class TestGetOS:
    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("debian", "Debian"),
            ("Win2000", "Windows2000"),
            ("win2k", "Windows2000"),
            ("windows 2003", "Windows2003"),
            ("RHEL", "RedHat"),
            ("FreeBSD", "FreeBSD"),
        ],
    )
    def test_alias_resolution(self, alias, canonical):
        assert get_os(alias).name == canonical
        assert canonical_os_name(alias) == canonical

    def test_unknown_os_raises(self):
        with pytest.raises(KeyError):
            get_os("TempleOS")

    def test_family_of(self):
        assert family_of("OpenBSD") is OSFamily.BSD
        assert family_of("Solaris") is OSFamily.SOLARIS


class TestPeriods:
    def test_study_period_bounds(self):
        assert STUDY_PERIOD[0] == dt.date(1994, 1, 1)
        assert STUDY_PERIOD[1] == dt.date(2010, 9, 30)

    def test_history_and_observed_are_disjoint_and_ordered(self):
        assert HISTORY_PERIOD[1] < OBSERVED_PERIOD[0]
        assert HISTORY_PERIOD[0] == STUDY_PERIOD[0]
        assert OBSERVED_PERIOD[1] == STUDY_PERIOD[1]

    def test_table5_excludes_recent_oses(self):
        assert "Ubuntu" not in TABLE5_OSES
        assert "OpenSolaris" not in TABLE5_OSES
        assert "Windows2008" not in TABLE5_OSES
        assert len(TABLE5_OSES) == 8


class TestFigure3Configurations:
    def test_paper_sets(self):
        assert FIGURE3_CONFIGURATIONS["Set1"] == ("Windows2003", "Solaris", "Debian", "OpenBSD")
        assert FIGURE3_CONFIGURATIONS["Debian"] == ("Debian",)
        assert len(FIGURE3_CONFIGURATIONS) == 5

    def test_all_members_are_catalogued(self):
        for members in FIGURE3_CONFIGURATIONS.values():
            for name in members:
                assert name in OS_CATALOG
