"""Writing NVD-style XML data feeds.

The synthetic corpus produced by :mod:`repro.synthetic` is serialised through
this writer and read back through :mod:`repro.nvd.feed_parser`, so the whole
collection pipeline (feed -> parse -> normalise -> database) is exercised on
the same code paths the paper's collector used on the real feeds.
"""

from __future__ import annotations

import datetime as _dt
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

from repro.nvd.feed_parser import REJECTED_MARKER, RawFeedEntry


def rejection_entry(cve_id: str, published: _dt.date) -> RawFeedEntry:
    """A tombstone entry withdrawing ``cve_id``, as NVD modified feeds do.

    The entry carries the ``** REJECT **`` summary marker and no CPE names;
    parsers flag it via :attr:`RawFeedEntry.is_rejected` and the delta-ingest
    pipeline turns it into a database tombstone.
    """
    return RawFeedEntry(
        cve_id=cve_id,
        published=published,
        summary=f"{REJECTED_MARKER} DO NOT USE THIS CANDIDATE NUMBER.",
        cvss_vector="",
        cpe_uris=(),
    )


def write_modified_feed(
    entries: Sequence[RawFeedEntry],
    path: Union[str, Path],
    feed_name: str = "modified",
) -> Path:
    """Write a *modified* feed: only changed entries (and tombstones).

    This mirrors NVD's ``nvdcve-2.0-modified.xml`` delta feed: a regular
    feed document whose entries are the ones republished since the last
    pull (corrections and additions), plus ``** REJECT **`` tombstones for
    withdrawn entries (:func:`rejection_entry`).  Entries are sorted by
    (publication date, CVE id) so a given delta always serialises to the
    same bytes.
    """
    ordered = sorted(entries, key=lambda e: (e.published, e.cve_id))
    return write_xml_feed(ordered, path, feed_name=feed_name)


def _entry_element(entry: RawFeedEntry) -> ET.Element:
    element = ET.Element("entry", {"id": entry.cve_id})
    ET.SubElement(element, "cve-id").text = entry.cve_id
    published = ET.SubElement(element, "published-datetime")
    published.text = _dt.datetime.combine(entry.published, _dt.time(0, 0)).isoformat()
    if entry.cvss_vector:
        cvss = ET.SubElement(element, "cvss")
        base = ET.SubElement(cvss, "base_metrics")
        ET.SubElement(base, "vector").text = entry.cvss_vector
    software = ET.SubElement(element, "vulnerable-software-list")
    for uri in entry.cpe_uris:
        ET.SubElement(software, "product").text = uri
    ET.SubElement(element, "summary").text = entry.summary
    return element


def build_feed_tree(entries: Sequence[RawFeedEntry], feed_name: str = "synthetic") -> ET.ElementTree:
    """Build the XML element tree for a feed containing ``entries``."""
    root = ET.Element(
        "nvd",
        {
            "nvd_xml_version": "2.0",
            "pub_date": _dt.date(2010, 9, 30).isoformat(),
            "feed": feed_name,
        },
    )
    for entry in entries:
        root.append(_entry_element(entry))
    return ET.ElementTree(root)


def write_xml_feed(
    entries: Sequence[RawFeedEntry],
    path: Union[str, Path],
    feed_name: str = "synthetic",
) -> Path:
    """Write ``entries`` as a single XML feed to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tree = build_feed_tree(entries, feed_name=feed_name)
    ET.indent(tree, space="  ")
    tree.write(path, encoding="utf-8", xml_declaration=True)
    return path


def write_yearly_feeds(
    entries: Iterable[RawFeedEntry],
    directory: Union[str, Path],
    prefix: str = "nvdcve-2.0-",
) -> List[Path]:
    """Split entries by publication year into per-year feed files.

    This mirrors how the real NVD publishes one feed per calendar year.  The
    2002 feed additionally absorbs everything published before 2002, exactly
    as in the real data set (and as noted in Section III of the paper).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_year: Mapping[int, List[RawFeedEntry]] = {}
    grouped: dict[int, List[RawFeedEntry]] = {}
    for entry in entries:
        year = entry.published.year
        feed_year = max(year, 2002)
        grouped.setdefault(feed_year, []).append(entry)
    by_year = grouped
    paths: List[Path] = []
    for year in sorted(by_year):
        feed_entries = sorted(by_year[year], key=lambda e: (e.published, e.cve_id))
        path = directory / f"{prefix}{year}.xml"
        write_xml_feed(feed_entries, path, feed_name=str(year))
        paths.append(path)
    return paths
