"""Product / vendor normalisation of NVD CPE names.

One of the data-quality problems reported in Section III of the paper is that
NVD registers the same product under distinct (product, vendor) pairs across
entries -- for instance both ``("debian_linux", "debian")`` and
``("linux", "debian")`` denote Debian GNU/Linux.  The paper fixes this inside
its SQL database; we implement the same normalisation as a reusable component
that maps operating-system CPE names onto the 11-OS catalogue of
:mod:`repro.core.constants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.constants import OS_CATALOG
from repro.core.models import CPEName, OperatingSystem


@dataclass
class NormalizationReport:
    """Diagnostics accumulated while normalising a batch of CPE names."""

    matched: int = 0
    unmatched: int = 0
    non_os: int = 0
    unmatched_keys: Set[Tuple[str, str]] = field(default_factory=set)

    def record_match(self) -> None:
        self.matched += 1

    def record_unmatched(self, key: Tuple[str, str]) -> None:
        self.unmatched += 1
        self.unmatched_keys.add(key)

    def record_non_os(self) -> None:
        self.non_os += 1


class ProductNormalizer:
    """Maps operating-system CPE names onto canonical OS distributions.

    The default alias table comes from the OS catalogue; extra aliases can be
    registered (e.g. when a new spelling is discovered in a feed), which is
    the programmatic equivalent of the paper's by-hand database fixes.
    """

    def __init__(
        self,
        catalog: Optional[Mapping[str, OperatingSystem]] = None,
        extra_aliases: Optional[Mapping[Tuple[str, str], str]] = None,
    ) -> None:
        self._catalog: Mapping[str, OperatingSystem] = catalog or OS_CATALOG
        self._alias_to_os: Dict[Tuple[str, str], str] = {}
        for os_obj in self._catalog.values():
            for alias in os_obj.cpe_aliases:
                self._alias_to_os[self._normalise_key(alias)] = os_obj.name
        if extra_aliases:
            for alias, os_name in extra_aliases.items():
                self.add_alias(alias, os_name)
        self.report = NormalizationReport()

    @staticmethod
    def _normalise_key(key: Tuple[str, str]) -> Tuple[str, str]:
        product, vendor = key
        return (product.strip().lower(), vendor.strip().lower())

    # -- alias management --------------------------------------------------

    def add_alias(self, key: Tuple[str, str], os_name: str) -> None:
        """Register an extra (product, vendor) alias for a catalogued OS."""
        if os_name not in self._catalog:
            raise KeyError(f"cannot alias to unknown OS {os_name!r}")
        self._alias_to_os[self._normalise_key(key)] = os_name

    def aliases_for(self, os_name: str) -> List[Tuple[str, str]]:
        """All (product, vendor) aliases currently mapping to ``os_name``."""
        return [key for key, name in self._alias_to_os.items() if name == os_name]

    # -- normalisation -----------------------------------------------------

    def resolve(self, cpe: CPEName) -> Optional[str]:
        """Canonical OS name for an operating-system CPE, or ``None``.

        Non-OS CPEs and OS CPEs outside the 11-OS catalogue resolve to
        ``None`` (they are excluded from the study); diagnostics are recorded
        on :attr:`report`.
        """
        if not cpe.is_operating_system:
            self.report.record_non_os()
            return None
        key = self._normalise_key(cpe.key())
        os_name = self._alias_to_os.get(key)
        if os_name is None:
            self.report.record_unmatched(key)
            return None
        self.report.record_match()
        return os_name

    def resolve_many(
        self, cpes: Iterable[CPEName]
    ) -> Tuple[Set[str], Dict[str, Tuple[str, ...]]]:
        """Resolve a batch of CPEs to (affected OS names, versions per OS).

        Versions are collected per OS; an empty version on any matching CPE
        means "all versions" and clears the collected set for that OS (the
        most pessimistic interpretation, matching the paper's aggregated
        analysis).
        """
        affected: Set[str] = set()
        versions: Dict[str, Set[str]] = {}
        unversioned: Set[str] = set()
        for cpe in cpes:
            os_name = self.resolve(cpe)
            if os_name is None:
                continue
            affected.add(os_name)
            if cpe.version:
                versions.setdefault(os_name, set()).add(cpe.version)
            else:
                unversioned.add(os_name)
        version_map: Dict[str, Tuple[str, ...]] = {}
        for os_name in affected:
            if os_name in unversioned:
                version_map[os_name] = ()
            else:
                version_map[os_name] = tuple(sorted(versions.get(os_name, set())))
        return affected, version_map

    def known_os_names(self) -> Sequence[str]:
        """Canonical OS names this normaliser can produce."""
        return tuple(self._catalog)
