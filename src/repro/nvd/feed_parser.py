"""Parsing of NVD XML data feeds.

The feeds consumed (and, for the synthetic corpus, produced) by this library
follow the structure of the NVD 2.0 XML vulnerability feeds of the studied
era: a root ``<nvd>`` element containing one ``<entry>`` per CVE with the
identifier, publication timestamp, summary text, CVSS v2 base metrics and a
vulnerable-software list of CPE 2.2 URIs.

Namespaces are tolerated but not required, so both the official feeds and the
namespace-free synthetic feeds written by :mod:`repro.nvd.feed_writer` parse
with the same code path.
"""

from __future__ import annotations

import datetime as _dt
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, List, Sequence, Tuple, Union

from repro.core.exceptions import CPEError, FeedParseError
from repro.core.models import CPEName
from repro.nvd.cpe import parse_cpe_uri

FeedSource = Union[str, Path, IO[str], IO[bytes]]

#: Summary prefix NVD uses to withdraw a published entry.  Entries carrying
#: it in a *modified* feed are treated as tombstones by the delta-ingest
#: pipeline (:mod:`repro.snapshots.delta`).
REJECTED_MARKER = "** REJECT **"


@dataclass
class RawFeedEntry:
    """One CVE entry as it appears in a data feed, before normalisation."""

    cve_id: str
    published: _dt.date
    summary: str
    cvss_vector: str
    cpe_uris: Tuple[str, ...] = ()
    #: CPE names that failed to parse (kept for diagnostics).
    invalid_cpes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_rejected(self) -> bool:
        """Whether the entry withdraws its CVE (NVD's ``** REJECT **`` mark)."""
        return self.summary.lstrip().startswith(REJECTED_MARKER)

    def parsed_cpes(self) -> List[CPEName]:
        """Parse the entry's CPE URIs, silently skipping malformed ones.

        Only :class:`~repro.core.exceptions.CPEError` marks a URI as
        malformed; any other exception is a bug in the parser and
        propagates.
        """
        names: List[CPEName] = []
        for uri in self.cpe_uris:
            try:
                names.append(parse_cpe_uri(uri))
            except CPEError:
                continue
        return names


def _localname(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    if "}" in tag:
        return tag.rsplit("}", 1)[1]
    return tag


def _find_text(element: ET.Element, name: str) -> str:
    """Find the text of the first descendant whose local name is ``name``."""
    for child in element.iter():
        if _localname(child.tag) == name and child.text is not None:
            return child.text.strip()
    return ""


def _parse_date(text: str, cve_id: str) -> _dt.date:
    """Parse the feed's published-datetime into a date.

    Accepts ISO timestamps (with or without time component / timezone) and
    plain ``YYYY-MM-DD`` dates.
    """
    if not text:
        raise FeedParseError(f"entry {cve_id} has no publication date")
    candidate = text.strip()
    # Trim timezone suffixes that ``fromisoformat`` on 3.10 may reject.
    for suffix in ("Z", "+00:00"):
        if candidate.endswith(suffix):
            candidate = candidate[: -len(suffix)]
    try:
        if "T" in candidate:
            return _dt.datetime.fromisoformat(candidate).date()
        return _dt.date.fromisoformat(candidate)
    except ValueError as exc:
        raise FeedParseError(f"entry {cve_id} has malformed date {text!r}") from exc


def _entry_from_element(element: ET.Element) -> RawFeedEntry:
    cve_id = element.get("id") or _find_text(element, "cve-id")
    if not cve_id:
        raise FeedParseError("feed entry without a CVE identifier")
    published_text = _find_text(element, "published-datetime") or _find_text(
        element, "published"
    )
    summary = _find_text(element, "summary")
    cvss_vector = _find_text(element, "vector") or _find_text(element, "cvss-vector")
    cpe_uris: List[str] = []
    invalid: List[str] = []
    for child in element.iter():
        if _localname(child.tag) != "product":
            continue
        uri = (child.text or "").strip()
        if not uri:
            continue
        try:
            parse_cpe_uri(uri)
        except CPEError:
            invalid.append(uri)
        else:
            cpe_uris.append(uri)
    return RawFeedEntry(
        cve_id=cve_id,
        published=_parse_date(published_text, cve_id),
        summary=summary,
        cvss_vector=cvss_vector,
        cpe_uris=tuple(cpe_uris),
        invalid_cpes=tuple(invalid),
    )


def parse_xml_feed(source: FeedSource) -> List[RawFeedEntry]:
    """Parse a single NVD XML feed into a list of raw entries.

    ``source`` may be a filesystem path or an open file object.  Entries that
    lack a CVE identifier or publication date raise
    :class:`~repro.core.exceptions.FeedParseError`; malformed CPE URIs are
    recorded on the entry but do not abort parsing (mirroring the tolerance of
    the paper's collector, which had to cope with inconsistent NVD records).
    """
    try:
        tree = ET.parse(source)  # type: ignore[arg-type]
    except ET.ParseError as exc:
        raise FeedParseError(f"malformed XML feed: {exc}") from exc
    except (OSError, FileNotFoundError) as exc:
        raise FeedParseError(f"cannot read feed {source!r}: {exc}") from exc
    root = tree.getroot()
    entries: List[RawFeedEntry] = []
    for element in root:
        if _localname(element.tag) != "entry":
            continue
        entries.append(_entry_from_element(element))
    return entries


def parse_xml_feeds(sources: Iterable[FeedSource]) -> List[RawFeedEntry]:
    """Parse several feeds and concatenate their entries in feed order.

    Duplicate CVE identifiers across feeds are collapsed, keeping the last
    occurrence (later feeds carry corrected data, as with the real NVD where
    modified entries are republished).
    """
    by_id: dict[str, RawFeedEntry] = {}
    order: List[str] = []
    for source in sources:
        for entry in parse_xml_feed(source):
            if entry.cve_id not in by_id:
                order.append(entry.cve_id)
            by_id[entry.cve_id] = entry
    return [by_id[cve_id] for cve_id in order]


def feed_statistics(entries: Sequence[RawFeedEntry]) -> dict:
    """Summary statistics for a parsed feed (used by diagnostics and tests)."""
    years = sorted({e.published.year for e in entries})
    return {
        "entries": len(entries),
        "years": years,
        "with_cpes": sum(1 for e in entries if e.cpe_uris),
        "invalid_cpes": sum(len(e.invalid_cpes) for e in entries),
    }
