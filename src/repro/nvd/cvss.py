"""CVSS v2 base-vector parsing, formatting and base-score computation.

The paper uses a single CVSS field -- ``CVSS_ACCESS_VECTOR`` -- to separate
locally from remotely exploitable vulnerabilities (the *Isolated Thin Server*
filter).  We implement the full CVSS v2 base metric group so that feeds can be
round-tripped faithfully and so that severity-weighted extensions remain
possible.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.enums import AccessVector
from repro.core.exceptions import CVSSError
from repro.core.models import CVSSVector

#: Metric weights from the CVSS v2 specification.
_AV_SCORES: Mapping[str, float] = {"LOCAL": 0.395, "ADJACENT_NETWORK": 0.646, "NETWORK": 1.0}
_AC_SCORES: Mapping[str, float] = {"HIGH": 0.35, "MEDIUM": 0.61, "LOW": 0.71}
_AU_SCORES: Mapping[str, float] = {"MULTIPLE": 0.45, "SINGLE": 0.56, "NONE": 0.704}
_IMPACT_SCORES: Mapping[str, float] = {"NONE": 0.0, "PARTIAL": 0.275, "COMPLETE": 0.660}

_VECTOR_TOKENS: Mapping[str, Mapping[str, str]] = {
    "AV": {"L": "LOCAL", "A": "ADJACENT_NETWORK", "N": "NETWORK"},
    "AC": {"H": "HIGH", "M": "MEDIUM", "L": "LOW"},
    "Au": {"M": "MULTIPLE", "S": "SINGLE", "N": "NONE"},
    "C": {"N": "NONE", "P": "PARTIAL", "C": "COMPLETE"},
    "I": {"N": "NONE", "P": "PARTIAL", "C": "COMPLETE"},
    "A": {"N": "NONE", "P": "PARTIAL", "C": "COMPLETE"},
}

_REVERSE_TOKENS: Dict[str, Dict[str, str]] = {
    metric: {long: short for short, long in table.items()}
    for metric, table in _VECTOR_TOKENS.items()
}


def parse_cvss_vector(vector: str) -> CVSSVector:
    """Parse a CVSS v2 base vector such as ``AV:N/AC:L/Au:N/C:P/I:P/A:P``.

    The parenthesised form ``(AV:N/AC:L/...)`` used in some NVD exports is
    accepted as well.  The base score is computed from the parsed metrics.

    Raises :class:`~repro.core.exceptions.CVSSError` on malformed vectors.
    """
    if not isinstance(vector, str) or not vector.strip():
        raise CVSSError("empty CVSS vector")
    text = vector.strip().strip("()")
    metrics: Dict[str, str] = {}
    for chunk in text.split("/"):
        if not chunk:
            continue
        if ":" not in chunk:
            raise CVSSError(f"malformed CVSS metric {chunk!r} in {vector!r}")
        key, _, value = chunk.partition(":")
        key = key.strip()
        value = value.strip()
        # Normalise case of the metric key (Au is mixed-case in the spec).
        canonical_key = {"AV": "AV", "AC": "AC", "AU": "Au", "Au": "Au",
                         "C": "C", "I": "I", "A": "A"}.get(key, key)
        if canonical_key not in _VECTOR_TOKENS:
            # Temporal/environmental metrics are ignored, not an error.
            continue
        table = _VECTOR_TOKENS[canonical_key]
        if value.upper() not in table:
            raise CVSSError(f"unknown value {value!r} for CVSS metric {canonical_key}")
        metrics[canonical_key] = table[value.upper()]
    missing = [m for m in ("AV", "AC", "Au", "C", "I", "A") if m not in metrics]
    if missing:
        raise CVSSError(f"CVSS vector {vector!r} is missing metrics: {', '.join(missing)}")
    cvss = CVSSVector(
        access_vector=AccessVector(metrics["AV"]),
        access_complexity=metrics["AC"],
        authentication=metrics["Au"],
        confidentiality_impact=metrics["C"],
        integrity_impact=metrics["I"],
        availability_impact=metrics["A"],
    )
    return CVSSVector(
        access_vector=cvss.access_vector,
        access_complexity=cvss.access_complexity,
        authentication=cvss.authentication,
        confidentiality_impact=cvss.confidentiality_impact,
        integrity_impact=cvss.integrity_impact,
        availability_impact=cvss.availability_impact,
        base_score=cvss_base_score(cvss),
    )


def format_cvss_vector(cvss: CVSSVector) -> str:
    """Format a :class:`CVSSVector` back into the canonical v2 string form."""
    try:
        return "/".join(
            [
                f"AV:{_REVERSE_TOKENS['AV'][cvss.access_vector.value]}",
                f"AC:{_REVERSE_TOKENS['AC'][cvss.access_complexity]}",
                f"Au:{_REVERSE_TOKENS['Au'][cvss.authentication]}",
                f"C:{_REVERSE_TOKENS['C'][cvss.confidentiality_impact]}",
                f"I:{_REVERSE_TOKENS['I'][cvss.integrity_impact]}",
                f"A:{_REVERSE_TOKENS['A'][cvss.availability_impact]}",
            ]
        )
    except KeyError as exc:
        raise CVSSError(f"cannot format CVSS vector with metric value {exc}") from exc


def cvss_base_score(cvss: CVSSVector) -> float:
    """Compute the CVSS v2 base score (0.0 -- 10.0) for a vector.

    Implements the standard equations::

        Impact        = 10.41 * (1 - (1-C)(1-I)(1-A))
        Exploitability = 20 * AV * AC * Au
        f(Impact)     = 0 if Impact == 0 else 1.176
        BaseScore     = round_to_1_decimal(((0.6*Impact) + (0.4*Exploitability) - 1.5) * f(Impact))
    """
    try:
        c = _IMPACT_SCORES[cvss.confidentiality_impact]
        i = _IMPACT_SCORES[cvss.integrity_impact]
        a = _IMPACT_SCORES[cvss.availability_impact]
        av = _AV_SCORES[cvss.access_vector.value]
        ac = _AC_SCORES[cvss.access_complexity]
        au = _AU_SCORES[cvss.authentication]
    except KeyError as exc:
        raise CVSSError(f"unknown CVSS metric value: {exc}") from exc
    impact = 10.41 * (1.0 - (1.0 - c) * (1.0 - i) * (1.0 - a))
    exploitability = 20.0 * av * ac * au
    f_impact = 0.0 if impact == 0 else 1.176
    raw = ((0.6 * impact) + (0.4 * exploitability) - 1.5) * f_impact
    return round(max(0.0, min(10.0, raw)), 1)


def severity_label(base_score: float) -> str:
    """NVD severity bucket for a CVSS v2 base score (Low/Medium/High)."""
    if base_score < 0 or base_score > 10:
        raise CVSSError(f"base score out of range: {base_score}")
    if base_score < 4.0:
        return "Low"
    if base_score < 7.0:
        return "Medium"
    return "High"
