"""JSON data-feed support.

NVD later replaced the XML feeds used by the paper with JSON feeds.  We
support a JSON representation with the same information content so the
library can ingest either format, and so round-trip tests can cross-check the
two parsers against each other.
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path
from typing import IO, List, Sequence, Union

from repro.core.exceptions import FeedParseError
from repro.nvd.feed_parser import RawFeedEntry

JSONSource = Union[str, Path, IO[str]]


def entry_to_dict(entry: RawFeedEntry) -> dict:
    """Serialise a raw entry into the JSON feed item structure."""
    return {
        "cve": {
            "CVE_data_meta": {"ID": entry.cve_id},
            "description": {"description_data": [{"lang": "en", "value": entry.summary}]},
        },
        "publishedDate": entry.published.isoformat(),
        "impact": {"baseMetricV2": {"cvssV2": {"vectorString": entry.cvss_vector}}},
        "configurations": {
            "cpe_match": [{"cpe22Uri": uri, "vulnerable": True} for uri in entry.cpe_uris]
        },
    }


def entry_from_dict(item: dict) -> RawFeedEntry:
    """Deserialise one JSON feed item into a :class:`RawFeedEntry`."""
    try:
        cve_id = item["cve"]["CVE_data_meta"]["ID"]
    except (KeyError, TypeError) as exc:
        raise FeedParseError("JSON feed item without cve.CVE_data_meta.ID") from exc
    published_text = item.get("publishedDate", "")
    if not published_text:
        raise FeedParseError(f"JSON entry {cve_id} has no publishedDate")
    try:
        published = _dt.date.fromisoformat(published_text[:10])
    except ValueError as exc:
        raise FeedParseError(f"JSON entry {cve_id} has malformed publishedDate") from exc
    descriptions = (
        item.get("cve", {}).get("description", {}).get("description_data", [])
    )
    summary = ""
    for description in descriptions:
        if description.get("lang") in (None, "en"):
            summary = description.get("value", "")
            break
    vector = (
        item.get("impact", {})
        .get("baseMetricV2", {})
        .get("cvssV2", {})
        .get("vectorString", "")
    )
    matches = item.get("configurations", {}).get("cpe_match", [])
    uris = tuple(
        m.get("cpe22Uri", "") for m in matches if m.get("vulnerable", True) and m.get("cpe22Uri")
    )
    return RawFeedEntry(
        cve_id=cve_id,
        published=published,
        summary=summary,
        cvss_vector=vector,
        cpe_uris=uris,
    )


def dump_json_feed(entries: Sequence[RawFeedEntry], path: Union[str, Path]) -> Path:
    """Write entries as a JSON feed file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "CVE_data_type": "CVE",
        "CVE_data_format": "MITRE",
        "CVE_data_numberOfCVEs": str(len(entries)),
        "CVE_Items": [entry_to_dict(entry) for entry in entries],
    }
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path


def parse_json_feed(source: JSONSource) -> List[RawFeedEntry]:
    """Parse a JSON feed from a path or open file object."""
    try:
        if hasattr(source, "read"):
            payload = json.load(source)  # type: ignore[arg-type]
        else:
            payload = json.loads(Path(source).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise FeedParseError(f"cannot parse JSON feed {source!r}: {exc}") from exc
    items = payload.get("CVE_Items")
    if items is None:
        raise FeedParseError("JSON feed has no CVE_Items array")
    return [entry_from_dict(item) for item in items]
