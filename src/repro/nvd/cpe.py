"""Common Platform Enumeration (CPE 2.2) URI handling.

NVD feeds of the era studied by the paper identify affected platforms with
CPE 2.2 URIs of the form::

    cpe:/{part}:{vendor}:{product}:{version}:{update}:{edition}:{language}

Only ``part`` is mandatory.  The paper keeps platforms whose part is ``o``
(operating system) and uses the (product, vendor) pair plus version for its
normalisation and release analysis.
"""

from __future__ import annotations

import urllib.parse
from typing import Iterable, List

from repro.core.enums import CPEPart
from repro.core.exceptions import CPEError
from repro.core.models import CPEName

_PREFIX = "cpe:/"


def parse_cpe_uri(uri: str) -> CPEName:
    """Parse a CPE 2.2 URI into a :class:`~repro.core.models.CPEName`.

    >>> cpe = parse_cpe_uri("cpe:/o:debian:debian_linux:4.0")
    >>> (cpe.part.value, cpe.vendor, cpe.product, cpe.version)
    ('o', 'debian', 'debian_linux', '4.0')

    Raises :class:`~repro.core.exceptions.CPEError` on malformed input.
    """
    if not isinstance(uri, str):
        raise CPEError(f"CPE URI must be a string, got {type(uri).__name__}")
    text = uri.strip()
    if not text.lower().startswith(_PREFIX):
        raise CPEError(f"not a CPE 2.2 URI (missing 'cpe:/' prefix): {uri!r}")
    body = text[len(_PREFIX):]
    fields = body.split(":")
    if not fields or not fields[0]:
        raise CPEError(f"CPE URI has no part component: {uri!r}")
    part_token = fields[0].lower()
    try:
        part = CPEPart(part_token)
    except ValueError as exc:
        raise CPEError(f"unknown CPE part {part_token!r} in {uri!r}") from exc
    # Percent-decode each component; missing components default to "".
    decoded = [urllib.parse.unquote(f) for f in fields[1:]]
    decoded += [""] * (6 - len(decoded))
    vendor, product, version, update, edition, language = decoded[:6]
    if part is CPEPart.OPERATING_SYSTEM and not product:
        raise CPEError(f"operating-system CPE without a product: {uri!r}")
    return CPEName(
        part=part,
        vendor=vendor,
        product=product,
        version=version,
        update=update,
        edition=edition,
        language=language,
    )


def format_cpe_uri(cpe: CPEName) -> str:
    """Format a :class:`CPEName` back into a CPE 2.2 URI.

    Trailing empty components are omitted, matching NVD conventions.

    >>> from repro.core.enums import CPEPart
    >>> from repro.core.models import CPEName
    >>> format_cpe_uri(CPEName(CPEPart.OPERATING_SYSTEM, "debian", "debian_linux", "4.0"))
    'cpe:/o:debian:debian_linux:4.0'
    """
    components = [
        cpe.vendor,
        cpe.product,
        cpe.version,
        cpe.update,
        cpe.edition,
        cpe.language,
    ]
    while components and not components[-1]:
        components.pop()
    encoded = [urllib.parse.quote(c, safe="._-~%") for c in components]
    return _PREFIX + ":".join([cpe.part.value] + encoded)


def operating_system_cpes(cpes: Iterable[CPEName]) -> List[CPEName]:
    """Filter an iterable of CPE names down to operating-system platforms."""
    return [cpe for cpe in cpes if cpe.is_operating_system]


def cpe_matches(spec: CPEName, candidate: CPEName) -> bool:
    """Whether ``candidate`` falls under the (possibly version-less) ``spec``.

    Matching follows CPE 2.2 prefix semantics on (part, vendor, product) and
    treats an empty version in the spec as a wildcard.
    """
    if spec.part is not candidate.part:
        return False
    if spec.vendor and spec.vendor != candidate.vendor:
        return False
    if spec.product != candidate.product:
        return False
    return spec.version_obj.matches(candidate.version_obj) or spec.version == candidate.version
