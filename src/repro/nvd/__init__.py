"""NVD substrate: CPE names, CVSS v2 vectors, data-feed parsing and writing.

The paper downloads NVD XML data feeds, extracts per-entry CVE metadata and
the affected Common Platform Enumerations, and normalises (product, vendor)
pairs to the 11-OS catalogue.  This subpackage reimplements that machinery so
the rest of the library can consume either real NVD feeds or the synthetic
feeds produced by :mod:`repro.synthetic`.
"""

from repro.nvd.cpe import format_cpe_uri, parse_cpe_uri
from repro.nvd.cvss import cvss_base_score, format_cvss_vector, parse_cvss_vector
from repro.nvd.feed_parser import parse_xml_feed, parse_xml_feeds
from repro.nvd.json_feed import dump_json_feed, parse_json_feed
from repro.nvd.feed_writer import write_xml_feed
from repro.nvd.normalize import ProductNormalizer

__all__ = [
    "parse_cpe_uri",
    "format_cpe_uri",
    "parse_cvss_vector",
    "format_cvss_vector",
    "cvss_base_score",
    "parse_xml_feed",
    "parse_xml_feeds",
    "parse_json_feed",
    "dump_json_feed",
    "write_xml_feed",
    "ProductNormalizer",
]
