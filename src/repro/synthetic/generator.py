"""Attribute assignment: turning the solver's OS-set structure into CVE entries.

Besides the paper-calibrated :class:`CorpusGenerator`, this module provides a
**scalable catalogue mode** (:func:`generate_scaled_catalogue`): a
parameterised generator of large synthetic OS catalogues -- configurable
number of OS families, releases per family and sharing structure -- used by
the engine benchmarks and the sensitivity analysis to exercise the analysis
layer on 50--500 OS catalogues far beyond the paper's 11.

The :class:`~repro.synthetic.solver.OverlapSolver` decides *which sets of
operating systems* share vulnerabilities.  This module decides everything
else about each synthetic entry -- component class, access vector,
publication date, affected releases, description text, CVE identifier and
validity status -- so that the corpus, when re-analysed by
:mod:`repro.analysis`, reproduces the paper's tables:

* per-pair "No Applications" and "No App. and No Local" shared counts
  (Table III) and their per-part breakdown (Table IV) drive the class and
  access-vector assignment of shared vulnerabilities;
* per-OS component-class totals (Table II) and per-OS remote-core totals
  (Table III) drive the assignment of single-OS vulnerabilities;
* the history/observed split (Table V) and the family year curves (Figure 2)
  drive publication dates;
* the release timeline and Table VI drive the affected-version tags;
* the Unknown/Unspecified/Disputed columns of Table I drive the generation of
  entries that the validity filter must exclude.

All residual targets are tracked with floors at zero, so over-constrained
combinations degrade gracefully; the resulting (small) deviations are
reported by the benchmark harness and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import datetime as _dt
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.constants import OS_CATALOG, OS_NAMES, STUDY_PERIOD
from repro.core.enums import AccessVector, ComponentClass, CPEPart, ValidityStatus
from repro.core.models import CPEName, CVSSVector, VulnerabilityEntry
from repro.nvd.cvss import cvss_base_score
from repro.synthetic import descriptions
from repro.synthetic.calibration import PaperCalibration, Pair, pair
from repro.synthetic.solver import OverlapSolver, SolverResult

OSSet = FrozenSet[str]

#: OSes whose security trackers allow release-level correlation (Section IV-D).
RELEASE_TRACKED_OSES: Tuple[str, ...] = ("NetBSD", "Debian", "Ubuntu", "RedHat")

_CLASS_ORDER: Tuple[ComponentClass, ...] = (
    ComponentClass.DRIVER,
    ComponentClass.KERNEL,
    ComponentClass.SYSTEM_SOFTWARE,
    ComponentClass.APPLICATION,
)


@dataclass
class _Spec:
    """Mutable working record for one vulnerability being generated."""

    oses: OSSet
    component_class: Optional[ComponentClass] = None
    access: Optional[AccessVector] = None
    year: Optional[int] = None
    special_id: Optional[str] = None
    validity: ValidityStatus = ValidityStatus.VALID
    versions: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def is_core_remote(self) -> bool:
        return (
            self.component_class is not None
            and self.component_class.is_core_os
            and self.access is not None
            and self.access.is_remote
        )


class CorpusGenerator:
    """Deterministic generator for the calibrated synthetic corpus."""

    def __init__(
        self,
        calibration: Optional[PaperCalibration] = None,
        kset_targets: Optional[Mapping[int, int]] = None,
        seed: int = 20110627,
        include_invalid: bool = True,
    ) -> None:
        self.calibration = calibration or PaperCalibration()
        self.calibration.validate()
        self._solver = OverlapSolver(self.calibration, kset_targets)
        self._rng = random.Random(seed)
        self._include_invalid = include_invalid
        self.solver_result: Optional[SolverResult] = None
        self.stats: Dict[str, float] = {}

    # ------------------------------------------------------------------ API

    def generate(self) -> List[VulnerabilityEntry]:
        """Build the full corpus (valid entries plus excluded entries)."""
        calibration = self.calibration
        result = self._solver.solve()
        self.solver_result = result

        # Residual targets, all floored at zero while decremented.
        pair_noapp = {k: v[1] for k, v in calibration.table3_pairs.items()}
        pair_nolocal = {k: v[2] for k, v in calibration.table3_pairs.items()}
        pair_parts = {
            k: list(calibration.table4_pairs.get(k, (0, 0, 0)))
            for k in calibration.table3_pairs
        }
        pair_hist = {k: v[0] for k, v in calibration.table5_pairs.items()}
        pair_obs = {k: v[1] for k, v in calibration.table5_pairs.items()}
        os_class = {name: list(calibration.table2[name]) for name in OS_NAMES}
        os_remote_core = {
            name: calibration.table3_os_totals[name][2] for name in OS_NAMES
        }

        specs: List[_Spec] = []
        specs.extend(
            self._assign_specials(
                result, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
                os_class, os_remote_core,
            )
        )
        specs.extend(
            self._assign_groups(
                result, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
                os_class, os_remote_core,
            )
        )
        specs.extend(
            self._assign_pairs(
                result, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
                os_class, os_remote_core,
            )
        )
        specs.extend(self._assign_singletons(result, os_class, os_remote_core))

        self._assign_years(specs, pair_hist, pair_obs)
        self._assign_versions(specs)
        entries = self._materialise(specs)
        if self._include_invalid:
            entries.extend(self._generate_invalid())
        entries.sort(key=lambda e: (e.published, e.cve_id))
        self.stats["entries"] = float(len(entries))
        self.stats["valid_entries"] = float(sum(1 for e in entries if e.is_valid))
        return entries

    # ----------------------------------------------------- special CVEs

    def _assign_specials(
        self, result, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
        os_class, os_remote_core,
    ) -> List[_Spec]:
        specs = []
        for cve_id, (class_name, oses, _topic, year) in sorted(
            self.calibration.special_cves.items()
        ):
            component_class = ComponentClass(class_name)
            spec = _Spec(
                oses=frozenset(oses),
                component_class=component_class,
                access=AccessVector.NETWORK,
                year=year,
                special_id=cve_id,
            )
            self._consume(
                spec, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
                os_class, os_remote_core,
            )
            specs.append(spec)
        return specs

    # ----------------------------------------------------- multi-OS groups

    def _assign_groups(
        self, result, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
        os_class, os_remote_core,
    ) -> List[_Spec]:
        specs = []
        groups = sorted(result.groups, key=lambda g: (-len(g), tuple(sorted(g))))
        for group in groups:
            pairs = [pair(a, b) for a, b in itertools.combinations(sorted(group), 2)]
            if all(pair_nolocal.get(p, 0) > 0 for p in pairs):
                component_class = self._pick_core_class(pairs, pair_parts, group, os_class)
                access = AccessVector.NETWORK
            elif all(pair_noapp.get(p, 0) > 0 for p in pairs):
                component_class = self._pick_core_class(pairs, pair_parts, group, os_class)
                access = AccessVector.LOCAL
            else:
                component_class = ComponentClass.APPLICATION
                access = (
                    AccessVector.NETWORK if len(specs) % 3 else AccessVector.LOCAL
                )
            spec = _Spec(oses=group, component_class=component_class, access=access)
            self._consume(
                spec, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
                os_class, os_remote_core,
            )
            specs.append(spec)
        return specs

    @staticmethod
    def _pick_core_class(pairs, pair_parts, group, os_class) -> ComponentClass:
        """Choose Driver/Kernel/System Software for a shared core vulnerability.

        The per-pair part residuals (Table IV) vote first; per-OS class
        residuals (Table II) break ties.
        """
        votes = [0.0, 0.0, 0.0]  # driver, kernel, syssoft
        for key in pairs:
            parts = pair_parts.get(key, [0, 0, 0])
            for i in range(3):
                votes[i] += parts[i]
        if sum(votes) == 0:
            for name in group:
                for i in range(3):
                    votes[i] += os_class[name][i]
        order = (ComponentClass.DRIVER, ComponentClass.KERNEL, ComponentClass.SYSTEM_SOFTWARE)
        # Classes whose per-OS residual budget (Table II) is still positive
        # for every member take precedence, so OSes that appear almost only in
        # shared vulnerabilities (e.g. Windows 2008) do not overdraw a class.
        affordable = [
            i for i in range(3) if all(os_class[name][i] > 0 for name in group)
        ]
        candidates = affordable or list(range(3))
        # Prefer kernel on a perfect tie, matching the dominance of kernel
        # vulnerabilities among cross-OS flaws reported by the paper.
        best_index = max(candidates, key=lambda i: (votes[i], i == 1))
        return order[best_index]

    # ----------------------------------------------------- exact pairs

    def _assign_pairs(
        self, result, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
        os_class, os_remote_core,
    ) -> List[_Spec]:
        specs = []
        for key in sorted(result.pair_counts, key=lambda k: tuple(sorted(k))):
            count = result.pair_counts[key]
            n_remote_core = min(count, pair_nolocal.get(key, 0))
            n_local_core = min(
                count - n_remote_core,
                max(0, pair_noapp.get(key, 0) - n_remote_core),
            )
            n_app = count - n_remote_core - n_local_core
            parts = pair_parts.get(key, [0, 0, 0])
            part_plan: List[ComponentClass] = []
            part_plan += [ComponentClass.KERNEL] * min(n_remote_core, parts[1])
            part_plan += [ComponentClass.SYSTEM_SOFTWARE] * min(
                n_remote_core - len(part_plan), parts[2]
            )
            part_plan += [ComponentClass.DRIVER] * min(
                n_remote_core - len(part_plan), parts[0]
            )
            part_plan += [ComponentClass.KERNEL] * (n_remote_core - len(part_plan))

            for index in range(count):
                if index < n_remote_core:
                    component_class = part_plan[index]
                    access = AccessVector.NETWORK
                elif index < n_remote_core + n_local_core:
                    component_class = self._local_core_class(key, os_class)
                    access = AccessVector.LOCAL
                else:
                    component_class = ComponentClass.APPLICATION
                    access = AccessVector.NETWORK if index % 3 else AccessVector.LOCAL
                spec = _Spec(oses=key, component_class=component_class, access=access)
                self._consume(
                    spec, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
                    os_class, os_remote_core,
                )
                specs.append(spec)
        return specs

    @staticmethod
    def _local_core_class(key: Pair, os_class) -> ComponentClass:
        """Kernel vs System Software for locally-exploitable shared flaws."""
        kernel_budget = min(os_class[name][1] for name in key)
        syssoft_budget = min(os_class[name][2] for name in key)
        if kernel_budget >= syssoft_budget:
            return ComponentClass.KERNEL
        return ComponentClass.SYSTEM_SOFTWARE

    # ----------------------------------------------------- singletons

    def _assign_singletons(self, result, os_class, os_remote_core) -> List[_Spec]:
        specs = []
        for name in OS_NAMES:
            count = result.singleton_counts.get(name, 0)
            residuals = [max(0, v) for v in os_class[name]]
            plan = _largest_remainder(residuals, count)
            class_sequence: List[ComponentClass] = []
            for cls, n in zip(_CLASS_ORDER, plan):
                class_sequence.extend([cls] * n)
            # Interleave classes so years spread evenly across classes later.
            self._rng.shuffle(class_sequence)
            for index, component_class in enumerate(class_sequence):
                if component_class.is_core_os and os_remote_core[name] > 0:
                    access = AccessVector.NETWORK
                    os_remote_core[name] -= 1
                elif component_class.is_core_os:
                    access = AccessVector.LOCAL
                else:
                    access = AccessVector.NETWORK if index % 3 else AccessVector.LOCAL
                os_class[name][_CLASS_ORDER.index(component_class)] = max(
                    0, os_class[name][_CLASS_ORDER.index(component_class)] - 1
                )
                specs.append(
                    _Spec(
                        oses=frozenset((name,)),
                        component_class=component_class,
                        access=access,
                    )
                )
        return specs

    # ----------------------------------------------------- shared bookkeeping

    def _consume(
        self, spec: _Spec, pair_noapp, pair_nolocal, pair_parts, pair_hist, pair_obs,
        os_class, os_remote_core,
    ) -> None:
        """Decrement every residual target the spec contributes to."""
        is_core = spec.component_class is not None and spec.component_class.is_core_os
        is_remote_core = spec.is_core_remote
        for a, b in itertools.combinations(sorted(spec.oses), 2):
            key = pair(a, b)
            if key not in pair_noapp:
                continue
            if is_core:
                pair_noapp[key] = max(0, pair_noapp[key] - 1)
            if is_remote_core:
                pair_nolocal[key] = max(0, pair_nolocal[key] - 1)
                parts = pair_parts[key]
                part_index = {
                    ComponentClass.DRIVER: 0,
                    ComponentClass.KERNEL: 1,
                    ComponentClass.SYSTEM_SOFTWARE: 2,
                }[spec.component_class]
                parts[part_index] = max(0, parts[part_index] - 1)
                if spec.year is not None and key in pair_hist:
                    if spec.year <= 2005:
                        pair_hist[key] = max(0, pair_hist[key] - 1)
                    else:
                        pair_obs[key] = max(0, pair_obs[key] - 1)
        for name in spec.oses:
            index = _CLASS_ORDER.index(spec.component_class)
            os_class[name][index] = max(0, os_class[name][index] - 1)
            if is_remote_core:
                os_remote_core[name] = max(0, os_remote_core[name] - 1)

    # ----------------------------------------------------- years and dates

    def _assign_years(
        self,
        specs: Sequence[_Spec],
        pair_hist: Dict[Pair, int],
        pair_obs: Dict[Pair, int],
    ) -> None:
        """Choose a publication year for every spec.

        Shared remote core-OS vulnerabilities between Table V pairs follow the
        history/observed residuals exactly; everything else follows the
        Figure 2 family curves, clamped to the release year of the newest OS
        the vulnerability affects.
        """
        weights = self.calibration.figure2_weights
        # Per-OS year consumption, to bias singleton years towards the
        # Figure 2 curves after shared vulnerabilities took their share.
        consumed: Dict[str, Dict[int, int]] = {name: {} for name in OS_NAMES}

        def note(spec: _Spec) -> None:
            for name in spec.oses:
                consumed[name][spec.year] = consumed[name].get(spec.year, 0) + 1

        multi = [s for s in specs if len(s.oses) > 1 and s.year is None]
        fixed = [s for s in specs if s.year is not None]
        for spec in fixed:
            note(spec)

        for spec in multi:
            min_year = max(OS_CATALOG[name].first_release_year for name in spec.oses)
            min_year = max(min_year, STUDY_PERIOD[0].year)
            keys = [
                pair(a, b)
                for a, b in itertools.combinations(sorted(spec.oses), 2)
                if pair(a, b) in pair_hist
            ]
            year: Optional[int] = None
            if spec.is_core_remote and keys:
                hist_budget = sum(pair_hist[k] for k in keys)
                obs_budget = sum(pair_obs[k] for k in keys)
                hist_ok = all(pair_hist[k] > 0 for k in keys) and min_year <= 2005
                obs_ok = all(pair_obs[k] > 0 for k in keys)
                if hist_ok and (not obs_ok or hist_budget >= obs_budget):
                    use_history = True
                elif obs_ok:
                    use_history = False
                else:
                    use_history = hist_budget >= obs_budget and min_year <= 2005
                if use_history:
                    year = self._weighted_year(spec.oses, min_year, 2005, weights)
                    for k in keys:
                        pair_hist[k] = max(0, pair_hist[k] - 1)
                else:
                    year = self._weighted_year(spec.oses, max(min_year, 2006), 2010, weights)
                    for k in keys:
                        pair_obs[k] = max(0, pair_obs[k] - 1)
            if year is None:
                year = self._weighted_year(spec.oses, min_year, 2010, weights)
            spec.year = year
            note(spec)

        # Remote core-OS singletons honour the per-OS history/observed split
        # (TABLE5_OS_SPLIT), so single-OS baselines such as the Debian bar of
        # Figure 3 land in the right periods; everything else fills the
        # residual Figure 2 curve per OS.
        from repro.synthetic.calibration import TABLE5_OS_SPLIT

        observed_core_remote: Dict[str, int] = {name: 0 for name in OS_NAMES}
        for spec in specs:
            if spec.year is not None and spec.is_core_remote and spec.year >= 2006:
                for name in spec.oses:
                    observed_core_remote[name] += 1

        singles_by_os: Dict[str, List[_Spec]] = {}
        for spec in specs:
            if len(spec.oses) == 1 and spec.year is None:
                singles_by_os.setdefault(next(iter(spec.oses)), []).append(spec)
        for name, os_specs in singles_by_os.items():
            curve = weights.get(name, {})
            first_year = OS_CATALOG[name].first_release_year
            core_remote_specs = [s for s in os_specs if s.is_core_remote]
            other_specs = [s for s in os_specs if not s.is_core_remote]
            # Split the core-remote singletons between the two periods.
            observed_target = TABLE5_OS_SPLIT.get(name, (0, 0))[1]
            need_observed = max(0, observed_target - observed_core_remote[name])
            need_observed = min(need_observed, len(core_remote_specs))
            observed_singles = core_remote_specs[:need_observed]
            history_singles = core_remote_specs[need_observed:]
            for lo, hi, group in (
                (2006, 2010, observed_singles),
                (max(first_year, 1994), 2005, history_singles),
            ):
                lo_eff, hi_eff = min(lo, hi), max(lo, hi)
                plan = _largest_remainder(
                    [curve.get(year, 0.0) + 1e-6 for year in range(lo_eff, hi_eff + 1)],
                    len(group),
                )
                sequence: List[int] = []
                for year, n in zip(range(lo_eff, hi_eff + 1), plan):
                    sequence.extend([year] * n)
                for spec, year in zip(group, sequence):
                    spec.year = max(year, first_year)
                    consumed[name][spec.year] = consumed[name].get(spec.year, 0) + 1
            # Remaining singletons follow the residual Figure 2 curve.
            total_target = self.calibration.table1[name][0]
            normalised = _largest_remainder(
                [curve.get(year, 0.0) for year in _years()], total_target
            )
            residual = []
            for year, target in zip(_years(), normalised):
                residual.append(max(0, target - consumed[name].get(year, 0)))
            plan = _largest_remainder(residual, len(other_specs))
            year_sequence: List[int] = []
            for year, n in zip(_years(), plan):
                year_sequence.extend([year] * n)
            while len(year_sequence) < len(other_specs):
                year_sequence.append(2005)
            # No clamp to the first release year here: NVD really does list
            # some OSes in entries published before their release (the paper
            # notes seven pre-1999 entries for Windows 2000, inherited from
            # Windows NT code), and the Figure 2 weights encode that.
            for spec, year in zip(other_specs, year_sequence):
                spec.year = year

    def _weighted_year(
        self,
        oses: OSSet,
        lo: int,
        hi: int,
        weights: Mapping[str, Mapping[int, float]],
    ) -> int:
        lo = max(lo, _years()[0])
        hi = min(hi, _years()[-1])
        if lo > hi:
            return hi
        candidates = list(range(lo, hi + 1))
        scores = []
        for year in candidates:
            scores.append(sum(weights.get(name, {}).get(year, 0.0) for name in oses) + 1e-6)
        total = sum(scores)
        pick = self._rng.random() * total
        running = 0.0
        for year, score in zip(candidates, scores):
            running += score
            if pick <= running:
                return year
        return candidates[-1]

    # ----------------------------------------------------- versions (Table VI)

    def _assign_versions(self, specs: Sequence[_Spec]) -> None:
        """Tag affected releases for the OSes with usable security trackers."""
        for spec in specs:
            for name in spec.oses:
                if name not in RELEASE_TRACKED_OSES:
                    continue
                release = _release_for_year(name, spec.year or 2005)
                if release is not None:
                    spec.versions[name] = (release,)

        def find(predicate) -> Optional[_Spec]:
            for spec in specs:
                if predicate(spec):
                    return spec
            return None

        # One Debian/RedHat cross-distribution vulnerability present in both
        # Debian 4.0 and RedHat 4.0/5.0 (Table VI right-hand side).
        shared = find(
            lambda s: s.is_core_remote
            and {"Debian", "RedHat"} <= set(s.oses)
            and (s.year or 0) >= 2007
        )
        if shared is not None:
            shared.versions["Debian"] = ("4.0",)
            shared.versions["RedHat"] = ("4.0", "5.0")
        # One Debian vulnerability spanning releases 3.0 and 4.0 (left-hand
        # side of Table VI).  The RedHat 4.0/5.0 span is already provided by
        # the cross-distribution entry above, so no separate RedHat-only
        # spanning entry is added (the paper reports exactly one).
        debian_only = find(
            lambda s: s.is_core_remote and set(s.oses) == {"Debian"} and (s.year or 0) >= 2007
        )
        if debian_only is not None:
            debian_only.versions["Debian"] = ("3.0", "4.0")

    # ----------------------------------------------------- materialisation

    def _materialise(self, specs: Sequence[_Spec]) -> List[VulnerabilityEntry]:
        used_ids = set(self.calibration.special_cves)
        counters: Dict[int, int] = {}
        entries: List[VulnerabilityEntry] = []
        for index, spec in enumerate(specs):
            year = spec.year or 2005
            if spec.special_id is not None:
                cve_id = spec.special_id
            else:
                cve_id = _next_cve_id(year, counters, used_ids)
            published = _date_in_year(year, index)
            summary = descriptions.describe(
                spec.component_class, spec.access, sorted(spec.oses), salt=index
            )
            cvss = _make_cvss(spec.access, index)
            entries.append(
                VulnerabilityEntry(
                    cve_id=cve_id,
                    published=published,
                    summary=summary,
                    cvss=cvss,
                    affected_os=frozenset(spec.oses),
                    affected_versions=dict(spec.versions),
                    component_class=spec.component_class,
                    validity=ValidityStatus.VALID,
                    raw_cpes=_cpes_for(spec),
                )
            )
        return entries

    def _generate_invalid(self) -> List[VulnerabilityEntry]:
        """Entries excluded by the manual filtering step (Table I columns)."""
        calibration = self.calibration
        kinds = (
            ("unknown", 1, ValidityStatus.UNKNOWN, 60),
            ("unspecified", 2, ValidityStatus.UNSPECIFIED, 165),
            ("disputed", 3, ValidityStatus.DISPUTED, 8),
        )
        entries: List[VulnerabilityEntry] = []
        counters: Dict[int, int] = {}
        used_ids = set(calibration.special_cves)
        salt = 0
        for kind, column, validity, distinct_target in kinds:
            remaining = {
                name: calibration.table1[name][column] for name in OS_NAMES
            }
            groups: List[Tuple[str, ...]] = []
            merges_needed = sum(remaining.values()) - distinct_target
            while merges_needed > 0:
                ranked = sorted(
                    (name for name in OS_NAMES if remaining[name] > 0),
                    key=lambda n: -remaining[n],
                )
                if len(ranked) < 2:
                    break
                first = ranked[0]
                same_family = [
                    n for n in ranked[1:]
                    if OS_CATALOG[n].family is OS_CATALOG[first].family
                ]
                second = same_family[0] if same_family else ranked[1]
                groups.append((first, second))
                remaining[first] -= 1
                remaining[second] -= 1
                merges_needed -= 1
            for name in OS_NAMES:
                groups.extend([(name,)] * remaining[name])
            for group in groups:
                min_year = max(OS_CATALOG[n].first_release_year for n in group)
                year = self._weighted_year(
                    frozenset(group), max(min_year, 1994), 2010, calibration.figure2_weights
                )
                cve_id = _next_cve_id(year, counters, used_ids, start=7000)
                entries.append(
                    VulnerabilityEntry(
                        cve_id=cve_id,
                        published=_date_in_year(year, salt),
                        summary=descriptions.describe_invalid(kind, group, salt),
                        cvss=_make_cvss(AccessVector.NETWORK, salt),
                        affected_os=frozenset(group),
                        affected_versions={},
                        component_class=None,
                        validity=validity,
                        raw_cpes=_cpes_for(_Spec(oses=frozenset(group), year=year)),
                    )
                )
                salt += 1
        return entries


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _years() -> Tuple[int, ...]:
    return tuple(range(1994, 2011))


def _largest_remainder(weights: Sequence[float], total: int) -> List[int]:
    """Apportion ``total`` units proportionally to ``weights`` (deterministic)."""
    if total <= 0:
        return [0] * len(weights)
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        # Uniform fallback.
        base = total // len(weights)
        out = [base] * len(weights)
        for i in range(total - base * len(weights)):
            out[i] += 1
        return out
    exact = [w / weight_sum * total for w in weights]
    floors = [int(x) for x in exact]
    shortfall = total - sum(floors)
    remainders = sorted(
        range(len(weights)), key=lambda i: (exact[i] - floors[i], -i), reverse=True
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return floors


def _release_for_year(os_name: str, year: int) -> Optional[str]:
    """The release of ``os_name`` current in ``year`` (latest released <= year)."""
    releases = OS_CATALOG[os_name].releases
    if not releases:
        return None
    current = None
    for release in sorted(releases, key=lambda r: r.year):
        if release.year <= year:
            current = release.version
    return current or min(releases, key=lambda r: r.year).version


def _date_in_year(year: int, salt: int) -> _dt.date:
    """A deterministic publication date inside ``year``.

    Dates in 2010 stop at September 30th, matching the last feed the paper
    analysed.
    """
    month = (salt * 7) % 12 + 1
    day = (salt * 13) % 28 + 1
    if year == 2010 and month > 9:
        month = (salt % 9) + 1
    if year == STUDY_PERIOD[0].year:
        month = max(month, 1)
    return _dt.date(year, month, day)


def _next_cve_id(year: int, counters: Dict[int, int], used: set, start: int = 1000) -> str:
    counters.setdefault(year, start)
    while True:
        counters[year] += 1
        candidate = f"CVE-{year}-{counters[year]:04d}"
        if candidate not in used:
            used.add(candidate)
            return candidate


def _make_cvss(access: AccessVector, salt: int) -> CVSSVector:
    impact = ("PARTIAL", "COMPLETE", "PARTIAL", "NONE")[salt % 4]
    vector = CVSSVector(
        access_vector=access,
        access_complexity=("LOW", "MEDIUM", "HIGH")[salt % 3],
        authentication="NONE" if salt % 4 else "SINGLE",
        confidentiality_impact=impact,
        integrity_impact="PARTIAL",
        availability_impact="PARTIAL" if salt % 2 else "COMPLETE",
    )
    return CVSSVector(
        access_vector=vector.access_vector,
        access_complexity=vector.access_complexity,
        authentication=vector.authentication,
        confidentiality_impact=vector.confidentiality_impact,
        integrity_impact=vector.integrity_impact,
        availability_impact=vector.availability_impact,
        base_score=cvss_base_score(vector),
    )


# ---------------------------------------------------------------------------
# scalable catalogue mode
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ScaledCatalogue:
    """A synthetic catalogue of many OS releases plus its vulnerability corpus.

    Unlike the paper-calibrated corpus, nothing here is tied to the 11-OS
    catalogue: ``os_names`` enumerates ``n_families x releases_per_family``
    release names and every entry's ``affected_os`` draws from them.  Use
    :meth:`dataset` to get an analysis-ready view.

    ``eq=False`` keeps instances identity-hashable despite the dict-valued
    ``families`` field (regenerate from the same parameters for value
    equality -- the generator is deterministic).
    """

    os_names: Tuple[str, ...]
    #: Release names per family, in catalogue order.
    families: Mapping[str, Tuple[str, ...]]
    entries: Tuple[VulnerabilityEntry, ...]

    def dataset(self, engine: str = "bitset"):
        """An analysis dataset over this catalogue's own OS names."""
        from repro.analysis.dataset import VulnerabilityDataset

        return VulnerabilityDataset(self.entries, self.os_names, engine=engine)


#: (component class, weight) mix for scaled entries; applications dominate as
#: in the real NVD, leaving the Thin/Isolated-Thin filters non-trivial.
_SCALED_CLASS_MIX: Tuple[Tuple[ComponentClass, float], ...] = (
    (ComponentClass.APPLICATION, 0.55),
    (ComponentClass.SYSTEM_SOFTWARE, 0.20),
    (ComponentClass.KERNEL, 0.18),
    (ComponentClass.DRIVER, 0.07),
)


def generate_scaled_catalogue(
    n_families: int = 10,
    releases_per_family: int = 10,
    vulns_per_os: int = 40,
    intra_family_share: float = 0.45,
    cross_family_share: float = 0.05,
    max_cross_breadth: int = 3,
    seed: int = 20110627,
) -> ScaledCatalogue:
    """Generate a large synthetic OS catalogue with configurable sharing.

    The sharing structure mirrors what the paper observed, scaled up:

    * ``intra_family_share`` -- probability that a vulnerability reported for
      one release also affects a contiguous run of sibling releases of the
      same family (shared code lineage);
    * ``cross_family_share`` -- probability that it additionally reaches up
      to ``max_cross_breadth`` OSes of *other* families (ported components,
      inherited code bases);

    everything else (component class, access vector, publication year) is
    drawn deterministically from ``seed``, so a given parameter set always
    produces the same corpus.  With the defaults this yields a 100-OS
    catalogue of 4000 entries, the workload used by
    ``benchmarks/bench_engine.py``.
    """
    if n_families < 1 or releases_per_family < 1:
        raise ValueError("need at least one family and one release per family")
    rng = random.Random(seed)
    families: Dict[str, Tuple[str, ...]] = {}
    for family_index in range(n_families):
        family = f"F{family_index:02d}"
        families[family] = tuple(
            f"{family}-R{release_index:02d}"
            for release_index in range(releases_per_family)
        )
    os_names = tuple(name for members in families.values() for name in members)
    family_list = list(families.values())

    classes, class_weights = zip(*_SCALED_CLASS_MIX)
    entries: List[VulnerabilityEntry] = []
    counters: Dict[int, int] = {}
    used_ids: set = set()
    salt = 0
    for family_index, members in enumerate(family_list):
        for release_index, name in enumerate(members):
            for _ in range(vulns_per_os):
                affected = {name}
                if rng.random() < intra_family_share and len(members) > 1:
                    # A contiguous run of sibling releases around this one.
                    run = 1
                    while (
                        run < len(members) - 1 and rng.random() < 0.5
                    ):
                        run += 1
                    start = max(0, min(release_index - run // 2, len(members) - run - 1))
                    affected.update(members[start : start + run + 1])
                if rng.random() < cross_family_share and n_families > 1:
                    breadth = rng.randint(1, max(1, max_cross_breadth))
                    for _ in range(breadth):
                        other = rng.randrange(n_families - 1)
                        if other >= family_index:
                            other += 1
                        affected.add(rng.choice(family_list[other]))
                component_class = rng.choices(classes, class_weights)[0]
                access = (
                    AccessVector.NETWORK if rng.random() < 0.65 else AccessVector.LOCAL
                )
                year = rng.randint(1994, 2010)
                cve_id = _next_cve_id(year, counters, used_ids, start=10000)
                entries.append(
                    VulnerabilityEntry(
                        cve_id=cve_id,
                        published=_date_in_year(year, salt),
                        summary=(
                            f"Synthetic {component_class.value} vulnerability "
                            f"affecting {len(affected)} release(s) of the scaled catalogue."
                        ),
                        cvss=_make_cvss(access, salt),
                        affected_os=frozenset(affected),
                        affected_versions={},
                        component_class=component_class,
                        validity=ValidityStatus.VALID,
                    )
                )
                salt += 1
    entries.sort(key=lambda e: (e.published, e.cve_id))
    return ScaledCatalogue(
        os_names=os_names, families=dict(families), entries=tuple(entries)
    )


def _cpes_for(spec: _Spec) -> Tuple[CPEName, ...]:
    """Raw CPE names for an entry, using the catalogue's primary alias."""
    cpes: List[CPEName] = []
    for name in sorted(spec.oses):
        os_obj = OS_CATALOG[name]
        product, vendor = os_obj.cpe_aliases[0]
        versions = spec.versions.get(name, ()) or ("",)
        for version in versions:
            cpes.append(
                CPEName(
                    part=CPEPart.OPERATING_SYSTEM,
                    vendor=vendor,
                    product=product,
                    version=version,
                )
            )
    return tuple(cpes)
