"""The packaged synthetic corpus and convenience builders.

A :class:`SyntheticCorpus` holds the generated entries plus the generator
diagnostics, and knows how to serialise itself into NVD-style XML/JSON data
feeds (so the full collection pipeline can be exercised end to end) and into
the in-memory dataset consumed by :mod:`repro.analysis`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.models import VulnerabilityEntry
from repro.nvd.cpe import format_cpe_uri
from repro.nvd.cvss import format_cvss_vector
from repro.nvd.feed_parser import RawFeedEntry
from repro.nvd.feed_writer import write_yearly_feeds
from repro.nvd.json_feed import dump_json_feed
from repro.synthetic.calibration import PaperCalibration
from repro.synthetic.generator import CorpusGenerator


@dataclass
class SyntheticCorpus:
    """A generated vulnerability corpus calibrated to the paper."""

    entries: List[VulnerabilityEntry]
    calibration: PaperCalibration
    stats: Dict[str, float] = field(default_factory=dict)

    # -- views ---------------------------------------------------------------

    @property
    def valid_entries(self) -> List[VulnerabilityEntry]:
        """Entries that survive the manual validity filtering (Table I)."""
        return [entry for entry in self.entries if entry.is_valid]

    @property
    def excluded_entries(self) -> List[VulnerabilityEntry]:
        return [entry for entry in self.entries if not entry.is_valid]

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, cve_id: str) -> VulnerabilityEntry:
        """Look up an entry by CVE identifier."""
        for candidate in self.entries:
            if candidate.cve_id == cve_id:
                return candidate
        raise KeyError(f"no entry with id {cve_id!r}")

    # -- serialisation ---------------------------------------------------------

    def to_raw_feed_entries(self) -> List[RawFeedEntry]:
        """Convert the corpus into raw feed entries (for the XML/JSON writers)."""
        raw: List[RawFeedEntry] = []
        for entry in self.entries:
            raw.append(
                RawFeedEntry(
                    cve_id=entry.cve_id,
                    published=entry.published,
                    summary=entry.summary,
                    cvss_vector=format_cvss_vector(entry.cvss),
                    cpe_uris=tuple(format_cpe_uri(cpe) for cpe in entry.raw_cpes),
                )
            )
        return raw

    def write_xml_feeds(self, directory: Union[str, Path]) -> List[Path]:
        """Write the corpus as per-year NVD-style XML feeds."""
        return write_yearly_feeds(self.to_raw_feed_entries(), directory)

    def write_json_feed(self, path: Union[str, Path]) -> Path:
        """Write the corpus as a single NVD-style JSON feed."""
        return dump_json_feed(self.to_raw_feed_entries(), path)


def build_corpus(
    seed: int = 20110627,
    calibration: Optional[PaperCalibration] = None,
    kset_targets: Optional[Mapping[int, int]] = None,
    include_invalid: bool = True,
) -> SyntheticCorpus:
    """Build the calibrated synthetic corpus.

    The construction is deterministic for a given ``seed``; the default seed
    is the paper's presentation date and is used throughout the tests,
    examples and benchmarks so that everyone sees the same corpus.
    """
    generator = CorpusGenerator(
        calibration=calibration,
        kset_targets=kset_targets,
        seed=seed,
        include_invalid=include_invalid,
    )
    entries = generator.generate()
    stats = dict(generator.stats)
    if generator.solver_result is not None:
        stats.update({f"solver_{k}": v for k, v in generator.solver_result.stats.items()})
    return SyntheticCorpus(
        entries=entries,
        calibration=generator.calibration,
        stats=stats,
    )


@functools.lru_cache(maxsize=2)
def default_corpus(seed: int = 20110627) -> SyntheticCorpus:
    """A cached copy of the default corpus (shared by tests and benchmarks)."""
    return build_corpus(seed=seed)
