"""Templated CVE description text for the synthetic corpus.

The paper classifies vulnerabilities into component classes by reading the
NVD description of each entry (Section III-B).  The synthetic corpus
generates descriptions from the templates below so that the keyword-rule
classifier in :mod:`repro.classify.rules` -- a faithful automation of that
manual step -- recovers the intended class.  A small fraction of templates
are deliberately ambiguous, to exercise the classifier's fallback logic and
the manual-override mechanism in tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.core.enums import AccessVector, ComponentClass

#: Subject phrases per component class.  Each phrase contains at least one of
#: the keywords the rule classifier looks for.
_SUBJECTS: Mapping[ComponentClass, Tuple[str, ...]] = {
    ComponentClass.KERNEL: (
        "the TCP/IP stack",
        "the IPv6 protocol implementation in the kernel",
        "the kernel virtual memory subsystem",
        "the UFS file system implementation",
        "the process scheduler",
        "the system call handler",
        "kernel task management",
        "the loopback network interface handling in the kernel",
        "the signal delivery code in the kernel",
        "the ICMP error handling in the network stack",
        "the kernel core dump facility",
        "the page fault handler on x86 processors",
    ),
    ComponentClass.DRIVER: (
        "the wireless network card driver",
        "the wired ethernet adapter driver",
        "the video graphics card driver",
        "the USB web cam driver",
        "the audio card driver",
        "the Universal Plug and Play device driver",
        "the bluetooth adapter driver",
    ),
    ComponentClass.SYSTEM_SOFTWARE: (
        "the login service",
        "the default command shell",
        "the system cron daemon",
        "the syslog daemon",
        "the DHCP client daemon installed by default",
        "the DNS resolver library shipped with the base system",
        "the telnet daemon in the base system",
        "the ftp daemon provided with the distribution",
        "the printing subsystem daemon",
        "the PAM authentication modules",
        "the network configuration utility",
        "the default mail transfer agent of the base system",
    ),
    ComponentClass.APPLICATION: (
        "the bundled web browser application",
        "the database management system shipped with the distribution",
        "the instant messenger client",
        "the text editor application",
        "the email client application",
        "the FTP client application",
        "the media player application",
        "the Java virtual machine package",
        "the antivirus product",
        "the Kerberos administration application",
        "the LDAP directory server package",
        "the office word processor application",
    ),
}

#: Flaw phrases; the second element states whether the flaw is typically
#: remotely reachable, used only to make descriptions read sensibly.
_FLAWS: Sequence[Tuple[str, bool]] = (
    ("a buffer overflow that allows attackers to execute arbitrary code", True),
    ("an integer overflow leading to memory corruption", True),
    ("a format string error that allows code execution", True),
    ("a NULL pointer dereference causing a denial of service", False),
    ("a race condition that allows privilege escalation", False),
    ("improper input validation that allows a denial of service", True),
    ("a use-after-free error that allows code execution", True),
    ("an information disclosure of sensitive memory contents", True),
    ("a directory traversal that allows access to restricted files", True),
    ("missing access checks that allow local privilege escalation", False),
)

_REMOTE_CLAUSE = "Remote attackers can exploit this issue via crafted network packets."
_ADJACENT_CLAUSE = "Attackers on the local network segment can exploit this issue."
_LOCAL_CLAUSE = "Local users can exploit this issue to gain elevated privileges."


def describe(
    component_class: ComponentClass,
    access_vector: AccessVector,
    os_names: Sequence[str],
    salt: int,
) -> str:
    """Deterministically build a CVE-style description.

    ``salt`` selects among the templates so that different entries with the
    same attributes still get varied text.
    """
    subjects = _SUBJECTS[component_class]
    subject = subjects[salt % len(subjects)]
    flaw, _ = _FLAWS[(salt // len(subjects)) % len(_FLAWS)]
    if access_vector is AccessVector.NETWORK:
        clause = _REMOTE_CLAUSE
    elif access_vector is AccessVector.ADJACENT_NETWORK:
        clause = _ADJACENT_CLAUSE
    else:
        clause = _LOCAL_CLAUSE
    platform = ", ".join(sorted(os_names))
    return (
        f"{subject.capitalize()} in {platform} contains {flaw}. {clause}"
    )


def describe_invalid(kind: str, os_names: Sequence[str], salt: int) -> str:
    """Description text for entries excluded from the study.

    ``kind`` is one of ``unknown``, ``unspecified`` or ``disputed``; the text
    contains the same markers the paper's manual filtering keyed on.
    """
    platform = ", ".join(sorted(os_names))
    if kind == "unknown":
        return (
            f"Unknown vulnerability in {platform} mentioned in a vendor patch, "
            "with unknown impact and attack vectors."
        )
    if kind == "unspecified":
        return (
            f"Unspecified vulnerability in {platform} has unspecified impact and "
            "attack vectors, as referenced by a vendor advisory."
        )
    if kind == "disputed":
        return (
            f"** DISPUTED ** A reported issue in {platform} allows a denial of "
            "service; the vendor disputes that this is a vulnerability."
        )
    raise ValueError(f"unknown invalid-entry kind: {kind!r}")
