"""Calibration targets: the paper's published aggregate statistics.

Every number in this module is transcribed from the paper (Garcia et al.,
DSN 2011) and is used *only* by the synthetic-corpus generator
(:mod:`repro.synthetic.generator`) and by the benchmark harness when it
compares recomputed results against the paper.  The analysis code never reads
these targets.

Conventions
-----------
* OS names use the canonical catalogue spelling of
  :mod:`repro.core.constants` (``Windows2000`` etc.).
* Pair keys are frozensets of two OS names.
* Component-class tuples are ordered ``(Driver, Kernel, System Software,
  Application)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from repro.core.constants import OS_NAMES

Pair = FrozenSet[str]


def pair(a: str, b: str) -> Pair:
    """Convenience constructor for an unordered OS pair key."""
    if a == b:
        raise ValueError("a pair requires two distinct operating systems")
    return frozenset((a, b))


# ---------------------------------------------------------------------------
# Table I -- distribution of OS vulnerabilities in NVD
# (valid, unknown, unspecified, disputed) per OS.
# ---------------------------------------------------------------------------

TABLE1: Mapping[str, Tuple[int, int, int, int]] = {
    "OpenBSD": (142, 1, 1, 1),
    "NetBSD": (126, 0, 1, 2),
    "FreeBSD": (258, 0, 0, 2),
    "OpenSolaris": (31, 0, 40, 0),
    "Solaris": (400, 39, 109, 0),
    "Debian": (201, 3, 1, 0),
    "Ubuntu": (87, 2, 1, 0),
    "RedHat": (369, 12, 8, 1),
    "Windows2000": (481, 7, 27, 5),
    "Windows2003": (343, 4, 30, 3),
    "Windows2008": (118, 0, 3, 0),
}

#: Distinct counts reported in the last row of Table I.
TABLE1_DISTINCT: Mapping[str, int] = {
    "valid": 1887,
    "unknown": 60,
    "unspecified": 165,
    "disputed": 8,
}

# ---------------------------------------------------------------------------
# Table II -- vulnerabilities per OS component class
# (Driver, Kernel, System Software, Application) per OS.
# ---------------------------------------------------------------------------

TABLE2: Mapping[str, Tuple[int, int, int, int]] = {
    "OpenBSD": (2, 75, 33, 32),
    "NetBSD": (9, 59, 32, 26),
    "FreeBSD": (4, 147, 54, 53),
    "OpenSolaris": (0, 15, 9, 7),
    "Solaris": (2, 156, 114, 128),
    "Debian": (1, 24, 34, 142),
    "Ubuntu": (2, 22, 8, 55),
    "RedHat": (5, 89, 93, 182),
    "Windows2000": (3, 143, 132, 203),
    "Windows2003": (1, 95, 71, 176),
    "Windows2008": (0, 42, 14, 62),
}

#: Percentage of each class over the whole data set (last row of Table II).
TABLE2_PERCENTAGES: Tuple[float, float, float, float] = (1.4, 35.5, 23.2, 39.9)

# ---------------------------------------------------------------------------
# Table III -- per-OS totals under the three filters.
# (all, no-applications, no-applications-and-no-local) per OS.
# ---------------------------------------------------------------------------

TABLE3_OS_TOTALS: Mapping[str, Tuple[int, int, int]] = {
    "OpenBSD": (142, 110, 60),
    "NetBSD": (126, 100, 41),
    "FreeBSD": (258, 205, 87),
    "OpenSolaris": (31, 24, 6),
    "Solaris": (400, 272, 103),
    "Debian": (201, 59, 25),
    "Ubuntu": (87, 32, 10),
    "RedHat": (369, 187, 58),
    "Windows2000": (481, 278, 178),
    "Windows2003": (343, 167, 109),
    "Windows2008": (118, 56, 26),
}

# ---------------------------------------------------------------------------
# Table III -- shared vulnerabilities for every OS pair under the three
# filters: (all, no-applications, no-applications-and-no-local).
# ---------------------------------------------------------------------------

_TABLE3_ROWS: Sequence[Tuple[str, str, int, int, int]] = (
    ("OpenBSD", "NetBSD", 40, 32, 16),
    ("OpenBSD", "FreeBSD", 53, 48, 32),
    ("OpenBSD", "OpenSolaris", 1, 1, 0),
    ("OpenBSD", "Solaris", 12, 10, 6),
    ("OpenBSD", "Debian", 2, 2, 0),
    ("OpenBSD", "Ubuntu", 3, 1, 0),
    ("OpenBSD", "RedHat", 10, 5, 4),
    ("OpenBSD", "Windows2000", 3, 3, 3),
    ("OpenBSD", "Windows2003", 2, 2, 2),
    ("OpenBSD", "Windows2008", 1, 1, 1),
    ("NetBSD", "FreeBSD", 49, 39, 24),
    ("NetBSD", "OpenSolaris", 0, 0, 0),
    ("NetBSD", "Solaris", 15, 12, 8),
    ("NetBSD", "Debian", 3, 2, 2),
    ("NetBSD", "Ubuntu", 0, 0, 0),
    ("NetBSD", "RedHat", 7, 4, 2),
    ("NetBSD", "Windows2000", 3, 3, 3),
    ("NetBSD", "Windows2003", 1, 1, 1),
    ("NetBSD", "Windows2008", 1, 1, 1),
    ("FreeBSD", "OpenSolaris", 0, 0, 0),
    ("FreeBSD", "Solaris", 21, 15, 8),
    ("FreeBSD", "Debian", 7, 4, 1),
    ("FreeBSD", "Ubuntu", 3, 3, 0),
    ("FreeBSD", "RedHat", 20, 13, 5),
    ("FreeBSD", "Windows2000", 4, 4, 4),
    ("FreeBSD", "Windows2003", 2, 2, 2),
    ("FreeBSD", "Windows2008", 1, 1, 1),
    ("OpenSolaris", "Solaris", 27, 22, 6),
    ("OpenSolaris", "Debian", 1, 1, 0),
    ("OpenSolaris", "Ubuntu", 1, 1, 0),
    ("OpenSolaris", "RedHat", 1, 1, 0),
    ("OpenSolaris", "Windows2000", 0, 0, 0),
    ("OpenSolaris", "Windows2003", 0, 0, 0),
    ("OpenSolaris", "Windows2008", 0, 0, 0),
    ("Solaris", "Debian", 4, 4, 2),
    ("Solaris", "Ubuntu", 2, 2, 0),
    ("Solaris", "RedHat", 13, 8, 4),
    ("Solaris", "Windows2000", 9, 3, 3),
    ("Solaris", "Windows2003", 7, 1, 1),
    ("Solaris", "Windows2008", 0, 0, 0),
    ("Debian", "Ubuntu", 12, 6, 2),
    ("Debian", "RedHat", 61, 26, 11),
    ("Debian", "Windows2000", 1, 1, 1),
    ("Debian", "Windows2003", 0, 0, 0),
    ("Debian", "Windows2008", 0, 0, 0),
    ("Ubuntu", "RedHat", 25, 8, 1),
    ("Ubuntu", "Windows2000", 1, 1, 1),
    ("Ubuntu", "Windows2003", 0, 0, 0),
    ("Ubuntu", "Windows2008", 0, 0, 0),
    ("RedHat", "Windows2000", 2, 1, 1),
    ("RedHat", "Windows2003", 1, 0, 0),
    ("RedHat", "Windows2008", 0, 0, 0),
    ("Windows2000", "Windows2003", 253, 116, 81),
    ("Windows2000", "Windows2008", 70, 27, 14),
    ("Windows2003", "Windows2008", 95, 39, 18),
)

TABLE3_PAIRS: Mapping[Pair, Tuple[int, int, int]] = {
    pair(a, b): (all_count, noapp, nolocal) for a, b, all_count, noapp, nolocal in _TABLE3_ROWS
}

# ---------------------------------------------------------------------------
# Table IV -- shared vulnerabilities on Isolated Thin Servers, broken down by
# OS part: (Driver, Kernel, System Software).  Pairs not listed share zero.
# ---------------------------------------------------------------------------

_TABLE4_ROWS: Sequence[Tuple[str, str, int, int, int]] = (
    ("Windows2000", "Windows2003", 0, 40, 41),
    ("OpenBSD", "FreeBSD", 1, 14, 17),
    ("NetBSD", "FreeBSD", 2, 13, 9),
    ("Windows2003", "Windows2008", 0, 10, 8),
    ("OpenBSD", "NetBSD", 1, 8, 7),
    ("Windows2000", "Windows2008", 0, 8, 6),
    ("Debian", "RedHat", 0, 5, 6),
    ("FreeBSD", "Solaris", 0, 5, 3),
    ("NetBSD", "Solaris", 0, 4, 4),
    ("OpenBSD", "Solaris", 0, 5, 1),
    ("OpenSolaris", "Solaris", 0, 3, 3),
    ("FreeBSD", "RedHat", 0, 1, 4),
    ("FreeBSD", "Windows2000", 1, 3, 0),
    ("OpenBSD", "RedHat", 0, 1, 3),
    ("Solaris", "RedHat", 0, 3, 1),
    ("NetBSD", "Windows2000", 1, 2, 0),
    ("OpenBSD", "Windows2000", 0, 3, 0),
    ("Solaris", "Windows2000", 0, 3, 0),
    ("Solaris", "Debian", 0, 1, 1),
    ("OpenBSD", "Windows2003", 0, 2, 0),
    ("FreeBSD", "Windows2003", 0, 2, 0),
    ("Debian", "Ubuntu", 0, 0, 2),
    ("NetBSD", "Debian", 0, 0, 2),
    ("NetBSD", "RedHat", 0, 0, 2),
    ("NetBSD", "Windows2003", 0, 1, 0),
    ("NetBSD", "Windows2008", 0, 1, 0),
    ("OpenBSD", "Windows2008", 0, 1, 0),
    ("FreeBSD", "Windows2008", 0, 1, 0),
    ("Solaris", "Windows2003", 0, 1, 0),
    ("FreeBSD", "Debian", 0, 0, 1),
    ("Debian", "Windows2000", 0, 0, 1),
    ("Ubuntu", "RedHat", 0, 0, 1),
    ("Ubuntu", "Windows2000", 0, 0, 1),
    ("RedHat", "Windows2000", 0, 0, 1),
)

TABLE4_PAIRS: Mapping[Pair, Tuple[int, int, int]] = {
    pair(a, b): (driver, kernel, syssoft) for a, b, driver, kernel, syssoft in _TABLE4_ROWS
}

# ---------------------------------------------------------------------------
# Table V -- history (1994-2005) vs observed (2006-2010) shared
# vulnerabilities for Isolated Thin Servers, eight OSes.
# Values are (history, observed) per pair.
# ---------------------------------------------------------------------------

_TABLE5_ROWS: Sequence[Tuple[str, str, int, int]] = (
    ("OpenBSD", "NetBSD", 9, 7),
    ("OpenBSD", "FreeBSD", 25, 7),
    ("OpenBSD", "Solaris", 6, 0),
    ("OpenBSD", "Debian", 0, 0),
    ("OpenBSD", "RedHat", 4, 0),
    ("OpenBSD", "Windows2000", 2, 1),
    ("OpenBSD", "Windows2003", 1, 1),
    ("NetBSD", "FreeBSD", 15, 9),
    ("NetBSD", "Solaris", 8, 0),
    ("NetBSD", "Debian", 2, 0),
    ("NetBSD", "RedHat", 2, 0),
    ("NetBSD", "Windows2000", 2, 1),
    ("NetBSD", "Windows2003", 0, 1),
    ("FreeBSD", "Solaris", 8, 0),
    ("FreeBSD", "Debian", 1, 0),
    ("FreeBSD", "RedHat", 5, 0),
    ("FreeBSD", "Windows2000", 3, 1),
    ("FreeBSD", "Windows2003", 1, 1),
    ("Solaris", "Debian", 2, 0),
    ("Solaris", "RedHat", 3, 1),
    ("Solaris", "Windows2000", 3, 0),
    ("Solaris", "Windows2003", 1, 0),
    ("Debian", "RedHat", 10, 1),
    ("Debian", "Windows2000", 0, 1),
    ("Debian", "Windows2003", 0, 0),
    ("RedHat", "Windows2000", 0, 1),
    ("RedHat", "Windows2003", 0, 0),
    ("Windows2000", "Windows2003", 35, 46),
)

TABLE5_PAIRS: Mapping[Pair, Tuple[int, int]] = {
    pair(a, b): (history, observed) for a, b, history, observed in _TABLE5_ROWS
}

#: Per-OS split of Isolated-Thin-Server vulnerabilities between history and
#: observed periods, for the single-OS baseline of Figure 3.  Only Debian's
#: split is given explicitly in the paper (16 history / 9 observed); the other
#: entries are derived from the per-OS remote non-application totals and the
#: family temporal trends of Figure 2 and are used only to shape year
#: assignment.
TABLE5_OS_SPLIT: Mapping[str, Tuple[int, int]] = {
    "OpenBSD": (48, 12),
    "NetBSD": (31, 10),
    "FreeBSD": (62, 25),
    "OpenSolaris": (0, 6),
    "Solaris": (70, 33),
    "Debian": (16, 9),
    "Ubuntu": (4, 6),
    "RedHat": (42, 16),
    "Windows2000": (120, 58),
    "Windows2003": (48, 61),
    "Windows2008": (0, 26),
}

# ---------------------------------------------------------------------------
# Figure 3 -- history vs observed shared vulnerabilities for the evaluated
# replica configurations (values read off the bar chart).
# ---------------------------------------------------------------------------

FIGURE3: Mapping[str, Tuple[int, int]] = {
    "Debian": (16, 9),
    "Set1": (11, 1),
    "Set2": (12, 1),
    "Set3": (26, 2),
    "Set4": (9, 2),
}

# ---------------------------------------------------------------------------
# Table VI -- shared vulnerabilities between (OS, release) pairs for Debian
# and RedHat releases, Isolated Thin Server configuration.
# ---------------------------------------------------------------------------

TABLE6_RELEASES: Mapping[str, Tuple[Tuple[str, int], ...]] = {
    "Debian": (("2.1", 1999), ("3.0", 2002), ("4.0", 2007)),
    "RedHat": (("6.2*", 2000), ("4.0", 2005), ("5.0", 2007)),
}

TABLE6: Mapping[Tuple[Tuple[str, str], Tuple[str, str]], int] = {
    (("Debian", "2.1"), ("Debian", "3.0")): 0,
    (("Debian", "2.1"), ("Debian", "4.0")): 0,
    (("Debian", "3.0"), ("Debian", "4.0")): 1,
    (("RedHat", "6.2*"), ("RedHat", "4.0")): 0,
    (("RedHat", "6.2*"), ("RedHat", "5.0")): 0,
    (("RedHat", "4.0"), ("RedHat", "5.0")): 1,
    (("Debian", "2.1"), ("RedHat", "6.2*")): 0,
    (("Debian", "2.1"), ("RedHat", "4.0")): 0,
    (("Debian", "2.1"), ("RedHat", "5.0")): 0,
    (("Debian", "3.0"), ("RedHat", "6.2*")): 0,
    (("Debian", "3.0"), ("RedHat", "4.0")): 0,
    (("Debian", "3.0"), ("RedHat", "5.0")): 0,
    (("Debian", "4.0"), ("RedHat", "6.2*")): 0,
    (("Debian", "4.0"), ("RedHat", "4.0")): 1,
    (("Debian", "4.0"), ("RedHat", "5.0")): 1,
}

# ---------------------------------------------------------------------------
# Section IV-B -- vulnerabilities shared by larger OS groups, and the three
# named multi-OS CVEs.
# ---------------------------------------------------------------------------

#: Number of vulnerabilities affecting at least k operating systems.
KSET_TARGETS: Mapping[int, int] = {3: 285, 4: 102, 5: 9}

#: The three named multi-OS vulnerabilities and the OS sets they are given in
#: the synthetic corpus.  The paper names the CVEs and the group sizes (six,
#: six and nine operating systems) but not the exact memberships.  The
#: memberships below are chosen to be (a) plausible for DNS, DHCP and TCP
#: implementations and (b) consistent with the published per-pair counts:
#: these CVEs are remote, non-application vulnerabilities, so their members
#: must form cliques of the non-zero cells of the *Isolated Thin Server*
#: columns of Tables III/IV.  Those columns admit no clique larger than six
#: among the 11 studied distributions, so the memberships are capped at
#: six/five/four OSes; the remaining platforms the paper alludes to are
#: assumed to fall outside the 11-OS study set.  EXPERIMENTS.md records this
#: deviation.
SPECIAL_CVES: Mapping[str, Tuple[str, Tuple[str, ...], str, int]] = {
    # cve_id: (component class name, affected OSes, short topic, year)
    # The DNS and DHCP daemons ship with the distributions but are not needed
    # for basic operation, so they are classified as Application (they are
    # visible in the Fat Server analysis and the k-set study, but filtered out
    # of the Thin/Isolated-Thin tables, which keeps Tables IV/V consistent).
    "CVE-2008-1447": (
        "Application",
        ("OpenBSD", "FreeBSD", "Solaris", "Debian", "Ubuntu", "RedHat"),
        "DNS protocol cache poisoning due to insufficient transaction ID randomness",
        2008,
    ),
    "CVE-2007-5365": (
        "Application",
        ("OpenBSD", "NetBSD", "FreeBSD", "Solaris", "Debian", "RedHat"),
        "DHCP daemon stack-based buffer overflow in option handling",
        2007,
    ),
    "CVE-2008-4609": (
        "Kernel",
        (
            "OpenBSD",
            "NetBSD",
            "FreeBSD",
            "Windows2000",
            "Windows2003",
        ),
        "TCP state-table exhaustion denial of service in the TCP design",
        2008,
    ),
}

# ---------------------------------------------------------------------------
# Figure 2 -- temporal shape of vulnerability publication per OS.  The values
# are fractional weights per year (they need not sum to one; the generator
# normalises them).  They approximate the curves of Figure 2: BSD and Linux
# peak early-to-mid 2000s and decline, Windows 2000/2003 peak around
# 2002-2005, recent OSes only have recent years.
# ---------------------------------------------------------------------------

YEARS: Tuple[int, ...] = tuple(range(1994, 2011))

FIGURE2_YEAR_WEIGHTS: Mapping[str, Mapping[int, float]] = {
    "OpenBSD": {1996: 2, 1997: 4, 1998: 6, 1999: 10, 2000: 14, 2001: 16, 2002: 20,
                2003: 14, 2004: 12, 2005: 10, 2006: 8, 2007: 7, 2008: 6, 2009: 5, 2010: 4},
    "NetBSD": {1996: 2, 1997: 3, 1998: 5, 1999: 8, 2000: 10, 2001: 12, 2002: 14,
               2003: 12, 2004: 10, 2005: 12, 2006: 10, 2007: 8, 2008: 6, 2009: 5, 2010: 4},
    "FreeBSD": {1996: 4, 1997: 8, 1998: 10, 1999: 14, 2000: 22, 2001: 24, 2002: 30,
                2003: 24, 2004: 22, 2005: 24, 2006: 20, 2007: 16, 2008: 14, 2009: 12, 2010: 8},
    "OpenSolaris": {2008: 10, 2009: 14, 2010: 7},
    "Solaris": {1994: 4, 1995: 8, 1996: 10, 1997: 12, 1998: 14, 1999: 18, 2000: 20,
                2001: 22, 2002: 26, 2003: 28, 2004: 30, 2005: 32, 2006: 36, 2007: 48,
                2008: 40, 2009: 32, 2010: 20},
    "Debian": {1997: 4, 1998: 8, 1999: 12, 2000: 16, 2001: 20, 2002: 24, 2003: 22,
               2004: 26, 2005: 28, 2006: 16, 2007: 10, 2008: 8, 2009: 5, 2010: 2},
    "Ubuntu": {2005: 10, 2006: 20, 2007: 18, 2008: 16, 2009: 14, 2010: 9},
    "RedHat": {1997: 6, 1998: 10, 1999: 18, 2000: 30, 2001: 34, 2002: 40, 2003: 34,
               2004: 36, 2005: 38, 2006: 30, 2007: 26, 2008: 24, 2009: 22, 2010: 21},
    "Windows2000": {1997: 2, 1998: 3, 1999: 10, 2000: 40, 2001: 44, 2002: 56, 2003: 48,
                    2004: 52, 2005: 56, 2006: 50, 2007: 40, 2008: 36, 2009: 28, 2010: 16},
    "Windows2003": {2003: 20, 2004: 36, 2005: 44, 2006: 48, 2007: 44, 2008: 56,
                    2009: 52, 2010: 43},
    "Windows2008": {2008: 30, 2009: 48, 2010: 40},
}

# ---------------------------------------------------------------------------
# Summary findings (Section IV-E) used as regression targets by the
# benchmark harness.
# ---------------------------------------------------------------------------

SUMMARY_FINDINGS: Mapping[str, float] = {
    # Average reduction of shared vulnerabilities from Fat Server to Isolated
    # Thin Server, over OS pairs (percent).
    "fat_to_isolated_reduction_pct": 56.0,
    # Fraction of the 55 pairs with at most one shared vulnerability under the
    # Isolated Thin Server configuration (percent).
    "pairs_with_at_most_one_pct": 50.0,
    # Driver share of all reported OS vulnerabilities (percent, upper bound).
    "driver_share_pct": 1.5,
}


@dataclass(frozen=True)
class PaperCalibration:
    """Bundle of all calibration targets, with validation helpers.

    A frozen dataclass so a calibration instance can be shared freely between
    the generator, tests and benchmarks.
    """

    table1: Mapping[str, Tuple[int, int, int, int]] = field(default_factory=lambda: dict(TABLE1))
    table2: Mapping[str, Tuple[int, int, int, int]] = field(default_factory=lambda: dict(TABLE2))
    table3_os_totals: Mapping[str, Tuple[int, int, int]] = field(
        default_factory=lambda: dict(TABLE3_OS_TOTALS)
    )
    table3_pairs: Mapping[Pair, Tuple[int, int, int]] = field(
        default_factory=lambda: dict(TABLE3_PAIRS)
    )
    table4_pairs: Mapping[Pair, Tuple[int, int, int]] = field(
        default_factory=lambda: dict(TABLE4_PAIRS)
    )
    table5_pairs: Mapping[Pair, Tuple[int, int]] = field(
        default_factory=lambda: dict(TABLE5_PAIRS)
    )
    table6: Mapping[Tuple[Tuple[str, str], Tuple[str, str]], int] = field(
        default_factory=lambda: dict(TABLE6)
    )
    figure2_weights: Mapping[str, Mapping[int, float]] = field(
        default_factory=lambda: {k: dict(v) for k, v in FIGURE2_YEAR_WEIGHTS.items()}
    )
    figure3: Mapping[str, Tuple[int, int]] = field(default_factory=lambda: dict(FIGURE3))
    kset_targets: Mapping[int, int] = field(default_factory=lambda: dict(KSET_TARGETS))
    special_cves: Mapping[str, Tuple[str, Tuple[str, ...], str, int]] = field(
        default_factory=lambda: dict(SPECIAL_CVES)
    )

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency of the transcription.

        These checks reproduce consistency facts that hold in the paper, e.g.
        that the Table II class counts sum to the Table I valid counts and
        that the Table IV part counts sum to the Table III isolated-thin pair
        counts.  A failed check indicates a transcription error, not a
        modelling limitation.
        """
        for os_name in OS_NAMES:
            valid = self.table1[os_name][0]
            class_total = sum(self.table2[os_name])
            if valid != class_total:
                raise ValueError(
                    f"Table I/II mismatch for {os_name}: {valid} valid vs "
                    f"{class_total} classified"
                )
            all_total, noapp, nolocal = self.table3_os_totals[os_name]
            if all_total != valid:
                raise ValueError(f"Table I/III mismatch for {os_name}")
            apps = self.table2[os_name][3]
            if noapp != valid - apps:
                raise ValueError(f"Table II/III no-application mismatch for {os_name}")
            if not 0 <= nolocal <= noapp:
                raise ValueError(f"Table III filter ordering violated for {os_name}")
        for key, (all_count, noapp, nolocal) in self.table3_pairs.items():
            if not all_count >= noapp >= nolocal >= 0:
                raise ValueError(f"Table III pair {sorted(key)} is not monotone")
        for key, parts in self.table4_pairs.items():
            expected = self.table3_pairs[key][2]
            if sum(parts) != expected:
                raise ValueError(
                    f"Table III/IV mismatch for {sorted(key)}: {sum(parts)} != {expected}"
                )
        for key, (history, observed) in self.table5_pairs.items():
            expected = self.table3_pairs[key][2]
            if history + observed != expected:
                raise ValueError(
                    f"Table III/V mismatch for {sorted(key)}: "
                    f"{history}+{observed} != {expected}"
                )

    # -- convenience accessors ----------------------------------------------

    def pair_target(self, a: str, b: str) -> Tuple[int, int, int]:
        """Shared-vulnerability targets (all, no-app, no-app-no-local) for a pair."""
        return self.table3_pairs.get(pair(a, b), (0, 0, 0))

    def pair_parts(self, a: str, b: str) -> Tuple[int, int, int]:
        """Isolated-thin shared counts per part (driver, kernel, syssoft)."""
        return self.table4_pairs.get(pair(a, b), (0, 0, 0))

    def pair_periods(self, a: str, b: str) -> Tuple[int, int]:
        """(history, observed) isolated-thin shared counts, when available."""
        return self.table5_pairs.get(pair(a, b), (-1, -1))

    def all_pairs(self) -> Dict[Pair, Tuple[int, int, int]]:
        return dict(self.table3_pairs)
