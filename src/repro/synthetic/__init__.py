"""Synthetic, calibrated NVD corpus.

This environment has no network access, so the real NVD data feeds the paper
mined cannot be downloaded.  This subpackage builds the closest synthetic
equivalent: a deterministic corpus of CVE-like entries whose aggregate
statistics are calibrated to the numbers the paper publishes (Tables I-VI,
the temporal series of Figure 2, the replica-set evaluation of Figure 3, the
k-set counts of Section IV-B and the three named multi-OS CVEs), and which is
serialised through the same NVD feed formats the real collector would parse.

The analysis layer (:mod:`repro.analysis`) never reads the calibration
targets; every table and figure is recomputed from the generated corpus.
"""

from repro.synthetic.calibration import PaperCalibration
from repro.synthetic.corpus import SyntheticCorpus, build_corpus
from repro.synthetic.evolution import CorpusDelta, evolve_corpus
from repro.synthetic.generator import (
    CorpusGenerator,
    ScaledCatalogue,
    generate_scaled_catalogue,
)

__all__ = [
    "PaperCalibration",
    "CorpusDelta",
    "CorpusGenerator",
    "ScaledCatalogue",
    "evolve_corpus",
    "generate_scaled_catalogue",
    "SyntheticCorpus",
    "build_corpus",
]
