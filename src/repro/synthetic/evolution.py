"""Synthetic corpus evolution: deterministic NVD *modified*-feed deltas.

The study's corpus is not static -- NVD keeps republishing entries with
corrected descriptions, CPE lists and even withdrawals.  This module
fabricates that process for the synthetic corpus so the incremental
pipeline (:mod:`repro.snapshots`) can be exercised, property-tested and
benchmarked offline:

:func:`evolve_corpus` picks a deterministic sample of entries (optionally
restricted to those affecting a target OS), perturbs their summaries (a
content change that shifts the entry digest without moving the entry's
position in publication order), optionally withdraws a few entries with
``** REJECT **`` tombstones, and returns a :class:`CorpusDelta` ready to be
serialised as a modified feed (:func:`~repro.nvd.feed_writer
.write_modified_feed`) or applied directly via
:meth:`~repro.snapshots.delta.DeltaIngestPipeline.apply_raw`.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.models import VulnerabilityEntry
from repro.nvd.feed_parser import RawFeedEntry
from repro.nvd.feed_writer import rejection_entry, write_modified_feed
from repro.synthetic.corpus import SyntheticCorpus


@dataclass(frozen=True)
class CorpusDelta:
    """One synthetic modified-feed delta over a corpus."""

    #: Republished entries (changed content), in publication order.
    modified: Tuple[RawFeedEntry, ...]
    #: Tombstone entries withdrawing CVEs, in publication order.
    rejected: Tuple[RawFeedEntry, ...]
    #: The seed the delta was derived from (provenance).
    seed: int

    @property
    def entries(self) -> Tuple[RawFeedEntry, ...]:
        """All feed entries of the delta (modifications plus tombstones)."""
        return (*self.modified, *self.rejected)

    @property
    def modified_ids(self) -> Tuple[str, ...]:
        return tuple(entry.cve_id for entry in self.modified)

    @property
    def rejected_ids(self) -> Tuple[str, ...]:
        return tuple(entry.cve_id for entry in self.rejected)

    def write_feed(self, path: Union[str, Path]) -> Path:
        """Serialise the delta as a modified XML feed."""
        return write_modified_feed(list(self.entries), path)


def _revision_suffix(rng: random.Random) -> str:
    """A neutral advisory-revision sentence appended to a summary.

    The wording avoids every validity-filter keyword (*unknown*,
    *unspecified*, *disputed*), so a revision changes the entry's content
    digest without flipping its validity status or component class.
    """
    revision = rng.randrange(2, 9)
    return f" Advisory revised (rev {revision}) with additional references."


def evolve_corpus(
    corpus: SyntheticCorpus,
    fraction: float = 0.01,
    seed: int = 20110627,
    target_os: Optional[str] = None,
    rejections: int = 0,
    entry_filter: Optional[Callable[[VulnerabilityEntry], bool]] = None,
) -> CorpusDelta:
    """Derive a deterministic modified-feed delta from a corpus.

    ``fraction`` of the corpus (at least one entry) is republished with a
    revised summary; ``target_os`` restricts the sample to entries affecting
    that OS, which is how the selective-invalidation tests build deltas with
    a known blast radius (``entry_filter`` narrows the candidates further,
    e.g. to entries a server-configuration filter admits).  ``rejections``
    additionally withdraws that many *other* sampled entries via
    ``** REJECT **`` tombstones.  The same input parameters always yield the
    same delta.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if rejections < 0:
        raise ValueError("rejections must be non-negative")
    rng = random.Random(seed)
    candidates = [
        entry
        for entry in corpus.entries
        if (target_os is None or target_os in entry.affected_os)
        and (entry_filter is None or entry_filter(entry))
    ]
    if not candidates:
        raise ValueError(
            f"no corpus entries affect {target_os!r}; cannot derive a delta"
        )
    wanted = max(1, round(len(candidates) * fraction))
    if wanted + rejections > len(candidates):
        raise ValueError(
            f"cannot sample {wanted} modifications plus {rejections} rejections "
            f"from {len(candidates)} candidate entries"
        )
    sampled = rng.sample(sorted(candidates, key=lambda e: e.cve_id), wanted + rejections)
    to_modify, to_reject = sampled[:wanted], sampled[wanted:]

    raw_by_id = {raw.cve_id: raw for raw in corpus.to_raw_feed_entries()}
    modified: List[RawFeedEntry] = []
    for entry in sorted(to_modify, key=lambda e: (e.published, e.cve_id)):
        raw = raw_by_id[entry.cve_id]
        modified.append(
            dataclasses.replace(raw, summary=raw.summary + _revision_suffix(rng))
        )
    rejected = [
        rejection_entry(entry.cve_id, entry.published)
        for entry in sorted(to_reject, key=lambda e: (e.published, e.cve_id))
    ]
    return CorpusDelta(
        modified=tuple(modified), rejected=tuple(rejected), seed=seed
    )
