"""Constructive solver for the affected-OS-set structure of the corpus.

The paper publishes per-OS vulnerability totals (Table I) and per-pair shared
counts (Table III), plus the number of vulnerabilities shared by three, four
and five OSes and three named CVEs shared by six and nine OSes
(Section IV-B).  It does *not* publish the affected-OS set of every
vulnerability, so the synthetic corpus has to reconstruct a multiset of OS
subsets that is consistent with the published aggregates.

The solver works in four phases:

1. subtract the contribution of the three named multi-OS CVEs from the pair
   targets;
2. greedily place k-OS groups (k = 5, 4, 3) to approach the paper's
   higher-order sharing counts, always choosing the k-clique whose minimum
   remaining pair budget is largest (so no pair target is overdrawn);
3. repair per-OS feasibility: if the pairwise structure would overshoot an
   OS's total vulnerability count, merge pair triangles into triples (this
   keeps every pair count intact while reducing each member's total by one);
4. emit the remaining pair budgets as exactly-two-OS vulnerabilities and fill
   each OS up to its Table I total with single-OS vulnerabilities.

All choices are deterministic, so the corpus is reproducible bit-for-bit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.constants import OS_NAMES
from repro.core.exceptions import CalibrationError
from repro.synthetic.calibration import PaperCalibration, Pair, pair

OSSet = FrozenSet[str]


@dataclass
class SolverResult:
    """Output of the overlap solver."""

    #: Named multi-OS CVEs (cve_id -> affected OS set), placed first.
    special_groups: Dict[str, OSSet]
    #: Multi-OS (k >= 3) groups produced by the greedy/repair phases.
    groups: List[OSSet]
    #: Remaining exactly-two-OS vulnerabilities: pair -> count.
    pair_counts: Dict[Pair, int]
    #: Single-OS vulnerabilities per OS.
    singleton_counts: Dict[str, int]
    #: Diagnostics (targets met / shortfalls).
    stats: Dict[str, float] = field(default_factory=dict)

    # -- derived views ------------------------------------------------------

    def implied_os_totals(self) -> Dict[str, int]:
        """Number of distinct vulnerabilities per OS implied by the structure."""
        totals = {name: 0 for name in OS_NAMES}
        for group in self.special_groups.values():
            for name in group:
                totals[name] += 1
        for group in self.groups:
            for name in group:
                totals[name] += 1
        for key, count in self.pair_counts.items():
            for name in key:
                totals[name] += count
        for name, count in self.singleton_counts.items():
            totals[name] += count
        return totals

    def implied_pair_totals(self) -> Dict[Pair, int]:
        """Shared-vulnerability count per OS pair implied by the structure."""
        totals: Dict[Pair, int] = {}
        for group in list(self.special_groups.values()) + list(self.groups):
            for a, b in itertools.combinations(sorted(group), 2):
                key = pair(a, b)
                totals[key] = totals.get(key, 0) + 1
        for key, count in self.pair_counts.items():
            if count:
                totals[key] = totals.get(key, 0) + count
        return totals

    def total_distinct(self) -> int:
        """Total number of distinct vulnerabilities in the structure."""
        return (
            len(self.special_groups)
            + len(self.groups)
            + sum(self.pair_counts.values())
            + sum(self.singleton_counts.values())
        )

    def all_groups(self) -> List[OSSet]:
        """Every affected-OS set, expanded (one element per vulnerability)."""
        out: List[OSSet] = list(self.special_groups.values())
        out.extend(self.groups)
        for key, count in sorted(self.pair_counts.items(), key=lambda kv: sorted(kv[0])):
            out.extend([key] * count)
        for name in OS_NAMES:
            out.extend([frozenset((name,))] * self.singleton_counts.get(name, 0))
        return out


class OverlapSolver:
    """Builds the affected-OS-set multiset from the calibration targets."""

    def __init__(
        self,
        calibration: Optional[PaperCalibration] = None,
        kset_targets: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.calibration = calibration or PaperCalibration()
        self.calibration.validate()
        targets = dict(kset_targets or self.calibration.kset_targets)
        self._ge3 = targets.get(3, 0)
        self._ge4 = targets.get(4, 0)
        self._ge5 = targets.get(5, 0)
        if not self._ge3 >= self._ge4 >= self._ge5 >= 0:
            raise CalibrationError("k-set targets must be monotonically decreasing in k")

    # -- public API ----------------------------------------------------------

    def solve(self) -> SolverResult:
        calibration = self.calibration
        pair_rem: Dict[Pair, int] = {
            key: counts[0] for key, counts in calibration.table3_pairs.items()
        }
        valid_totals = {name: calibration.table1[name][0] for name in OS_NAMES}

        special_groups = {
            cve_id: frozenset(oses)
            for cve_id, (_cls, oses, _topic, _year) in calibration.special_cves.items()
        }
        self._subtract_groups(pair_rem, special_groups.values())

        specials_ge = {k: sum(1 for g in special_groups.values() if len(g) >= k) for k in (3, 4, 5)}
        exact5 = max(0, self._ge5 - specials_ge[5])
        exact4 = max(0, (self._ge4 - specials_ge[4]) - exact5)
        exact3 = max(0, (self._ge3 - specials_ge[3]) - exact5 - exact4)

        groups: List[OSSet] = []
        shortfalls: Dict[int, int] = {}
        for size, count in ((5, exact5), (4, exact4), (3, exact3)):
            placed = self._place_groups(pair_rem, size, count, groups)
            shortfalls[size] = count - placed

        repaired = self._repair_totals(pair_rem, valid_totals, special_groups, groups)

        singleton_counts = self._singleton_counts(
            pair_rem, valid_totals, special_groups, groups
        )

        result = SolverResult(
            special_groups=special_groups,
            groups=groups,
            pair_counts={key: count for key, count in pair_rem.items() if count > 0},
            singleton_counts=singleton_counts,
            stats={
                "shortfall_3": float(shortfalls[3]),
                "shortfall_4": float(shortfalls[4]),
                "shortfall_5": float(shortfalls[5]),
                "repair_triples": float(repaired),
                "distinct": float(0),  # filled below
            },
        )
        result.stats["distinct"] = float(result.total_distinct())
        self._check(result)
        return result

    # -- phases --------------------------------------------------------------

    @staticmethod
    def _subtract_groups(pair_rem: Dict[Pair, int], groups) -> None:
        for group in groups:
            for a, b in itertools.combinations(sorted(group), 2):
                key = pair(a, b)
                if key in pair_rem and pair_rem[key] > 0:
                    pair_rem[key] -= 1

    def _place_groups(
        self,
        pair_rem: Dict[Pair, int],
        size: int,
        count: int,
        groups: List[OSSet],
    ) -> int:
        """Greedily place ``count`` groups of ``size`` OSes; return how many fit."""
        placed = 0
        candidates = [frozenset(c) for c in itertools.combinations(OS_NAMES, size)]
        for _ in range(count):
            best: Optional[OSSet] = None
            best_key: Tuple[int, int, Tuple[str, ...]] = (-1, -1, ())
            for candidate in candidates:
                budgets = [
                    pair_rem.get(pair(a, b), 0)
                    for a, b in itertools.combinations(sorted(candidate), 2)
                ]
                minimum = min(budgets)
                if minimum < 1:
                    continue
                key = (minimum, sum(budgets), tuple(sorted(candidate)))
                if key > best_key:
                    best_key = key
                    best = candidate
            if best is None:
                break
            for a, b in itertools.combinations(sorted(best), 2):
                pair_rem[pair(a, b)] -= 1
            groups.append(best)
            placed += 1
        return placed

    def _repair_totals(
        self,
        pair_rem: Dict[Pair, int],
        valid_totals: Mapping[str, int],
        special_groups: Mapping[str, OSSet],
        groups: List[OSSet],
    ) -> int:
        """Merge pair triangles into triples until no OS total is overdrawn."""

        def implied(name: str) -> int:
            total = sum(1 for g in special_groups.values() if name in g)
            total += sum(1 for g in groups if name in g)
            total += sum(count for key, count in pair_rem.items() if name in key)
            return total

        repaired = 0
        for _ in range(10_000):  # hard bound; each iteration makes progress
            overdrawn = [
                name for name in OS_NAMES if implied(name) > valid_totals[name]
            ]
            if not overdrawn:
                break
            name = max(overdrawn, key=lambda n: implied(n) - valid_totals[n])
            triangle = self._find_triangle(pair_rem, name)
            if triangle is None:
                raise CalibrationError(
                    f"cannot repair OS total for {name}: no pair triangle available"
                )
            for a, b in itertools.combinations(sorted(triangle), 2):
                pair_rem[pair(a, b)] -= 1
            groups.append(triangle)
            repaired += 1
        else:  # pragma: no cover - defensive
            raise CalibrationError("feasibility repair did not converge")
        return repaired

    @staticmethod
    def _find_triangle(pair_rem: Dict[Pair, int], name: str) -> Optional[OSSet]:
        """A triangle of positive pair budgets containing ``name``, if any.

        Prefers the triangle whose minimum budget is largest, so repair never
        starves a small pair target.
        """
        best: Optional[OSSet] = None
        best_key: Tuple[int, Tuple[str, ...]] = (-1, ())
        others = [n for n in OS_NAMES if n != name]
        for a, b in itertools.combinations(others, 2):
            budgets = (
                pair_rem.get(pair(name, a), 0),
                pair_rem.get(pair(name, b), 0),
                pair_rem.get(pair(a, b), 0),
            )
            minimum = min(budgets)
            if minimum < 1:
                continue
            key = (minimum, tuple(sorted((name, a, b))))
            if key > best_key:
                best_key = key
                best = frozenset((name, a, b))
        return best

    @staticmethod
    def _singleton_counts(
        pair_rem: Mapping[Pair, int],
        valid_totals: Mapping[str, int],
        special_groups: Mapping[str, OSSet],
        groups: Sequence[OSSet],
    ) -> Dict[str, int]:
        singles: Dict[str, int] = {}
        for name in OS_NAMES:
            implied = sum(1 for g in special_groups.values() if name in g)
            implied += sum(1 for g in groups if name in g)
            implied += sum(count for key, count in pair_rem.items() if name in key)
            singles[name] = valid_totals[name] - implied
        return singles

    def _check(self, result: SolverResult) -> None:
        """Post-conditions: per-OS totals exact, pair totals exact, no negatives."""
        calibration = self.calibration
        totals = result.implied_os_totals()
        for name in OS_NAMES:
            expected = calibration.table1[name][0]
            if totals[name] != expected:
                raise CalibrationError(
                    f"solver produced {totals[name]} vulnerabilities for {name}, "
                    f"expected {expected}"
                )
            if result.singleton_counts[name] < 0:
                raise CalibrationError(f"negative singleton count for {name}")
        pair_totals = result.implied_pair_totals()
        for key, (target, _noapp, _nolocal) in calibration.table3_pairs.items():
            actual = pair_totals.get(key, 0)
            if actual != target:
                raise CalibrationError(
                    f"solver produced {actual} shared vulnerabilities for "
                    f"{sorted(key)}, expected {target}"
                )
