"""Typed facade over the SQLite vulnerability database."""

from __future__ import annotations

import datetime as _dt
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constants import OS_CATALOG
from repro.core.enums import AccessVector, ComponentClass, ValidityStatus
from repro.core.exceptions import DatabaseError
from repro.core.models import CVSSVector, OperatingSystem, VulnerabilityEntry
from repro.db.schema import migrate_connection
from repro.snapshots.digests import entry_digest

#: Batch size for ``cve_id IN (...)`` queries; safely below the 999-variable
#: limit of older SQLite builds (SQLITE_MAX_VARIABLE_NUMBER).
_CVE_ID_CHUNK = 500


class VulnerabilityDatabase:
    """SQLite-backed store with the schema of the paper's Figure 1.

    The database can be in-memory (the default, convenient for analysis runs
    and tests) or on disk.  It offers typed insert/load operations plus access
    to the raw connection for the SQL analysis queries in
    :mod:`repro.db.queries`.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._path = str(path)
        self._conn = sqlite3.connect(self._path)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._create_schema()
        self._os_ids: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def _create_schema(self) -> None:
        migrate_connection(self._conn)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "VulnerabilityDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (for ad-hoc queries)."""
        return self._conn

    # -- operating systems -----------------------------------------------------

    def register_os_catalog(
        self, catalog: Optional[Mapping[str, OperatingSystem]] = None
    ) -> None:
        """Insert the OS catalogue (names, families, releases)."""
        catalog = catalog or OS_CATALOG
        with self._conn:
            for os_obj in catalog.values():
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO os (name, family, vendor, first_release_year)"
                    " VALUES (?, ?, ?, ?)",
                    (os_obj.name, os_obj.family.value, os_obj.vendor, os_obj.first_release_year),
                )
                if cursor.rowcount:
                    os_id = cursor.lastrowid
                else:
                    # Already registered (idempotent re-registration).
                    os_id = self._os_id(os_obj.name)
                for release in os_obj.releases:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO os_release (os_id, version, year)"
                        " VALUES (?, ?, ?)",
                        (os_id, release.version, release.year),
                    )
        self._os_ids = {
            row["name"]: row["os_id"]
            for row in self._conn.execute("SELECT os_id, name FROM os")
        }

    def _os_id(self, name: str) -> int:
        if name in self._os_ids:
            return self._os_ids[name]
        row = self._conn.execute("SELECT os_id FROM os WHERE name = ?", (name,)).fetchone()
        if row is None:
            raise DatabaseError(
                f"operating system {name!r} is not registered; call register_os_catalog first"
            )
        self._os_ids[name] = row["os_id"]
        return row["os_id"]

    def os_names(self) -> List[str]:
        return [row["name"] for row in self._conn.execute("SELECT name FROM os ORDER BY os_id")]

    # -- vulnerabilities -------------------------------------------------------

    def insert_entry(self, entry: VulnerabilityEntry) -> int:
        """Insert one entry (and its relationships); returns the row id."""
        try:
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO vulnerability"
                    " (cve_id, published, summary, validity, entry_digest, tombstoned)"
                    " VALUES (?, ?, ?, ?, ?, 0)",
                    (
                        entry.cve_id,
                        entry.published.isoformat(),
                        entry.summary,
                        entry.validity.value,
                        entry_digest(entry),
                    ),
                )
                vuln_id = cursor.lastrowid
                self._insert_relationships(vuln_id, entry)
        except sqlite3.IntegrityError as exc:
            raise DatabaseError(f"cannot insert {entry.cve_id}: {exc}") from exc
        return vuln_id

    def _insert_relationships(self, vuln_id: int, entry: VulnerabilityEntry) -> None:
        """Insert the type, CVSS and OS rows of an entry (inside a txn)."""
        self._conn.execute(
            "INSERT INTO vulnerability_type (vuln_id, component_class) VALUES (?, ?)",
            (
                vuln_id,
                entry.component_class.value if entry.component_class else None,
            ),
        )
        cvss = entry.cvss
        self._conn.execute(
            "INSERT INTO cvss (vuln_id, access_vector, access_complexity,"
            " authentication, confidentiality_impact, integrity_impact,"
            " availability_impact, base_score) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                vuln_id,
                cvss.access_vector.value,
                cvss.access_complexity,
                cvss.authentication,
                cvss.confidentiality_impact,
                cvss.integrity_impact,
                cvss.availability_impact,
                cvss.base_score,
            ),
        )
        for name in sorted(entry.affected_os):
            versions = ",".join(entry.affected_versions.get(name, ()))
            self._conn.execute(
                "INSERT OR IGNORE INTO os_vuln (os_id, vuln_id, versions)"
                " VALUES (?, ?, ?)",
                (self._os_id(name), vuln_id, versions),
            )

    # -- incremental (delta) operations ---------------------------------------

    def upsert_entry(self, entry: VulnerabilityEntry) -> str:
        """Insert or update one entry by CVE id; returns what happened.

        The outcome is one of ``"added"`` (no row existed), ``"modified"``
        (the stored normalized content differed, including resurrecting a
        tombstoned entry) or ``"unchanged"`` (same content digest -- the
        update is skipped entirely, which is what makes delta re-application
        idempotent and cheap).
        """
        digest = entry_digest(entry)
        row = self._conn.execute(
            "SELECT vuln_id, entry_digest, tombstoned FROM vulnerability"
            " WHERE cve_id = ?",
            (entry.cve_id,),
        ).fetchone()
        if row is None:
            self.insert_entry(entry)
            return "added"
        if row["entry_digest"] == digest and not row["tombstoned"]:
            return "unchanged"
        vuln_id = row["vuln_id"]
        try:
            with self._conn:
                self._conn.execute(
                    "UPDATE vulnerability SET published = ?, summary = ?,"
                    " validity = ?, entry_digest = ?, tombstoned = 0"
                    " WHERE vuln_id = ?",
                    (
                        entry.published.isoformat(),
                        entry.summary,
                        entry.validity.value,
                        digest,
                        vuln_id,
                    ),
                )
                for table in ("vulnerability_type", "cvss", "os_vuln",
                              "security_protection"):
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE vuln_id = ?", (vuln_id,)
                    )
                self._insert_relationships(vuln_id, entry)
        except sqlite3.IntegrityError as exc:
            raise DatabaseError(f"cannot update {entry.cve_id}: {exc}") from exc
        return "modified"

    def tombstone_entry(self, cve_id: str) -> bool:
        """Soft-delete an entry; returns whether a live row was tombstoned.

        The row (and its relationships) stays in place so snapshot history
        can still reference it; every load/count/digest path excludes
        tombstoned rows.  Tombstoning an already-tombstoned or unknown entry
        is a no-op returning ``False``.
        """
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE vulnerability SET tombstoned = 1"
                " WHERE cve_id = ? AND tombstoned = 0",
                (cve_id,),
            )
        return cursor.rowcount > 0

    def live_state(self) -> Dict[str, str]:
        """Mapping of live (non-tombstoned) CVE ids to entry digests.

        Digests missing from the stored rows (databases migrated from schema
        version 1) are backfilled on the fly, so the result is always
        complete.
        """
        state: Dict[str, str] = {}
        missing: List[str] = []
        for row in self._conn.execute(
            "SELECT cve_id, entry_digest FROM vulnerability WHERE tombstoned = 0"
        ):
            if row["entry_digest"]:
                state[row["cve_id"]] = row["entry_digest"]
            else:
                missing.append(row["cve_id"])
        if missing:
            backfilled = {
                entry.cve_id: entry_digest(entry)
                for entry in self.load_entries(cve_ids=missing)
            }
            with self._conn:
                for cve_id, digest in backfilled.items():
                    self._conn.execute(
                        "UPDATE vulnerability SET entry_digest = ? WHERE cve_id = ?",
                        (digest, cve_id),
                    )
            state.update(backfilled)
        return state

    def insert_entries(self, entries: Iterable[VulnerabilityEntry]) -> int:
        """Insert a batch of entries; returns the number inserted."""
        count = 0
        for entry in entries:
            self.insert_entry(entry)
            count += 1
        return count

    def entry_count(self, only_valid: bool = False) -> int:
        query = "SELECT COUNT(*) AS n FROM vulnerability WHERE tombstoned = 0"
        if only_valid:
            query += " AND validity = 'Valid'"
        return int(self._conn.execute(query).fetchone()["n"])

    def load_entries(
        self,
        only_valid: bool = False,
        cve_ids: Optional[Sequence[str]] = None,
    ) -> List[VulnerabilityEntry]:
        """Materialise database rows back into :class:`VulnerabilityEntry` objects.

        Tombstoned entries are never returned.  ``cve_ids`` restricts the
        load to the given identifiers (used by the snapshot store to fetch
        only the entries a commit actually changed).
        """
        conditions = ["v.tombstoned = 0"]
        parameters: List[object] = []
        if only_valid:
            conditions.append("v.validity = 'Valid'")
        if cve_ids is not None:
            if not cve_ids:
                return []
            if len(cve_ids) > _CVE_ID_CHUNK:
                # Stay under SQLITE_MAX_VARIABLE_NUMBER (999 on older
                # builds): query in chunks, then restore the global order.
                entries: List[VulnerabilityEntry] = []
                for start in range(0, len(cve_ids), _CVE_ID_CHUNK):
                    entries.extend(
                        self.load_entries(
                            only_valid=only_valid,
                            cve_ids=cve_ids[start : start + _CVE_ID_CHUNK],
                        )
                    )
                entries.sort(key=lambda entry: (entry.published, entry.cve_id))
                return entries
            placeholders = ",".join("?" for _ in cve_ids)
            conditions.append(f"v.cve_id IN ({placeholders})")
            parameters.extend(cve_ids)
        where = "WHERE " + " AND ".join(conditions)
        rows = self._conn.execute(
            f"""
            SELECT v.vuln_id, v.cve_id, v.published, v.summary, v.validity,
                   t.component_class,
                   c.access_vector, c.access_complexity, c.authentication,
                   c.confidentiality_impact, c.integrity_impact,
                   c.availability_impact, c.base_score
            FROM vulnerability v
            JOIN vulnerability_type t ON t.vuln_id = v.vuln_id
            JOIN cvss c ON c.vuln_id = v.vuln_id
            {where}
            ORDER BY v.published, v.cve_id
            """,
            parameters,
        ).fetchall()
        if cve_ids is None:
            os_rows = self._conn.execute(
                """
                SELECT ov.vuln_id, o.name, ov.versions
                FROM os_vuln ov JOIN os o ON o.os_id = ov.os_id
                """
            ).fetchall()
        else:
            # Restricted loads only need the matched rows' relationships --
            # not a full os_vuln scan per call (or per chunk).
            vuln_ids = [row["vuln_id"] for row in rows]
            os_rows = (
                self._conn.execute(
                    f"""
                    SELECT ov.vuln_id, o.name, ov.versions
                    FROM os_vuln ov JOIN os o ON o.os_id = ov.os_id
                    WHERE ov.vuln_id IN ({",".join("?" for _ in vuln_ids)})
                    """,
                    vuln_ids,
                ).fetchall()
                if vuln_ids
                else []
            )
        affected: Dict[int, Dict[str, Tuple[str, ...]]] = {}
        for row in os_rows:
            versions = tuple(v for v in row["versions"].split(",") if v)
            affected.setdefault(row["vuln_id"], {})[row["name"]] = versions
        entries: List[VulnerabilityEntry] = []
        for row in rows:
            os_versions = affected.get(row["vuln_id"], {})
            entries.append(
                VulnerabilityEntry(
                    cve_id=row["cve_id"],
                    published=_dt.date.fromisoformat(row["published"]),
                    summary=row["summary"],
                    cvss=CVSSVector(
                        access_vector=AccessVector(row["access_vector"]),
                        access_complexity=row["access_complexity"],
                        authentication=row["authentication"],
                        confidentiality_impact=row["confidentiality_impact"],
                        integrity_impact=row["integrity_impact"],
                        availability_impact=row["availability_impact"],
                        base_score=row["base_score"],
                    ),
                    affected_os=frozenset(os_versions),
                    affected_versions=os_versions,
                    component_class=(
                        ComponentClass(row["component_class"])
                        if row["component_class"]
                        else None
                    ),
                    validity=ValidityStatus(row["validity"]),
                )
            )
        return entries

    # -- updates (hand enrichment) ----------------------------------------------

    def set_component_class(self, cve_id: str, component_class: ComponentClass) -> None:
        """Record a (possibly revised) manual classification for an entry."""
        row = self._conn.execute(
            "SELECT vuln_id FROM vulnerability WHERE cve_id = ?", (cve_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"unknown CVE identifier {cve_id!r}")
        with self._conn:
            self._conn.execute(
                "UPDATE vulnerability_type SET component_class = ? WHERE vuln_id = ?",
                (component_class.value, row["vuln_id"]),
            )

    def set_validity(self, cve_id: str, validity: ValidityStatus) -> None:
        """Record a manual validity decision for an entry."""
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE vulnerability SET validity = ? WHERE cve_id = ?",
                (validity.value, cve_id),
            )
        if cursor.rowcount == 0:
            raise DatabaseError(f"unknown CVE identifier {cve_id!r}")
