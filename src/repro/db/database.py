"""Typed facade over the SQLite vulnerability database."""

from __future__ import annotations

import datetime as _dt
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constants import OS_CATALOG
from repro.core.enums import AccessVector, ComponentClass, ValidityStatus
from repro.core.exceptions import DatabaseError
from repro.core.models import CVSSVector, OperatingSystem, VulnerabilityEntry
from repro.db.schema import SCHEMA_STATEMENTS


class VulnerabilityDatabase:
    """SQLite-backed store with the schema of the paper's Figure 1.

    The database can be in-memory (the default, convenient for analysis runs
    and tests) or on disk.  It offers typed insert/load operations plus access
    to the raw connection for the SQL analysis queries in
    :mod:`repro.db.queries`.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._path = str(path)
        self._conn = sqlite3.connect(self._path)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._create_schema()
        self._os_ids: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def _create_schema(self) -> None:
        with self._conn:
            for statement in SCHEMA_STATEMENTS:
                self._conn.execute(statement)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "VulnerabilityDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (for ad-hoc queries)."""
        return self._conn

    # -- operating systems -----------------------------------------------------

    def register_os_catalog(
        self, catalog: Optional[Mapping[str, OperatingSystem]] = None
    ) -> None:
        """Insert the OS catalogue (names, families, releases)."""
        catalog = catalog or OS_CATALOG
        with self._conn:
            for os_obj in catalog.values():
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO os (name, family, vendor, first_release_year)"
                    " VALUES (?, ?, ?, ?)",
                    (os_obj.name, os_obj.family.value, os_obj.vendor, os_obj.first_release_year),
                )
                if cursor.rowcount:
                    os_id = cursor.lastrowid
                else:
                    # Already registered (idempotent re-registration).
                    os_id = self._os_id(os_obj.name)
                for release in os_obj.releases:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO os_release (os_id, version, year)"
                        " VALUES (?, ?, ?)",
                        (os_id, release.version, release.year),
                    )
        self._os_ids = {
            row["name"]: row["os_id"]
            for row in self._conn.execute("SELECT os_id, name FROM os")
        }

    def _os_id(self, name: str) -> int:
        if name in self._os_ids:
            return self._os_ids[name]
        row = self._conn.execute("SELECT os_id FROM os WHERE name = ?", (name,)).fetchone()
        if row is None:
            raise DatabaseError(
                f"operating system {name!r} is not registered; call register_os_catalog first"
            )
        self._os_ids[name] = row["os_id"]
        return row["os_id"]

    def os_names(self) -> List[str]:
        return [row["name"] for row in self._conn.execute("SELECT name FROM os ORDER BY os_id")]

    # -- vulnerabilities -------------------------------------------------------

    def insert_entry(self, entry: VulnerabilityEntry) -> int:
        """Insert one entry (and its relationships); returns the row id."""
        try:
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO vulnerability (cve_id, published, summary, validity)"
                    " VALUES (?, ?, ?, ?)",
                    (
                        entry.cve_id,
                        entry.published.isoformat(),
                        entry.summary,
                        entry.validity.value,
                    ),
                )
                vuln_id = cursor.lastrowid
                self._conn.execute(
                    "INSERT INTO vulnerability_type (vuln_id, component_class) VALUES (?, ?)",
                    (
                        vuln_id,
                        entry.component_class.value if entry.component_class else None,
                    ),
                )
                cvss = entry.cvss
                self._conn.execute(
                    "INSERT INTO cvss (vuln_id, access_vector, access_complexity,"
                    " authentication, confidentiality_impact, integrity_impact,"
                    " availability_impact, base_score) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        vuln_id,
                        cvss.access_vector.value,
                        cvss.access_complexity,
                        cvss.authentication,
                        cvss.confidentiality_impact,
                        cvss.integrity_impact,
                        cvss.availability_impact,
                        cvss.base_score,
                    ),
                )
                for name in sorted(entry.affected_os):
                    versions = ",".join(entry.affected_versions.get(name, ()))
                    self._conn.execute(
                        "INSERT OR IGNORE INTO os_vuln (os_id, vuln_id, versions)"
                        " VALUES (?, ?, ?)",
                        (self._os_id(name), vuln_id, versions),
                    )
        except sqlite3.IntegrityError as exc:
            raise DatabaseError(f"cannot insert {entry.cve_id}: {exc}") from exc
        return vuln_id

    def insert_entries(self, entries: Iterable[VulnerabilityEntry]) -> int:
        """Insert a batch of entries; returns the number inserted."""
        count = 0
        for entry in entries:
            self.insert_entry(entry)
            count += 1
        return count

    def entry_count(self, only_valid: bool = False) -> int:
        query = "SELECT COUNT(*) AS n FROM vulnerability"
        if only_valid:
            query += " WHERE validity = 'Valid'"
        return int(self._conn.execute(query).fetchone()["n"])

    def load_entries(self, only_valid: bool = False) -> List[VulnerabilityEntry]:
        """Materialise database rows back into :class:`VulnerabilityEntry` objects."""
        where = "WHERE v.validity = 'Valid'" if only_valid else ""
        rows = self._conn.execute(
            f"""
            SELECT v.vuln_id, v.cve_id, v.published, v.summary, v.validity,
                   t.component_class,
                   c.access_vector, c.access_complexity, c.authentication,
                   c.confidentiality_impact, c.integrity_impact,
                   c.availability_impact, c.base_score
            FROM vulnerability v
            JOIN vulnerability_type t ON t.vuln_id = v.vuln_id
            JOIN cvss c ON c.vuln_id = v.vuln_id
            {where}
            ORDER BY v.published, v.cve_id
            """
        ).fetchall()
        os_rows = self._conn.execute(
            """
            SELECT ov.vuln_id, o.name, ov.versions
            FROM os_vuln ov JOIN os o ON o.os_id = ov.os_id
            """
        ).fetchall()
        affected: Dict[int, Dict[str, Tuple[str, ...]]] = {}
        for row in os_rows:
            versions = tuple(v for v in row["versions"].split(",") if v)
            affected.setdefault(row["vuln_id"], {})[row["name"]] = versions
        entries: List[VulnerabilityEntry] = []
        for row in rows:
            os_versions = affected.get(row["vuln_id"], {})
            entries.append(
                VulnerabilityEntry(
                    cve_id=row["cve_id"],
                    published=_dt.date.fromisoformat(row["published"]),
                    summary=row["summary"],
                    cvss=CVSSVector(
                        access_vector=AccessVector(row["access_vector"]),
                        access_complexity=row["access_complexity"],
                        authentication=row["authentication"],
                        confidentiality_impact=row["confidentiality_impact"],
                        integrity_impact=row["integrity_impact"],
                        availability_impact=row["availability_impact"],
                        base_score=row["base_score"],
                    ),
                    affected_os=frozenset(os_versions),
                    affected_versions=os_versions,
                    component_class=(
                        ComponentClass(row["component_class"])
                        if row["component_class"]
                        else None
                    ),
                    validity=ValidityStatus(row["validity"]),
                )
            )
        return entries

    # -- updates (hand enrichment) ----------------------------------------------

    def set_component_class(self, cve_id: str, component_class: ComponentClass) -> None:
        """Record a (possibly revised) manual classification for an entry."""
        row = self._conn.execute(
            "SELECT vuln_id FROM vulnerability WHERE cve_id = ?", (cve_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"unknown CVE identifier {cve_id!r}")
        with self._conn:
            self._conn.execute(
                "UPDATE vulnerability_type SET component_class = ? WHERE vuln_id = ?",
                (component_class.value, row["vuln_id"]),
            )

    def set_validity(self, cve_id: str, validity: ValidityStatus) -> None:
        """Record a manual validity decision for an entry."""
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE vulnerability SET validity = ? WHERE cve_id = ?",
                (validity.value, cve_id),
            )
        if cursor.rowcount == 0:
            raise DatabaseError(f"unknown CVE identifier {cve_id!r}")
