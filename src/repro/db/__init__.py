"""SQL storage of the vulnerability study data.

The paper loads the parsed NVD feeds into an SQL database with a custom
schema (Figure 1) because it makes hand-enrichment (component classes, OS
release metadata), data cleaning (product-name normalisation) and the
aggregation queries convenient.  This subpackage reproduces that database on
SQLite:

* :mod:`repro.db.schema` -- the DDL for the tables of Figure 1;
* :mod:`repro.db.database` -- :class:`VulnerabilityDatabase`, the typed
  facade over the SQLite connection;
* :mod:`repro.db.ingest` -- the feed -> database pipeline (parse, normalise,
  validity-filter, classify, insert);
* :mod:`repro.db.queries` -- the canned aggregation queries behind the
  paper's tables, expressed in SQL.
"""

from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline, IngestReport
from repro.db.schema import SCHEMA_STATEMENTS

__all__ = [
    "VulnerabilityDatabase",
    "IngestPipeline",
    "IngestReport",
    "SCHEMA_STATEMENTS",
]
