"""Canned SQL aggregation queries.

These queries express the paper's main aggregations directly in SQL against
the Figure 1 schema, as the authors did.  The in-memory analysis layer
(:mod:`repro.analysis`) computes the same results from
:class:`~repro.core.models.VulnerabilityEntry` objects; tests cross-check the
two implementations against each other.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.db.database import VulnerabilityDatabase


def os_validity_counts(db: VulnerabilityDatabase) -> Dict[str, Dict[str, int]]:
    """Per-OS counts of Valid / Unknown / Unspecified / Disputed entries (Table I)."""
    rows = db.connection.execute(
        """
        SELECT o.name AS os_name, v.validity AS validity, COUNT(*) AS n
        FROM vulnerability v
        JOIN os_vuln ov ON ov.vuln_id = v.vuln_id
        JOIN os o ON o.os_id = ov.os_id
        GROUP BY o.name, v.validity
        """
    ).fetchall()
    out: Dict[str, Dict[str, int]] = {}
    for row in rows:
        out.setdefault(row["os_name"], {})[row["validity"]] = row["n"]
    return out


def os_class_counts(db: VulnerabilityDatabase) -> Dict[str, Dict[str, int]]:
    """Per-OS counts per component class, valid entries only (Table II)."""
    rows = db.connection.execute(
        """
        SELECT o.name AS os_name, t.component_class AS class, COUNT(*) AS n
        FROM vulnerability v
        JOIN vulnerability_type t ON t.vuln_id = v.vuln_id
        JOIN os_vuln ov ON ov.vuln_id = v.vuln_id
        JOIN os o ON o.os_id = ov.os_id
        WHERE v.validity = 'Valid'
        GROUP BY o.name, t.component_class
        """
    ).fetchall()
    out: Dict[str, Dict[str, int]] = {}
    for row in rows:
        out.setdefault(row["os_name"], {})[row["class"]] = row["n"]
    return out


def pair_shared_counts(
    db: VulnerabilityDatabase,
    exclude_applications: bool = False,
    only_remote: bool = False,
) -> Dict[Tuple[str, str], int]:
    """Shared vulnerabilities per OS pair (Table III), under optional filters."""
    conditions = ["v.validity = 'Valid'"]
    if exclude_applications:
        conditions.append("t.component_class != 'Application'")
    if only_remote:
        conditions.append("c.access_vector != 'LOCAL'")
    where = " AND ".join(conditions)
    rows = db.connection.execute(
        f"""
        SELECT oa.name AS os_a, ob.name AS os_b, COUNT(DISTINCT v.vuln_id) AS n
        FROM vulnerability v
        JOIN vulnerability_type t ON t.vuln_id = v.vuln_id
        JOIN cvss c ON c.vuln_id = v.vuln_id
        JOIN os_vuln va ON va.vuln_id = v.vuln_id
        JOIN os_vuln vb ON vb.vuln_id = v.vuln_id AND vb.os_id > va.os_id
        JOIN os oa ON oa.os_id = va.os_id
        JOIN os ob ON ob.os_id = vb.os_id
        WHERE {where}
        GROUP BY oa.name, ob.name
        """
    ).fetchall()
    return {
        tuple(sorted((row["os_a"], row["os_b"]))): row["n"] for row in rows
    }


def yearly_counts(db: VulnerabilityDatabase) -> Dict[str, Dict[int, int]]:
    """Vulnerabilities published per OS per year, valid entries only (Figure 2)."""
    rows = db.connection.execute(
        """
        SELECT o.name AS os_name,
               CAST(strftime('%Y', v.published) AS INTEGER) AS year,
               COUNT(*) AS n
        FROM vulnerability v
        JOIN os_vuln ov ON ov.vuln_id = v.vuln_id
        JOIN os o ON o.os_id = ov.os_id
        WHERE v.validity = 'Valid'
        GROUP BY o.name, year
        """
    ).fetchall()
    out: Dict[str, Dict[int, int]] = {}
    for row in rows:
        out.setdefault(row["os_name"], {})[row["year"]] = row["n"]
    return out


def distinct_valid_count(db: VulnerabilityDatabase) -> int:
    """Number of distinct valid vulnerabilities (last row of Table I)."""
    row = db.connection.execute(
        "SELECT COUNT(*) AS n FROM vulnerability WHERE validity = 'Valid'"
    ).fetchone()
    return int(row["n"])


def shared_by_at_least(db: VulnerabilityDatabase, k: int) -> List[str]:
    """CVE identifiers of valid vulnerabilities affecting at least ``k`` OSes."""
    rows = db.connection.execute(
        """
        SELECT v.cve_id AS cve_id, COUNT(ov.os_id) AS n
        FROM vulnerability v
        JOIN os_vuln ov ON ov.vuln_id = v.vuln_id
        WHERE v.validity = 'Valid'
        GROUP BY v.vuln_id
        HAVING n >= ?
        ORDER BY n DESC, v.cve_id
        """,
        (k,),
    ).fetchall()
    return [row["cve_id"] for row in rows]
