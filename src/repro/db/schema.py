"""SQLite schema reproducing Figure 1 of the paper.

Tables:

* ``os`` -- the operating-system platforms of interest, enriched with family
  and first-release year (the by-hand enrichment described in Section III);
* ``os_release`` -- catalogued releases per OS (used by the Section IV-D
  release-level analysis);
* ``vulnerability`` -- one row per CVE entry (name, publication date,
  summary, validity status);
* ``vulnerability_type`` -- the component class assigned to each entry;
* ``cvss`` -- the CVSS v2 base metrics per entry (the paper keeps several
  ``cvss_*`` lookup tables purely as a storage optimisation; a single table
  carries the same information here);
* ``security_protection`` -- the security attribute affected on exploitation;
* ``os_vuln`` -- the many-to-many relationship between vulnerabilities and
  operating systems, with the affected versions.
"""

from __future__ import annotations

from typing import Tuple

SCHEMA_STATEMENTS: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS os (
        os_id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE,
        family TEXT NOT NULL,
        vendor TEXT NOT NULL,
        first_release_year INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS os_release (
        release_id INTEGER PRIMARY KEY,
        os_id INTEGER NOT NULL REFERENCES os(os_id),
        version TEXT NOT NULL,
        year INTEGER NOT NULL,
        UNIQUE (os_id, version)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS vulnerability (
        vuln_id INTEGER PRIMARY KEY,
        cve_id TEXT NOT NULL UNIQUE,
        published DATE NOT NULL,
        summary TEXT NOT NULL,
        validity TEXT NOT NULL DEFAULT 'Valid'
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS vulnerability_type (
        vuln_id INTEGER PRIMARY KEY REFERENCES vulnerability(vuln_id),
        component_class TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS cvss (
        vuln_id INTEGER PRIMARY KEY REFERENCES vulnerability(vuln_id),
        access_vector TEXT NOT NULL,
        access_complexity TEXT NOT NULL,
        authentication TEXT NOT NULL,
        confidentiality_impact TEXT NOT NULL,
        integrity_impact TEXT NOT NULL,
        availability_impact TEXT NOT NULL,
        base_score REAL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS security_protection (
        vuln_id INTEGER NOT NULL REFERENCES vulnerability(vuln_id),
        attribute TEXT NOT NULL,
        PRIMARY KEY (vuln_id, attribute)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS os_vuln (
        os_id INTEGER NOT NULL REFERENCES os(os_id),
        vuln_id INTEGER NOT NULL REFERENCES vulnerability(vuln_id),
        versions TEXT NOT NULL DEFAULT '',
        PRIMARY KEY (os_id, vuln_id)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_os_vuln_vuln ON os_vuln(vuln_id)",
    "CREATE INDEX IF NOT EXISTS idx_vuln_published ON vulnerability(published)",
    "CREATE INDEX IF NOT EXISTS idx_vuln_validity ON vulnerability(validity)",
)
