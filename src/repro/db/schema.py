"""SQLite schema reproducing Figure 1 of the paper.

Tables:

* ``os`` -- the operating-system platforms of interest, enriched with family
  and first-release year (the by-hand enrichment described in Section III);
* ``os_release`` -- catalogued releases per OS (used by the Section IV-D
  release-level analysis);
* ``vulnerability`` -- one row per CVE entry (name, publication date,
  summary, validity status);
* ``vulnerability_type`` -- the component class assigned to each entry;
* ``cvss`` -- the CVSS v2 base metrics per entry (the paper keeps several
  ``cvss_*`` lookup tables purely as a storage optimisation; a single table
  carries the same information here);
* ``security_protection`` -- the security attribute affected on exploitation;
* ``os_vuln`` -- the many-to-many relationship between vulnerabilities and
  operating systems, with the affected versions.

Since schema version 2 the store is additionally *incremental*:

* ``vulnerability`` carries an ``entry_digest`` (the content address of the
  normalized entry, see :mod:`repro.snapshots.digests`) and a ``tombstoned``
  flag (soft deletion, so removed entries keep their history);
* ``snapshot`` is the snapshot ledger: one row per committed dataset state
  with its content digest, the parent snapshot's digest (digest chaining),
  the feed provenance and the entry-count deltas;
* ``entry_version`` is the append-only version history behind time-travel
  queries: one row per entry *change* per snapshot, holding the canonical
  JSON payload (or a tombstone marker).

Databases created before version 2 are upgraded in place by
:func:`migrate_connection`, which is driven by ``PRAGMA user_version``.
"""

from __future__ import annotations

import sqlite3
from typing import Tuple

#: Current schema version, recorded in ``PRAGMA user_version``.
SCHEMA_VERSION = 2

SCHEMA_STATEMENTS: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS os (
        os_id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE,
        family TEXT NOT NULL,
        vendor TEXT NOT NULL,
        first_release_year INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS os_release (
        release_id INTEGER PRIMARY KEY,
        os_id INTEGER NOT NULL REFERENCES os(os_id),
        version TEXT NOT NULL,
        year INTEGER NOT NULL,
        UNIQUE (os_id, version)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS vulnerability (
        vuln_id INTEGER PRIMARY KEY,
        cve_id TEXT NOT NULL UNIQUE,
        published DATE NOT NULL,
        summary TEXT NOT NULL,
        validity TEXT NOT NULL DEFAULT 'Valid',
        entry_digest TEXT,
        tombstoned INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS vulnerability_type (
        vuln_id INTEGER PRIMARY KEY REFERENCES vulnerability(vuln_id),
        component_class TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS cvss (
        vuln_id INTEGER PRIMARY KEY REFERENCES vulnerability(vuln_id),
        access_vector TEXT NOT NULL,
        access_complexity TEXT NOT NULL,
        authentication TEXT NOT NULL,
        confidentiality_impact TEXT NOT NULL,
        integrity_impact TEXT NOT NULL,
        availability_impact TEXT NOT NULL,
        base_score REAL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS security_protection (
        vuln_id INTEGER NOT NULL REFERENCES vulnerability(vuln_id),
        attribute TEXT NOT NULL,
        PRIMARY KEY (vuln_id, attribute)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS os_vuln (
        os_id INTEGER NOT NULL REFERENCES os(os_id),
        vuln_id INTEGER NOT NULL REFERENCES vulnerability(vuln_id),
        versions TEXT NOT NULL DEFAULT '',
        PRIMARY KEY (os_id, vuln_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS snapshot (
        snapshot_id INTEGER PRIMARY KEY,
        digest TEXT NOT NULL,
        parent_digest TEXT,
        created TEXT NOT NULL,
        source TEXT NOT NULL DEFAULT '',
        entry_count INTEGER NOT NULL,
        added INTEGER NOT NULL DEFAULT 0,
        modified INTEGER NOT NULL DEFAULT 0,
        removed INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS entry_version (
        version_id INTEGER PRIMARY KEY,
        snapshot_id INTEGER NOT NULL REFERENCES snapshot(snapshot_id),
        cve_id TEXT NOT NULL,
        entry_digest TEXT,
        payload TEXT,
        deleted INTEGER NOT NULL DEFAULT 0
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_os_vuln_vuln ON os_vuln(vuln_id)",
    "CREATE INDEX IF NOT EXISTS idx_vuln_published ON vulnerability(published)",
    "CREATE INDEX IF NOT EXISTS idx_vuln_validity ON vulnerability(validity)",
    "CREATE INDEX IF NOT EXISTS idx_snapshot_digest ON snapshot(digest)",
    "CREATE INDEX IF NOT EXISTS idx_entry_version_cve"
    " ON entry_version(cve_id, snapshot_id)",
)


def _columns(conn: sqlite3.Connection, table: str) -> Tuple[str, ...]:
    return tuple(
        row[1] for row in conn.execute(f"PRAGMA table_info({table})").fetchall()
    )


def migrate_connection(conn: sqlite3.Connection) -> int:
    """Bring a database up to :data:`SCHEMA_VERSION`; returns the version.

    Idempotent: fresh databases get the full current schema, version-1
    databases (created before the snapshot subsystem) gain the new columns
    and tables in place, and up-to-date databases are untouched.  Existing
    rows keep ``entry_digest = NULL``; the snapshot store backfills digests
    lazily on the first commit.
    """
    version = int(conn.execute("PRAGMA user_version").fetchone()[0])
    if version >= SCHEMA_VERSION:
        return version
    with conn:
        for statement in SCHEMA_STATEMENTS:
            conn.execute(statement)
        # A pre-versioning database already has the vulnerability table but
        # lacks the version-2 columns (CREATE TABLE IF NOT EXISTS does not
        # add columns to existing tables).
        existing = _columns(conn, "vulnerability")
        if "entry_digest" not in existing:
            conn.execute("ALTER TABLE vulnerability ADD COLUMN entry_digest TEXT")
        if "tombstoned" not in existing:
            conn.execute(
                "ALTER TABLE vulnerability"
                " ADD COLUMN tombstoned INTEGER NOT NULL DEFAULT 0"
            )
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
    return SCHEMA_VERSION
