"""Feed -> database ingest pipeline.

Reproduces the collection program described in Section III of the paper: it
parses the NVD data feeds, keeps only operating-system platforms, normalises
(product, vendor) aliases onto the 11-OS catalogue, assigns validity statuses
and component classes, and loads everything into the SQL database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.classify.classifier import ComponentClassifier
from repro.classify.filters import ValidityFilter
from repro.core.exceptions import CVSSError
from repro.core.models import VulnerabilityEntry
from repro.nvd.cvss import parse_cvss_vector
from repro.nvd.feed_parser import RawFeedEntry, parse_xml_feeds
from repro.nvd.json_feed import parse_json_feed
from repro.nvd.normalize import ProductNormalizer
from repro.db.database import VulnerabilityDatabase

FeedPath = Union[str, Path]


@dataclass
class IngestReport:
    """Summary of one ingest run."""

    parsed_entries: int = 0
    ingested_entries: int = 0
    skipped_no_os: int = 0
    valid_entries: int = 0
    excluded_entries: int = 0
    unmatched_products: int = 0
    by_validity: Dict[str, int] = field(default_factory=dict)


class IngestPipeline:
    """Parses feeds and loads them into a :class:`VulnerabilityDatabase`."""

    def __init__(
        self,
        database: Optional[VulnerabilityDatabase] = None,
        normalizer: Optional[ProductNormalizer] = None,
        classifier: Optional[ComponentClassifier] = None,
        validity_filter: Optional[ValidityFilter] = None,
    ) -> None:
        self.database = database or VulnerabilityDatabase()
        self.normalizer = normalizer or ProductNormalizer()
        self.classifier = classifier or ComponentClassifier()
        self.validity_filter = validity_filter or ValidityFilter()
        self.database.register_os_catalog()

    # -- conversion -----------------------------------------------------------

    def convert(self, raw: RawFeedEntry) -> Optional[VulnerabilityEntry]:
        """Convert a raw feed entry to a study entry, or ``None`` if out of scope.

        An entry is out of scope when none of its CPE names resolves to one of
        the 11 studied OS distributions (either because it is an application
        or hardware platform, or an OS outside the catalogue).
        """
        cpes = raw.parsed_cpes()
        affected, versions = self.normalizer.resolve_many(cpes)
        if not affected:
            return None
        try:
            cvss = parse_cvss_vector(raw.cvss_vector)
        except CVSSError:
            # Entries without usable CVSS data default to a remote vector,
            # the conservative choice for the Isolated-Thin analysis.  Only
            # a malformed vector takes this path; other exceptions are
            # parser bugs and propagate.
            from repro.core.enums import AccessVector
            from repro.core.models import CVSSVector

            cvss = CVSSVector(access_vector=AccessVector.NETWORK)
        entry = VulnerabilityEntry(
            cve_id=raw.cve_id,
            published=raw.published,
            summary=raw.summary,
            cvss=cvss,
            affected_os=frozenset(affected),
            affected_versions=versions,
            raw_cpes=tuple(cpes),
        )
        entry = entry.with_validity(self.validity_filter.status_for_text(entry.summary))
        if entry.is_valid:
            entry = entry.with_class(self.classifier.classify(entry))
        return entry

    # -- ingestion -------------------------------------------------------------

    def ingest_raw(self, raw_entries: Sequence[RawFeedEntry]) -> IngestReport:
        """Ingest already-parsed raw entries."""
        report = IngestReport(parsed_entries=len(raw_entries))
        for raw in raw_entries:
            entry = self.convert(raw)
            if entry is None:
                report.skipped_no_os += 1
                continue
            self.database.insert_entry(entry)
            report.ingested_entries += 1
            report.by_validity[entry.validity.value] = (
                report.by_validity.get(entry.validity.value, 0) + 1
            )
            if entry.is_valid:
                report.valid_entries += 1
            else:
                report.excluded_entries += 1
        report.unmatched_products = len(self.normalizer.report.unmatched_keys)
        return report

    def ingest_xml_feeds(self, paths: Iterable[FeedPath]) -> IngestReport:
        """Parse and ingest one or more XML feeds."""
        return self.ingest_raw(parse_xml_feeds(list(paths)))

    def ingest_json_feed(self, path: FeedPath) -> IngestReport:
        """Parse and ingest a JSON feed."""
        return self.ingest_raw(parse_json_feed(path))

    def ingest_entries(self, entries: Iterable[VulnerabilityEntry]) -> IngestReport:
        """Ingest pre-built entries (e.g. a synthetic corpus) without re-parsing.

        Validity and classification are preserved when already present.
        """
        report = IngestReport()
        for entry in entries:
            report.parsed_entries += 1
            if not entry.affected_os:
                report.skipped_no_os += 1
                continue
            if entry.component_class is None and entry.is_valid:
                entry = entry.with_class(self.classifier.classify(entry))
            self.database.insert_entry(entry)
            report.ingested_entries += 1
            if entry.is_valid:
                report.valid_entries += 1
            else:
                report.excluded_entries += 1
            report.by_validity[entry.validity.value] = (
                report.by_validity.get(entry.validity.value, 0) + 1
            )
        return report
