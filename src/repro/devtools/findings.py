"""Findings, inline suppressions and the grandfathered-findings baseline.

A :class:`Finding` is one rule violation at one source location.  Two
escape hatches keep the lint gate adoptable on a living codebase:

* ``# repro: noqa[CODE]`` on the offending line suppresses the named
  rule(s) there; everything after the closing bracket is the rationale
  (``# repro: noqa[DET002] -- ledger timestamps are provenance, not data``).
* a :class:`Baseline` file grandfathers known findings: ``repro lint``
  fails only on findings *not* recorded there, so new code is held to the
  rules while pre-existing debt is paid down deliberately.  Baseline
  entries match on ``(path, code, message)`` -- not line numbers -- so
  unrelated edits to a file cannot silently grow the grandfathered set.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

#: Inline suppression comments: ``# repro: noqa[DET001]`` or
#: ``# repro: noqa[DET001,GEN301] -- rationale``.
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"(?P<rationale>[^\n]*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-root-relative POSIX path
    line: int
    col: int
    code: str
    message: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """The baseline identity: location-independent within a file."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def scan_noqa(source: str) -> Dict[int, frozenset]:
    """Map line numbers (1-based) to the rule codes suppressed there."""
    suppressions: Dict[int, frozenset] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
        )
        suppressions[line_number] = suppressions.get(line_number, frozenset()) | codes
    return suppressions


class Baseline:
    """The checked-in ledger of grandfathered findings.

    The file is JSON: ``{"version": 1, "findings": [{"path", "code",
    "message", "rationale"}, ...]}``.  Multiplicity matters -- two identical
    findings in one file need two baseline entries -- so fixing one of two
    duplicated violations still shrinks the allowed set.
    """

    VERSION = 1

    def __init__(self, entries: Sequence[Dict[str, object]] = ()) -> None:
        self.entries: List[Dict[str, object]] = [dict(entry) for entry in entries]
        self._allowance = Counter(
            (str(entry["path"]), str(entry["code"]), str(entry["message"]))
            for entry in self.entries
        )

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"malformed baseline file {path}")
        return cls(payload["findings"])

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], rationale: str = ""
    ) -> "Baseline":
        entries = [
            {
                "path": finding.path,
                "code": finding.code,
                "message": finding.message,
                "rationale": rationale,
            }
            for finding in sorted(findings)
        ]
        return cls(entries)

    def dump(self, path: Path) -> None:
        payload = {"version": self.VERSION, "findings": self.entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], int]:
        """Partition findings into (new, grandfathered); count stale entries.

        A finding is grandfathered while the baseline still has unconsumed
        allowance for its ``(path, code, message)`` key.  The third return
        value counts baseline entries no current finding consumed -- debt
        that has been paid and should be dropped from the file.
        """
        remaining = Counter(self._allowance)
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            if remaining.get(finding.key, 0) > 0:
                remaining[finding.key] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = sum(remaining.values())
        return new, grandfathered, stale
