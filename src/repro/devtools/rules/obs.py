"""OBS: observability rules.

The serving stack reports through one structured seam -- the
:class:`repro.obs.logging.JsonLogger` -- so operators can parse, route and
alert on every line a worker emits.  A bare ``print()`` buried in library
code bypasses that seam: it interleaves unparseable text with the JSON
stream, ignores the injectable clock, and (on stdout) can corrupt piped
output.  OBS401 bans it from ``repro.*`` library modules while leaving the
CLI entry points -- whose whole job is human-facing terminal output --
alone.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.framework import ModuleInfo, Rule, register

#: Final module-name segments that ARE the human-facing terminal surface;
#: ``print()`` is their output channel, not a bypass of one.
ENTRYPOINT_TAILS = frozenset({"cli", "__main__"})


@register
class BarePrintRule(Rule):
    """OBS401: no bare ``print()`` in library code; log through the seam."""

    code = "OBS401"
    name = "bare-print"
    family = "OBS"
    rationale = (
        "Library code that print()s interleaves free-form text with the "
        "structured JSON log stream operators parse, and silently targets "
        "stdout where piped output lives.  Emit through a "
        "repro.obs.logging.JsonLogger (or return the text to the CLI "
        "layer); a deliberate operator-facing banner carries a "
        "# repro: noqa[OBS401] with its rationale."
    )
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        if module.module.rsplit(".", 1)[-1] in ENTRYPOINT_TAILS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.canonical(node.func) == "print":
                yield (
                    node.lineno,
                    node.col_offset,
                    "bare print() in library code; emit structured lines "
                    "through repro.obs.logging.JsonLogger or return the "
                    "text to the CLI layer",
                )
