"""ASY: asyncio-safety rules for the serving layer.

The ``repro serve`` front end is a single asyncio event loop; one blocking
call inside an ``async def`` stalls every connection at once.  The service
architecture routes all blocking work (request dispatch, sqlite reads,
corpus compiles, job drains) through executors, and these rules make that
routing a machine-checked invariant instead of a convention.

All four rules look only at code that executes *on the coroutine itself*:
a ``def`` nested inside an ``async def`` is excluded, because it runs
wherever it is later invoked -- typically handed to ``run_in_executor``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.devtools.framework import (
    ModuleInfo,
    Rule,
    async_function_nodes,
    direct_async_body,
    register,
)

#: The service package: the only place ``async def`` lives today, and the
#: place where one blocked loop stalls every connected client.
SERVICE_SCOPE = ("repro.service",)


def _async_calls(module: ModuleInfo, include_awaited: bool = True) -> Iterator[ast.Call]:
    """Call nodes on the coroutine path of every ``async def``.

    With ``include_awaited=False``, calls that are the direct operand of
    an ``await`` are skipped: an awaited call is a coroutine API (e.g.
    ``await writer.drain()``), not a blocking synchronous one.
    """
    for func in async_function_nodes(module.tree):
        awaited = set()
        if not include_awaited:
            for node in direct_async_body(func):
                if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                    awaited.add(id(node.value))
        for node in direct_async_body(func):
            if isinstance(node, ast.Call) and id(node) not in awaited:
                yield node


def _canonical(module: ModuleInfo, call: ast.Call) -> Optional[str]:
    return module.canonical(call.func)


@register
class BlockingSleepRule(Rule):
    """ASY101: no ``time.sleep`` on the event loop."""

    code = "ASY101"
    name = "blocking-sleep"
    family = "ASY"
    rationale = (
        "time.sleep() inside an async def suspends the whole event loop, "
        "not just the current request; use await asyncio.sleep() instead."
    )
    scope = SERVICE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for call in _async_calls(module):
            if _canonical(module, call) == "time.sleep":
                yield (
                    call.lineno,
                    call.col_offset,
                    "time.sleep() blocks the event loop; use "
                    "await asyncio.sleep()",
                )


#: File/database I/O that parks the loop on a syscall.  Matched by exact
#: canonical name, by module prefix, or by method-name suffix (Path-style
#: read/write helpers on any receiver).
BLOCKING_IO_EXACT = frozenset({"open", "io.open", "os.system"})
BLOCKING_IO_PREFIXES = ("sqlite3.", "tempfile.", "shutil.")
BLOCKING_IO_METHODS = frozenset(
    {
        "read_text", "write_text", "read_bytes", "write_bytes",
        "unlink", "mkdir", "rmdir", "glob", "rglob",
    }
)


@register
class BlockingIORule(Rule):
    """ASY102: no synchronous file or sqlite I/O on the event loop."""

    code = "ASY102"
    name = "blocking-io"
    family = "ASY"
    rationale = (
        "File and sqlite operations block on syscalls and database locks; "
        "inside an async def they freeze every connection.  Route them "
        "through loop.run_in_executor (the request pool), as the dispatch "
        "path does."
    )
    scope = SERVICE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for call in _async_calls(module):
            canonical = _canonical(module, call)
            if canonical is None:
                continue
            blocked = (
                canonical in BLOCKING_IO_EXACT
                or canonical.startswith(BLOCKING_IO_PREFIXES)
                or canonical.split(".")[-1] in BLOCKING_IO_METHODS
            )
            if blocked:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"blocking I/O call {canonical}() inside async def; "
                    "offload it with loop.run_in_executor",
                )


@register
class SubprocessRule(Rule):
    """ASY103: no synchronous subprocess spawns on the event loop."""

    code = "ASY103"
    name = "blocking-subprocess"
    family = "ASY"
    rationale = (
        "subprocess.run/Popen and os.popen block until the child produces "
        "output; asyncio.create_subprocess_exec (or an executor) keeps the "
        "loop live."
    )
    scope = SERVICE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for call in _async_calls(module):
            canonical = _canonical(module, call)
            if canonical is None:
                continue
            if canonical.startswith("subprocess.") or canonical == "os.popen":
                yield (
                    call.lineno,
                    call.col_offset,
                    f"synchronous subprocess call {canonical}() inside "
                    "async def; use asyncio.create_subprocess_exec or an "
                    "executor",
                )


#: Known-blocking repro APIs: compiles, sweeps, sqlite-backed stores and
#: the synchronous dispatch/drain entry points.  Matching either the bare
#: constructor name or the method suffix catches both
#: ``VulnerabilityDatabase(...)`` and ``self.app.dispatch(...)``.
BLOCKING_REPRO_CONSTRUCTORS = frozenset(
    {
        "VulnerabilityDatabase", "SnapshotStore", "ResultCache",
        "IngestPipeline", "DeltaIngestPipeline", "GridRunner",
    }
)
BLOCKING_REPRO_METHODS = frozenset({"dispatch", "drain"})


@register
class BlockingReproApiRule(Rule):
    """ASY104: known-blocking repro APIs must not run on the event loop."""

    code = "ASY104"
    name = "blocking-repro-api"
    family = "ASY"
    rationale = (
        "DiversityService.dispatch, JobTable.drain, sqlite-backed stores "
        "and corpus compiles are synchronous by design; the front end must "
        "reach them through DiversityService.dispatch_async or "
        "loop.run_in_executor, never directly from a coroutine."
    )
    scope = SERVICE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for call in _async_calls(module, include_awaited=False):
            canonical = _canonical(module, call)
            if canonical is None:
                continue
            parts = canonical.split(".")
            if (
                parts[-1] in BLOCKING_REPRO_CONSTRUCTORS
                or parts[-1] in BLOCKING_REPRO_METHODS
            ):
                yield (
                    call.lineno,
                    call.col_offset,
                    f"blocking repro API {canonical}() called directly "
                    "inside async def; route it through an executor",
                )
