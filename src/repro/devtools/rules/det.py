"""DET: determinism rules.

The reproduction's determinism guarantees -- bit-for-bit seed-identical
engines, order-independent ``workers=1 == workers=N`` merges, digests that
are pure functions of content -- die by a thousand small cuts: one call to
the process-global RNG, one wall-clock read inside a digest, one iteration
over an unsorted set feeding a merge.  Each DET rule bans one cut, scoped
to the layers that carry the guarantee.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.framework import ModuleInfo, Rule, register

#: Module-level functions of :mod:`random` that draw from (or reseed) the
#: process-global RNG.  Using them couples unrelated call sites through
#: hidden shared state; deterministic code owns a ``random.Random(seed)``.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: Legacy ``numpy.random`` module-level functions backed by the global
#: ``RandomState`` singleton.
GLOBAL_NUMPY_FUNCS = frozenset(
    {
        "choice", "normal", "permutation", "poisson", "rand", "randint",
        "randn", "random", "random_sample", "seed", "shuffle", "uniform",
    }
)

#: Wall-clock reads: ``(second-to-last, last)`` segments of the canonical
#: dotted name.  Alias-resolution makes ``_dt.datetime.now`` and
#: ``datetime.now`` both end in ``("datetime", "now")``.
WALL_CLOCK_TAILS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("time", "ctime"),
        ("time", "strftime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Where digests, engine state and merge results are produced.
DIGEST_AND_MERGE_SCOPE = (
    "repro.analysis",
    "repro.db",
    "repro.runner",
    "repro.snapshots",
)


def _call_tail(canonical: str) -> Tuple[str, ...]:
    return tuple(canonical.split(".")[-2:])


@register
class UnseededRandomRule(Rule):
    """DET001: no process-global or unseeded RNG in deterministic layers."""

    code = "DET001"
    name = "unseeded-random"
    family = "DET"
    rationale = (
        "Simulation results must be bit-for-bit reproducible per seed; the "
        "process-global RNG (random.* / numpy.random.* module functions) "
        "couples call sites through hidden shared state, and an argument-less "
        "random.Random() / default_rng() seeds from the OS."
    )
    scope = ("repro.analysis", "repro.itsys", "repro.runner")

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.canonical(node.func)
            if canonical is None:
                continue
            parts = canonical.split(".")
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] in GLOBAL_RANDOM_FUNCS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"call to process-global RNG {canonical}(); use an "
                        "explicitly seeded random.Random(seed) instance",
                    )
                elif parts[1] == "Random" and not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "random.Random() without a seed draws entropy from "
                        "the OS; pass an explicit seed",
                    )
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] in GLOBAL_NUMPY_FUNCS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"call to numpy global RNG {canonical}(); use an "
                        "explicitly seeded numpy.random.default_rng(seed)",
                    )
                elif parts[2] in {"default_rng", "RandomState"} and not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{canonical}() without a seed draws entropy from "
                        "the OS; pass an explicit seed",
                    )


@register
class WallClockRule(Rule):
    """DET002: no wall-clock reads where digests and merges are computed."""

    code = "DET002"
    name = "wall-clock-read"
    family = "DET"
    rationale = (
        "Digests are content addresses and merge results must be pure "
        "functions of their inputs; a timestamp read inside these paths "
        "makes two runs over identical data disagree.  Timestamps that are "
        "provenance (not data) enter through an injectable parameter seam."
    )
    #: ``repro.obs`` is in scope so the observability layer's *only* raw
    #: clock reads are the two noqa'd seams on :class:`repro.obs.clock
    #: .Clock`; everything downstream times through the injectable clock.
    scope = DIGEST_AND_MERGE_SCOPE + ("repro.obs",)

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.canonical(node.func)
            if canonical is None:
                continue
            if _call_tail(canonical) in WALL_CLOCK_TAILS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read {canonical}() in a digest/merge path; "
                    "inject the timestamp through a parameter instead",
                )


@register
class EnvironReadRule(Rule):
    """DET003: no environment reads where digests and merges are computed."""

    code = "DET003"
    name = "environment-read"
    family = "DET"
    rationale = (
        "os.environ varies per host and shell; reading it inside digest, "
        "engine or merge code makes content addresses machine-dependent.  "
        "Environment-driven configuration belongs in the CLI layer, passed "
        "down as explicit arguments."
    )
    scope = DIGEST_AND_MERGE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                canonical = module.canonical(node.func)
                if canonical == "os.getenv":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "os.getenv() read in a digest/merge path; pass the "
                        "value in explicitly",
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if module.canonical(node) == "os.environ" and not isinstance(
                    node, ast.Name
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "os.environ read in a digest/merge path; pass the "
                        "value in explicitly",
                    )
                elif (
                    isinstance(node, ast.Name)
                    and module.imports.get(node.id) == "os.environ"
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "os.environ read in a digest/merge path; pass the "
                        "value in explicitly",
                    )


#: Calls whose result ordering cannot leak: they reduce order-insensitively
#: or sort their input.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset"}
)

_SET_OPS = (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)


def _is_set_expression(node: ast.AST, module: ModuleInfo) -> bool:
    """Whether an expression statically evaluates to a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        canonical = module.canonical(node.func)
        if canonical in {"set", "frozenset"}:
            return True
        if canonical is not None and canonical.split(".")[-1] in {
            "union", "intersection", "difference", "symmetric_difference"
        }:
            return _is_set_expression(node.func.value, module) if isinstance(
                node.func, ast.Attribute
            ) else False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expression(node.left, module) or _is_set_expression(
            node.right, module
        )
    return False


@register
class UnsortedSetIterationRule(Rule):
    """DET004: no iteration over unsorted sets feeding digests or merges."""

    code = "DET004"
    name = "unsorted-set-iteration"
    family = "DET"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation; a digest or merge built by walking a set is only "
        "deterministic by accident.  Wrap the set in sorted(...) or consume "
        "it with an order-insensitive reduction (sum/len/min/max/any/all)."
    )
    scope = ("repro.runner", "repro.snapshots")

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        exempt_comprehensions = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.canonical(node.func)
            if canonical in ORDER_INSENSITIVE_CONSUMERS:
                for argument in node.args:
                    if isinstance(
                        argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        exempt_comprehensions.add(id(argument))
        for node in ast.walk(module.tree):
            candidates: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                candidates.append(node.iter)
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
                if id(node) not in exempt_comprehensions:
                    candidates.extend(
                        generator.iter for generator in node.generators
                    )
            for candidate in candidates:
                if isinstance(candidate, ast.Call) and module.canonical(
                    candidate.func
                ) == "sorted":
                    continue
                if _is_set_expression(candidate, module):
                    yield (
                        candidate.lineno,
                        candidate.col_offset,
                        "iteration over an unsorted set in a digest/merge "
                        "path; wrap it in sorted(...) or reduce it "
                        "order-insensitively",
                    )
