"""GEN: general hygiene rules.

Three classic Python hazards that have each bitten (or nearly bitten) this
codebase: broad exception handlers that swallow real bugs along with the
expected failure, float equality in statistics code, and mutable default
arguments shared across calls.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.framework import ModuleInfo, Rule, register

BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _broad_names(handler_type: ast.AST) -> Iterator[str]:
    nodes = (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in BROAD_EXCEPTIONS:
            yield node.id


@register
class BroadExceptRule(Rule):
    """GEN301: no bare or blanket ``except`` without a documented reason."""

    code = "GEN301"
    name = "broad-except"
    family = "GEN"
    rationale = (
        "except Exception around a parse or convert step swallows typos, "
        "attribute errors and contract violations along with the failure "
        "it meant to tolerate.  Catch the concrete exception type; a true "
        "catch-all boundary (a job runner, a request dispatcher) carries a "
        "# repro: noqa[GEN301] with its rationale."
    )
    scope = ()

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "bare except: catches SystemExit and KeyboardInterrupt; "
                    "name the expected exception type",
                )
                continue
            for name in _broad_names(node.type):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"broad except {name}: narrow it to the concrete "
                    "expected exception, or document the boundary with "
                    "# repro: noqa[GEN301] and a rationale",
                )


@register
class FloatEqualityRule(Rule):
    """GEN302: no ``==``/``!=`` against float literals in statistics code."""

    code = "GEN302"
    name = "float-equality"
    family = "GEN"
    rationale = (
        "Accumulated probabilities and rates rarely compare exactly equal; "
        "== against a float literal encodes an accident of rounding.  "
        "Compare with a tolerance (math.isclose) or restructure around "
        "integers."
    )
    scope = ("repro.analysis", "repro.itsys", "repro.reports", "repro.runner")

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            relevant_ops = any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            )
            if not relevant_ops:
                continue
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"float equality against {operand.value!r}; use "
                        "math.isclose or an integer representation",
                    )
                    break


MUTABLE_DEFAULT_CALLS = frozenset({"list", "dict", "set", "bytearray"})


@register
class MutableDefaultRule(Rule):
    """GEN303: no mutable default arguments."""

    code = "GEN303"
    name = "mutable-default-argument"
    family = "GEN"
    rationale = (
        "A mutable default is evaluated once and shared across every call; "
        "state leaks between invocations in ways no test of a single call "
        "can see.  Default to None (or a frozen/immutable value) and build "
        "the mutable container inside the function."
    )
    scope = ()

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [
                default
                for default in [*node.args.defaults, *node.args.kw_defaults]
                if default is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and module.canonical(default.func) in MUTABLE_DEFAULT_CALLS
                )
                if mutable:
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {node.name}(); "
                        "default to None and construct inside the function",
                    )
