"""ENG: engine-contract rules.

The three query engines (``naive`` set re-intersection, ``bitset`` integer
masks, ``packed`` numpy words) are interchangeable because they answer the
same queries with the same signatures -- the equivalence property suite
*samples* that contract, ENG201 *proves the surface* by AST comparison.
ENG202 guards the other structural contract: anything shipped across the
``ProcessPoolExecutor`` must pickle identically on every interpreter,
which for slotted classes means explicit ``__getstate__``/``__setstate__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.framework import ModuleInfo, Rule, register

#: The interchangeable index classes behind ``dataset.query_index()``.
ENGINE_CLASSES = ("IncidenceIndex", "PackedIndex")

#: Query methods every engine index must expose with identical signatures.
ENGINE_CONTRACT = (
    "count_for",
    "shared_count",
    "shared_entries",
    "breadth",
    "affecting_at_least",
    "breadth_histogram",
    "pair_matrix",
    "k_set_totals",
    "compromising_entries",
)

#: Classes whose instances cross the runner's process pool.
POOL_SHIPPED_CLASSES = frozenset(
    {"IncidenceIndex", "PackedIndex", "ReplicaIncidence"}
)


def _class_defs(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


def _signature_shape(func: ast.FunctionDef) -> Tuple:
    """A comparable, annotation-free shape of one method signature.

    Compares parameter names, order, kinds and which carry defaults --
    exactly what a caller dispatching through ``query_index()`` can
    observe.  Annotations and default *values* are excluded: narrowing an
    annotation or tuning a default does not break call-compatibility.
    """
    args = func.args
    return (
        tuple(arg.arg for arg in args.posonlyargs),
        tuple(arg.arg for arg in args.args),
        len(args.defaults),
        args.vararg.arg if args.vararg else None,
        tuple(arg.arg for arg in args.kwonlyargs),
        tuple(default is not None for default in args.kw_defaults),
        args.kwarg.arg if args.kwarg else None,
    )


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class EngineContractRule(Rule):
    """ENG201: engine index classes expose identical query signatures."""

    code = "ENG201"
    name = "engine-contract-parity"
    family = "ENG"
    rationale = (
        "dataset.query_index() hands callers whichever engine the dataset "
        "was built with; the engines are only interchangeable while every "
        "contract method exists on each index class with the same "
        "parameters.  A signature that drifts on one engine breaks "
        "engine-switching callers at runtime, past the type checker."
    )
    scope = ("repro.analysis.engine",)

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        classes = _class_defs(module.tree)
        present = [name for name in ENGINE_CLASSES if name in classes]
        if len(present) < 2:
            # Nothing to compare against (e.g. a partial fixture module).
            return
        method_tables = {name: _methods(classes[name]) for name in present}
        reference_name = present[0]
        for method_name in ENGINE_CONTRACT:
            shapes: Dict[str, Optional[Tuple]] = {}
            for class_name in present:
                method = method_tables[class_name].get(method_name)
                shapes[class_name] = (
                    _signature_shape(method) if method is not None else None
                )
                if method is None:
                    yield (
                        classes[class_name].lineno,
                        classes[class_name].col_offset,
                        f"engine class {class_name} is missing contract "
                        f"method {method_name}()",
                    )
            reference = shapes[reference_name]
            for class_name in present[1:]:
                shape = shapes[class_name]
                if reference is None or shape is None:
                    continue
                if shape != reference:
                    method = method_tables[class_name][method_name]
                    yield (
                        method.lineno,
                        method.col_offset,
                        f"{class_name}.{method_name}() signature differs "
                        f"from {reference_name}.{method_name}(); engine "
                        "contract methods must be call-compatible",
                    )
        # Any *shared* public method beyond the named contract must agree
        # too: partial parity is how engines drift apart silently.
        shared_public = set.intersection(
            *(set(method_tables[name]) for name in present)
        )
        for method_name in sorted(shared_public):
            if method_name in ENGINE_CONTRACT or method_name.startswith("_"):
                continue
            reference = _signature_shape(method_tables[reference_name][method_name])
            for class_name in present[1:]:
                method = method_tables[class_name][method_name]
                if _signature_shape(method) != reference:
                    yield (
                        method.lineno,
                        method.col_offset,
                        f"{class_name}.{method_name}() signature differs "
                        f"from {reference_name}.{method_name}(); shared "
                        "engine methods must be call-compatible",
                    )


@register
class PickleContractRule(Rule):
    """ENG202: pool-shipped classes define explicit pickle support."""

    code = "ENG202"
    name = "explicit-pickle-support"
    family = "ENG"
    rationale = (
        "The grid runner ships compiled indexes between worker processes; "
        "slotted classes without explicit __getstate__/__setstate__ rely "
        "on interpreter-version-dependent default reduction, which breaks "
        "the workers=1 == workers=N bit-identity guarantee.  Defining only "
        "one of the pair is always a latent bug."
    )
    scope = ()  # the lopsided-pair check is universal

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        for name, cls in sorted(_class_defs(module.tree).items()):
            methods = _methods(cls)
            has_get = "__getstate__" in methods
            has_set = "__setstate__" in methods
            if has_get != has_set:
                missing = "__setstate__" if has_get else "__getstate__"
                defined = "__getstate__" if has_get else "__setstate__"
                yield (
                    cls.lineno,
                    cls.col_offset,
                    f"class {name} defines {defined} without {missing}; "
                    "explicit pickle support needs both",
                )
            if (
                module.module == "repro.analysis.engine"
                and name in POOL_SHIPPED_CLASSES
                and not (has_get and has_set)
            ):
                yield (
                    cls.lineno,
                    cls.col_offset,
                    f"pool-shipped class {name} must define explicit "
                    "__getstate__/__setstate__ (it crosses the "
                    "ProcessPoolExecutor)",
                )
