"""Rule modules; importing this package populates the rule registry."""

from repro.devtools.rules import asy, det, eng, gen, obs  # noqa: F401

__all__ = ["asy", "det", "eng", "gen", "obs"]
