"""Command-line front end: ``repro lint`` and ``repro devtools check``.

``lint`` runs the AST rules and reports findings in text or JSON; its exit
status is the CI contract (0 = clean or fully grandfathered, 1 = new
findings or unparseable files, 2 = usage error).  ``check`` is the
umbrella gate: lint plus the two existing docs auditors
(``tools/check_docs_links.py`` and ``tools/gen_api_docs.py --check``) in
one command, so CI and developers run the identical battery.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools.findings import Baseline
from repro.devtools.framework import LintResult, all_rules, lint_paths

#: The checked-in grandfathered-findings ledger, relative to the lint root.
DEFAULT_BASELINE = Path("tools") / "lint_baseline.json"

JSON_FORMAT_VERSION = 1


def _parse_lint_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = build_lint_parser()
    return parser.parse_args(argv)


def build_lint_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """The ``lint`` argument surface (shared by ``repro lint`` and -m)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="run the repro static-analysis rules",
        )
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src/ under --lint-root)",
    )
    parser.add_argument(
        "--lint-root", default=".", metavar="DIR",
        help="repository root that anchors reported paths, module scopes "
             "and the baseline file (default: the working directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
             "(default: tools/lint_baseline.json under --lint-root)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report and fail on every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings "
             "(grandfathers everything) instead of failing",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule with its family and rationale",
    )
    return parser


def _list_rules_text() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        lines.append(f"{rule.code} [{rule.family}] {rule.name} ({scope})")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _json_report(
    result: LintResult,
    new: List,
    grandfathered: List,
    stale: int,
) -> Dict[str, object]:
    return {
        "version": JSON_FORMAT_VERSION,
        "files_checked": result.files_checked,
        "findings": [finding.to_json() for finding in new],
        "counts": dict(sorted(Counter(f.code for f in new).items())),
        "grandfathered": len(grandfathered),
        "suppressed": result.suppressed,
        "stale_baseline_entries": stale,
        "errors": list(result.errors),
        "ok": not new and not result.errors,
    }


def run_lint(argv: Sequence[str], stdout=None) -> int:
    """The ``repro lint`` entry point; returns the process exit status."""
    return execute_lint(_parse_lint_args(list(argv)), stdout=stdout)


def execute_lint(args: argparse.Namespace, stdout=None) -> int:
    """Run lint from an already-parsed namespace (the CLI integration)."""
    out = stdout if stdout is not None else sys.stdout
    if args.list_rules:
        print(_list_rules_text(), file=out)
        return 0
    root = Path(args.lint_root).resolve()
    if not root.is_dir():
        print(f"lint root {args.lint_root} is not a directory", file=sys.stderr)
        return 2
    raw_paths = args.paths or ["src"]
    paths = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            print(f"no such file or directory: {raw}", file=sys.stderr)
            return 2
        paths.append(path)
    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    try:
        result = lint_paths(paths, root, select=select)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    if args.write_baseline:
        Baseline.from_findings(
            result.findings, rationale="grandfathered by --write-baseline"
        ).dump(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}", file=out,
        )
        return 0
    if args.no_baseline:
        baseline = Baseline()
    else:
        baseline = Baseline.load(baseline_path)
    new, grandfathered, stale = baseline.split(result.findings)

    if args.format == "json":
        print(
            json.dumps(_json_report(result, new, grandfathered, stale), indent=2),
            file=out,
        )
    else:
        for finding in new:
            print(finding.render(), file=out)
        for error in result.errors:
            print(f"error: {error}", file=out)
        summary = (
            f"{result.files_checked} file(s) checked: "
            f"{len(new)} finding(s), {len(grandfathered)} grandfathered, "
            f"{result.suppressed} suppressed"
        )
        if stale:
            summary += f", {stale} stale baseline entr{'y' if stale == 1 else 'ies'}"
        if result.errors:
            summary += f", {len(result.errors)} unparseable file(s)"
        print(summary, file=out)
    return 1 if new or result.errors else 0


def build_check_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """The ``devtools check`` argument surface."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro devtools check",
            description="run every static gate: lint, docs links, API drift",
        )
    parser.add_argument(
        "--lint-root", default=".", metavar="DIR",
        help="repository root (default: the working directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="lint report format (default: text)",
    )
    return parser


def run_check(argv: Sequence[str]) -> int:
    """``repro devtools check``: lint + docs-link audit + API drift gate."""
    return execute_check(build_check_parser().parse_args(list(argv)))


def execute_check(args: argparse.Namespace) -> int:
    """Run the umbrella gate from an already-parsed namespace."""
    root = Path(args.lint_root).resolve()
    failures = 0

    print("== repro lint ==", flush=True)
    failures += 1 if run_lint(
        ["--lint-root", str(root), "--format", args.format]
    ) else 0

    tools = root / "tools"
    steps = [
        ("docs links", [sys.executable, str(tools / "check_docs_links.py")]),
        ("API drift", [sys.executable, str(tools / "gen_api_docs.py"), "--check"]),
    ]
    for label, command in steps:
        script = Path(command[1])
        print(f"== {label} ==", flush=True)
        if not script.exists():
            print(f"missing tool {script}", file=sys.stderr)
            failures += 1
            continue
        existing = os.environ.get("PYTHONPATH")
        pythonpath = str(root / "src") + (
            os.pathsep + existing if existing else ""
        )
        completed = subprocess.run(
            command,
            cwd=str(root),
            env={**os.environ, "PYTHONPATH": pythonpath},
        )
        failures += 1 if completed.returncode else 0
    print(
        "devtools check: OK" if not failures else
        f"devtools check: {failures} gate(s) failed",
        flush=True,
    )
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.devtools`` entry point (defaults to ``lint``)."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] in ("lint", "check"):
        command, rest = arguments[0], arguments[1:]
    else:
        command, rest = "lint", arguments
    if command == "check":
        return run_check(rest)
    return run_lint(rest)
