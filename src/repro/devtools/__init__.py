"""``repro.devtools``: the project's static-analysis suite (``repro lint``).

Every headline claim of this reproduction rests on invariants the test
suite can only probe, not prove: engines must be bit-for-bit seed-identical,
``workers=1`` and ``workers=N`` merges must be deterministic, digests must be
pure functions of content, and the asyncio service must never block its
event loop.  This package turns each invariant into a machine-checked AST
lint rule, the same way :mod:`tools.check_docs_links` gates doc drift.

Four rule families:

* **DET** -- determinism: no unseeded or process-global randomness in the
  analysis/simulation/runner layers, no wall-clock or environment reads in
  digest/engine/merge paths, no iteration over unsorted sets feeding them.
* **ASY** -- asyncio safety: no blocking sleeps, file I/O, sqlite access,
  subprocesses or known-blocking repro APIs directly inside ``async def``
  in :mod:`repro.service`; blocking work must route through an executor.
* **ENG** -- engine contracts: the naive/bitset/packed index classes expose
  identical public query signatures, and every class shipped across a
  ``ProcessPoolExecutor`` defines explicit pickle support.
* **GEN** -- hygiene: no undocumented broad ``except``, no float equality
  in statistics code, no mutable default arguments.

Use :func:`lint_paths` programmatically, ``repro lint`` /
``python -m repro.devtools`` from a shell, and ``repro devtools check`` as
the umbrella CI gate (lint + docs-link audit + API-reference drift).

Findings are suppressed inline with ``# repro: noqa[CODE]`` (a rationale
after the bracket is strongly encouraged) or grandfathered in the checked-in
baseline file ``tools/lint_baseline.json``.
"""

from repro.devtools.findings import Baseline, Finding
from repro.devtools.framework import (
    ModuleInfo,
    Rule,
    all_rules,
    lint_paths,
    register,
    rule_by_code,
)
from repro.devtools import rules as _rules  # noqa: F401 - populates the registry
from repro.devtools.cli import main

__all__ = [
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "lint_paths",
    "main",
    "register",
    "rule_by_code",
]
