"""The rule framework: modules, name resolution, the registry, the runner.

The framework is deliberately small and stdlib-only (:mod:`ast` plus file
walking).  It gives every rule the same three affordances:

* a :class:`ModuleInfo` -- the parsed tree plus the module's dotted name
  (derived from its path under ``src/``), the raw source, and an
  import-alias map;
* *canonical call names* -- :meth:`ModuleInfo.canonical` resolves a
  ``Name``/``Attribute`` chain through the module's imports, so
  ``_dt.datetime.now(...)``, ``datetime.datetime.now(...)`` and
  ``from datetime import datetime; datetime.now(...)`` all normalise to
  ``datetime.datetime.now`` and a rule can match semantics, not spelling;
* scoping -- a rule declares the dotted module prefixes it applies to
  (``scope = ("repro.analysis", ...)``); an empty scope means every file.

Rules register themselves with :func:`register`; :func:`lint_paths` walks
the requested files, runs every applicable rule and applies the inline
``# repro: noqa[CODE]`` suppressions from :mod:`repro.devtools.findings`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.devtools.findings import Finding, scan_noqa

#: Directories never descended into when expanding a directory argument.
PRUNED_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """The ``a.b.c`` name chain of an expression, or ``None`` if not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> fully dotted origin, from the module's import statements."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the *root* name ``a``.
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class ModuleInfo:
    """One parsed source file plus the context rules need to judge it."""

    path: Path
    relpath: str  # POSIX, relative to the lint root
    module: str  # dotted module name, e.g. ``repro.service.server``
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        relpath = path.relative_to(root).as_posix()
        return cls(
            path=path,
            relpath=relpath,
            module=module_name(relpath),
            source=source,
            tree=tree,
            imports=_import_aliases(tree),
        )

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Resolve a name chain through this module's import aliases.

        Returns ``None`` for expressions that are not plain chains (calls
        on subscripts, lambdas, ...).  Chains rooted in a local variable
        come back verbatim (``self._conn.execute``), which lets rules match
        on method-name suffixes.
        """
        chain = dotted_chain(node)
        if chain is None:
            return None
        origin = self.imports.get(chain[0])
        if origin is not None:
            chain = origin.split(".") + chain[1:]
        return ".".join(chain)

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        if not prefixes:
            return True
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


def module_name(relpath: str) -> str:
    """Dotted module name for a root-relative POSIX path.

    A leading ``src/`` component (the repository layout) is stripped, so
    linting from the repo root and linting an installed tree agree on
    module names -- and so fixture trees that mirror ``src/repro/...``
    resolve to real ``repro.*`` scopes.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def async_function_nodes(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    """Every ``async def`` in the module (including nested ones)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def direct_async_body(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes that execute *on the coroutine itself*.

    Descends through the async function's body but stops at nested
    function/class definitions: a ``def`` declared inside an ``async def``
    runs wherever it is later called (typically an executor), so blocking
    calls inside it are not event-loop hazards at this site.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class Rule:
    """Base class: one code, one family, one AST check.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields ``(line, col, message)`` triples; the framework attaches paths
    and applies suppressions.
    """

    code: str = ""
    name: str = ""
    family: str = ""  # DET | ASY | ENG | GEN
    rationale: str = ""
    #: Dotted module prefixes this rule applies to; empty = every module.
    scope: Tuple[str, ...] = ()

    def check(self, module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
        raise NotImplementedError

    def run(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_scope(self.scope):
            return []
        return [
            Finding(
                path=module.relpath,
                line=line,
                col=col,
                code=self.code,
                message=message,
            )
            for line, col, message in self.check(module)
        ]


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by its unique code) to the registry."""
    if not rule_cls.code or not rule_cls.family:
        raise ValueError(f"rule {rule_cls.__name__} must define code and family")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_by_code(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


@dataclass
class LintResult:
    """Everything one lint run produced, before baseline partitioning."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    errors: List[str] = field(default_factory=list)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not PRUNED_DIRS & set(part for part in candidate.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run the (optionally selected) rules over every Python file in ``paths``.

    ``root`` anchors relative paths and module names; ``select`` narrows to
    specific rule codes.  Unparseable files are reported in ``errors`` (and
    fail the lint) rather than raising, so one bad file cannot hide the
    findings of the rest.
    """
    if select:
        rules = [rule_by_code(code) for code in select]
    else:
        rules = all_rules()
    findings: List[Finding] = []
    errors: List[str] = []
    suppressed = 0
    files = iter_python_files(paths)
    for path in files:
        try:
            module = ModuleInfo.parse(path, root)
        except (SyntaxError, ValueError, UnicodeDecodeError, OSError) as error:
            errors.append(f"{path}: {error}")
            continue
        noqa = scan_noqa(module.source)
        for rule in rules:
            for finding in rule.run(module):
                if finding.code in noqa.get(finding.line, frozenset()):
                    suppressed += 1
                    continue
                findings.append(finding)
    findings.sort()
    return LintResult(
        findings=findings,
        files_checked=len(files),
        suppressed=suppressed,
        errors=errors,
    )
