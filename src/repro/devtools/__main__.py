"""``python -m repro.devtools`` entry point."""

from repro.devtools.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
