"""LRU response cache keyed by scoped content digests, with ETags.

Every cacheable response is addressed by the **scoped corpus digest** of
the query (the digest of the sub-corpus the query can observe, see
:meth:`repro.service.registry.CorpusArtifacts.scope_digest`) plus the
request path and its canonicalised query string.  Two consequences:

* a snapshot delta that does not touch a query's OSes leaves its key --
  and therefore its cached bytes and its ``ETag`` -- intact, so
  ``If-None-Match`` revalidation keeps answering ``304`` across unrelated
  deltas without the server recomputing anything;
* a delta that *does* touch the scope changes the key, so the stale entry
  can never be served again (it ages out of the LRU); explicit per-scope
  invalidation (:meth:`ResponseCache.invalidate_scope`, wired to
  :meth:`repro.snapshots.delta.DeltaIngestPipeline.subscribe`) evicts such
  entries eagerly when a delta lands in-process instead of waiting for
  LRU pressure.

ETags are strong (byte-identical payload guarantee): the hex prefix of a
sha256 over the same key material that addresses the cache entry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


def make_etag(scope_digest: str, path: str, query: str) -> str:
    """A strong ETag for one query over one scoped dataset state."""
    material = "\n".join((scope_digest, path, query))
    return '"' + hashlib.sha256(material.encode("utf-8")).hexdigest()[:32] + '"'


def canonical_query(params: Dict[str, Tuple[str, ...]]) -> str:
    """Query parameters with keys sorted, repeated values in given order.

    Key order never changes a response (``?k=3&top=5`` ≡ ``?top=5&k=3``),
    so sorting keys lets such requests share one cache entry and ETag.
    The *values* of a repeated parameter are left in request order: for
    ``os=A&os=B`` the order is part of the response identity
    (``os_names`` echoes it), so reordered values must address a
    different entry.
    """
    return "&".join(
        f"{key}={value}"
        for key in sorted(params)
        for value in params[key]
    )


@dataclass(frozen=True)
class CachedResponse:
    """One cached response body plus the scope invalidation keys off.

    The ETag is *not* stored: the serving path recomputes it from the same
    key material before consulting the cache, so a stored copy would be
    redundant state to keep in sync.
    """

    body: bytes
    #: OS names the response depends on; ``None`` = the whole catalogue.
    scope: Optional[FrozenSet[str]]


class ResponseCache:
    """Bounded LRU of rendered responses, safe under concurrent requests."""

    def __init__(
        self,
        max_entries: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("the response cache needs at least one entry")
        self._max = max_entries
        self._entries: "OrderedDict[Tuple[str, str, str], CachedResponse]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        # Tallies live in the (possibly shared) metrics registry so that
        # /healthz and /metrics can never disagree; the int properties
        # below preserve the original counter attribute API.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._events = self._metrics.counter(
            "response_cache_events_total",
            "Response cache lookups, evictions and scope invalidations.",
            labels=("event",),
        )

    @property
    def hits(self) -> int:
        return int(self._events.value(event="hit"))

    @property
    def misses(self) -> int:
        return int(self._events.value(event="miss"))

    @property
    def evictions(self) -> int:
        return int(self._events.value(event="eviction"))

    @property
    def invalidations(self) -> int:
        return int(self._events.value(event="invalidation"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key(scope_digest: str, path: str, query: str) -> Tuple[str, str, str]:
        return (scope_digest, path, query)

    def get(self, key: Tuple[str, str, str]) -> Optional[CachedResponse]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._events.inc(event="miss")
                return None
            self._entries.move_to_end(key)
            self._events.inc(event="hit")
            return entry

    def put(self, key: Tuple[str, str, str], response: CachedResponse) -> None:
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self._max:
                self._entries.popitem(last=False)
                self._events.inc(event="eviction")

    def invalidate_scope(self, affected_os: Iterable[str]) -> int:
        """Evict entries whose scope a delta's blast radius can touch.

        ``affected_os`` is a snapshot diff's
        :meth:`~repro.snapshots.diff.SnapshotDiff.affected_os_names`.
        Catalogue-wide entries (``scope=None``) are always evicted -- any
        in-catalogue change can move a global matrix.  Returns the number
        of entries evicted.
        """
        affected = set(affected_os)
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.scope is None or entry.scope & affected
            ]
            for key in stale:
                del self._entries[key]
            if stale:
                self._events.inc(len(stale), event="invalidation")
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
