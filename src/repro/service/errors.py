"""The service's structured JSON error envelope.

Every failure the API reports -- bad query parameters, unknown resources,
state conflicts, drained servers -- is an :class:`ApiError` subclass that
renders to one stable JSON shape::

    {"error": {"code": "not_found", "status": 404,
               "message": "no job named 'job-99'"}}

``code`` is a machine-readable slug per error class, ``status`` repeats the
HTTP status for clients that lose the transport layer (logs, queues) and
``message`` is human-readable.  An optional ``detail`` object carries
structured context (e.g. the offending parameter).  The contract is pinned
by ``tests/service/test_routing_and_errors.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.exceptions import ReproError


class ApiError(ReproError):
    """Base class for every error the HTTP API reports to clients."""

    status: int = 500
    code: str = "internal_error"

    def __init__(self, message: str, detail: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.message = message
        self.detail = detail

    def envelope(self) -> Dict[str, object]:
        """The JSON error payload for this failure."""
        error: Dict[str, object] = {
            "code": self.code,
            "status": self.status,
            "message": self.message,
        }
        if self.detail is not None:
            error["detail"] = self.detail
        return {"error": error}


class BadRequest(ApiError):
    """A malformed query parameter or request body (HTTP 400)."""

    status = 400
    code = "bad_request"


class NotFound(ApiError):
    """An unknown path, resource id or OS name (HTTP 404)."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ApiError):
    """The path exists but not under this HTTP method (HTTP 405)."""

    status = 405
    code = "method_not_allowed"


class Conflict(ApiError):
    """The request contradicts current server state (HTTP 409).

    Raised when a job id is resubmitted with different parameters, or when
    a ledger operation (snapshots, deltas) is asked of a server that is not
    database-backed.
    """

    status = 409
    code = "conflict"


class PayloadTooLarge(ApiError):
    """The request body exceeds the server's limit (HTTP 413)."""

    status = 413
    code = "payload_too_large"


class NotImplementedFeature(ApiError):
    """The request uses an HTTP feature the server does not speak (501).

    Raised for ``Transfer-Encoding: chunked`` bodies: the front end cannot
    parse them, and pretending otherwise would leave the unread chunk
    bytes in the stream to desync the next keep-alive request -- so the
    connection is closed after this envelope is written.
    """

    status = 501
    code = "not_implemented"


class Draining(ApiError):
    """The server received SIGTERM and no longer accepts new work (HTTP 503)."""

    status = 503
    code = "draining"


def internal_error(message: str = "internal server error") -> ApiError:
    """An anonymised 500 envelope (handler tracebacks never leak to clients)."""
    return ApiError(message)
