"""Deterministic partitioning of query combination spaces across shards.

The serving layer's scatter-gather splits the ``C(n, k)`` combination
space of a pair/k-set matrix query into contiguous **rank spans** (ranks
are positions in ``itertools.combinations`` order over the catalogue),
computes each span's partial answer on its owning shard, and merges the
partials back with the same ordering discipline the PR-3 run-range merge
uses (:func:`repro.runner.spans.order_contiguous`): sort by span start,
refuse gaps and overlaps.  Three properties follow:

* **determinism** -- the partition, the span→shard assignment and the
  merge are pure functions of ``(dataset digest, shard count)``, so the
  merged payload is byte-identical to the single-process answer for the
  same dataset digest (regression-tested and gated by
  ``benchmarks/bench_service.py``);
* **digest-consistent routing** -- :func:`shard_for_span` keys the
  assignment on the dataset digest, so for a given dataset state every
  span always lands on the same worker and that worker's scoped response
  cache (its hot partial index) keeps answering it from memory; a new
  snapshot digest reshuffles the assignment together with the caches it
  would have missed anyway;
* **safety under churn** -- every partial carries the dataset digest it
  was computed against, and the gatherer refuses to merge partials from
  two different dataset states (a delta landing mid-scatter degrades to
  local computation, never to a frankenpayload).

The functions here are transport-free; :class:`~repro.service.server
.DiversityService` wires them to peer workers over the cluster's internal
listeners (see :mod:`repro.service.cluster`).
"""

from __future__ import annotations

import hashlib
import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.enums import ServerConfiguration
from repro.runner.spans import order_contiguous, partition_spans
from repro.service import schemas
from repro.service.errors import BadRequest

Span = Tuple[int, int]


def combination_space(candidates: int, k: int) -> int:
    """Size of the rank space a ``(candidates, k)`` query is split over."""
    return math.comb(candidates, k)


def shard_for_span(digest: str, span_index: int, shards: int) -> int:
    """The shard that owns one span of a dataset state's combination space.

    A pure function every worker evaluates identically: the dataset digest
    is hashed into a rotation offset, so span ownership is stable for a
    given dataset state (each worker keeps its partials hot) and
    redistributes when a snapshot delta produces a new digest (whose
    partials are cold everywhere regardless).
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    offset = int.from_bytes(
        hashlib.sha256(digest.encode("utf-8")).digest()[:4], "big"
    )
    return (span_index + offset) % shards


def format_span(span: Span) -> str:
    """Render a span for the internal scatter query string (``lo-hi``)."""
    return f"{span[0]}-{span[1]}"


def parse_span(params: Dict[str, Tuple[str, ...]], total: int) -> Span:
    """Parse and bound-check the ``span`` parameter of a partial query."""
    raw = schemas.single(params, "span")
    if raw is None:
        raise BadRequest(
            "parameter 'span' is required for shard partials",
            detail={"parameter": "span"},
        )
    lo_text, separator, hi_text = raw.partition("-")
    try:
        if not separator:
            raise ValueError(raw)
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise BadRequest(
            f"parameter 'span' must look like 'lo-hi', not {raw!r}",
            detail={"parameter": "span"},
        )
    if not 0 <= lo <= hi <= total:
        raise BadRequest(
            f"span [{lo}, {hi}) is outside the {total}-combination space",
            detail={"parameter": "span", "combinations": total},
        )
    return lo, hi


def _combinations_in(
    os_names: Sequence[str], k: int, span: Span
) -> "itertools.islice":
    """The k-combinations whose lexicographic rank falls inside ``span``.

    ``itertools.combinations`` enumerates in exactly the rank order the
    partition is defined over, so an ``islice`` is the whole unranking.
    """
    return itertools.islice(itertools.combinations(os_names, k), span[0], span[1])


# ---------------------------------------------------------------------------
# span partials (computed on the owning shard)
# ---------------------------------------------------------------------------


def pairs_span_payload(
    artifacts,
    configuration: ServerConfiguration,
    span: Span,
) -> Dict[str, object]:
    """The partial pair matrix for one rank span of ``C(n, 2)``.

    Counts come from the same compiled incidence index the full
    :meth:`~repro.service.registry.CorpusArtifacts.pair_matrix` walk uses
    (intersection-mask popcounts), so a merged set of span partials is
    value-identical to the single-process matrix.
    """
    view = artifacts.filtered_valid(configuration)
    return {
        "digest": artifacts.digest,
        "span": list(span),
        "pairs": [
            [os_a, os_b, view.shared_count((os_a, os_b))]
            for os_a, os_b in _combinations_in(artifacts.os_names, 2, span)
        ],
    }


def ksets_span_payload(
    artifacts,
    configuration: ServerConfiguration,
    k: int,
    top: int,
    span: Span,
) -> Dict[str, object]:
    """The partial k-set summary for one rank span of ``C(n, k)``.

    Only the merge-relevant reduction ships across the wire: the span
    width, how many of its combinations are fully covered, and the span's
    ``top`` best/worst combinations under the global tie-break (count,
    then lexicographic combination) -- the global top-``top`` is always
    contained in the union of per-span top-``top`` lists.
    """
    view = artifacts.filtered_valid(configuration)
    totals = [
        (combo, view.shared_count(combo))
        for combo in _combinations_in(artifacts.os_names, k, span)
    ]
    best = sorted(totals, key=lambda item: (item[1], item[0]))[:top]
    worst = sorted(totals, key=lambda item: (-item[1], item[0]))[:top]
    return {
        "digest": artifacts.digest,
        "span": list(span),
        "combinations": span[1] - span[0],
        "fully_covered": sum(1 for _combo, count in totals if count > 0),
        "best": [[list(combo), count] for combo, count in best],
        "worst": [[list(combo), count] for combo, count in worst],
    }


# ---------------------------------------------------------------------------
# scatter-gather merge (run on whichever worker received the request)
# ---------------------------------------------------------------------------


def _span_of(partial: Dict[str, object]) -> Span:
    span = partial["span"]
    return int(span[0]), int(span[1])


def _check_merge(partials: Sequence[Dict[str, object]], total: int) -> List[Dict[str, object]]:
    """Order partials and enforce single-digest, full-cover merges."""
    digests = {str(partial["digest"]) for partial in partials}
    if len(digests) > 1:
        raise ValueError(
            f"cannot merge partials from {len(digests)} dataset states: "
            f"{sorted(digests)}"
        )
    ordered = order_contiguous(partials, _span_of)
    start, stop = _span_of(ordered[0])[0], _span_of(ordered[-1])[1]
    if start != 0 or stop != total:
        raise ValueError(
            f"merged spans cover [{start}, {stop}) but the combination "
            f"space is [0, {total})"
        )
    return ordered


def merged_pair_matrix_payload(
    artifacts,
    configuration: ServerConfiguration,
    partials: Sequence[Dict[str, object]],
    scope_digest: str,
) -> Dict[str, object]:
    """Assemble the public pairs payload from one partial per span.

    Byte-identical to :func:`repro.service.schemas.pair_matrix_payload`
    over the same dataset state: the merged pair set is complete by the
    contiguity check, and rendering sorts pairs exactly like the
    single-process payload does.
    """
    pairs: List[Tuple[str, str, int]] = []
    for partial in _check_merge(partials, combination_space(len(artifacts.os_names), 2)):
        pairs.extend((str(a), str(b), int(n)) for a, b, n in partial["pairs"])
    return {
        "dataset": schemas.dataset_block(artifacts),
        "configuration": schemas.configuration_slug(configuration),
        "pairs": [
            {"os_a": os_a, "os_b": os_b, "shared": shared}
            for (os_a, os_b), shared in sorted(
                ((pair_a, pair_b), count) for pair_a, pair_b, count in pairs
            )
        ],
        "scope_digest": scope_digest,
    }


def merged_ksets_payload(
    artifacts,
    configuration: ServerConfiguration,
    k: int,
    top: int,
    partials: Sequence[Dict[str, object]],
    scope_digest: str,
) -> Dict[str, object]:
    """Assemble the public k-sets payload from one partial per span.

    Byte-identical to :func:`repro.service.schemas.ksets_payload`: span
    widths and covered counts sum, and the global best/worst lists are
    re-sorted from the per-span candidates under the same (count,
    combination) tie-break.
    """
    ordered = _check_merge(
        partials, combination_space(len(artifacts.os_names), k)
    )
    best: List[Tuple[Tuple[str, ...], int]] = []
    worst: List[Tuple[Tuple[str, ...], int]] = []
    combinations = 0
    fully_covered = 0
    for partial in ordered:
        combinations += int(partial["combinations"])
        fully_covered += int(partial["fully_covered"])
        best.extend(
            (tuple(str(name) for name in combo), int(count))
            for combo, count in partial["best"]
        )
        worst.extend(
            (tuple(str(name) for name in combo), int(count))
            for combo, count in partial["worst"]
        )
    best = sorted(best, key=lambda item: (item[1], item[0]))[:top]
    worst = sorted(worst, key=lambda item: (-item[1], item[0]))[:top]
    return {
        "dataset": schemas.dataset_block(artifacts),
        "configuration": schemas.configuration_slug(configuration),
        "k": k,
        "combinations": combinations,
        "fully_covered": fully_covered,
        "best": [
            {"os_names": list(combo), "shared": count} for combo, count in best
        ],
        "worst": [
            {"os_names": list(combo), "shared": count} for combo, count in worst
        ],
        "scope_digest": scope_digest,
    }


def plan_spans(
    digest: str, candidates: int, k: int, shards: int
) -> List[Tuple[Span, int]]:
    """The scatter plan: every (span, owning shard) for one query.

    Empty spans (a space smaller than the shard count) are dropped -- they
    contribute nothing and would only add wire round-trips.
    """
    spans = partition_spans(combination_space(candidates, k), shards)
    return [
        (span, shard_for_span(digest, index, shards))
        for index, span in enumerate(spans)
        if span[0] != span[1]
    ]
