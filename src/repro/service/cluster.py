"""Multi-process serving: a worker fleet behind one public address.

``repro serve --workers N`` (N > 1) runs N **processes**, each a full
:class:`~repro.service.server.DiversityService` with its own artifact
registry, response cache and request thread pool -- no GIL sharing, no
cross-process locks on the hot path.  Three pieces glue them into one
deployment:

* **one public address** -- every worker binds the same ``host:port``
  with ``SO_REUSEPORT`` so the kernel load-balances accepted connections
  across processes.  Where the option is missing (or ``--front-router``
  forces it), a tiny stdlib asyncio TCP proxy in the parent process
  round-robins connections to the workers instead.
* **internal listeners** -- every worker also binds a private per-worker
  port.  Scatter-gather span partials, cross-process cache invalidation
  and per-worker health checks travel over these; the public address
  never routes them.
* **sharding config** -- the deployment config is specialised per worker
  (``shards=N``, ``shard_index=i``, ``peers=<internal URLs>``), which is
  all :mod:`repro.service.sharding` needs for digest-consistent span
  ownership.

Workers rebuild their dataset from the config alone (a ``--db`` ledger
path, a ``--catalogue`` spec, or the seeded synthetic corpus), so the
spawn boundary never pickles datasets -- and a shared SQLite ledger is
the single source of truth every worker re-reads per request, which is
why a worker that misses an invalidation broadcast still answers with
fresh digests.

:class:`ServiceCluster` is the test/benchmark harness (start/stop from
any thread); :func:`serve_cluster` is the blocking CLI entry point with
SIGTERM-propagating drain.
"""

from __future__ import annotations

import asyncio
import dataclasses
import http.client
import json
import multiprocessing
import signal
import socket
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.config import ServiceConfig, ServiceConfigError
from repro.service.server import (
    DiversityService,
    HttpRequest,
    _handle_connection,
)

#: How long ``ServiceCluster.start`` waits for every worker's internal
#: health check before declaring the deployment dead.
READY_TIMEOUT = 60.0


def reuseport_available() -> bool:
    """Whether this platform can share one listening port across processes."""
    return hasattr(socket, "SO_REUSEPORT")


# ---------------------------------------------------------------------------
# peer clients (duck-typed: get_json / post_json)
# ---------------------------------------------------------------------------


class HttpPeer:
    """A worker's internal listener, as a blocking JSON client.

    Used from dispatch threads only (never the event loop): one short
    connection per call keeps the client trivially thread-safe, and the
    internal listeners are loopback sockets where setup cost is noise
    next to the span computation being fetched.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        parts = urlsplit(base_url)
        if parts.hostname is None or parts.port is None:
            raise ServiceConfigError(
                f"peer URL {base_url!r} needs an explicit host and port"
            )
        self.base_url = base_url
        self._host = parts.hostname
        self._port = parts.port
        self._timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            sent = {"Content-Type": "application/json"} if body else {}
            sent.update(headers or {})
            connection.request(method, path, body=body, headers=sent)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def get_json(
        self, path: str, headers: Optional[Dict[str, str]] = None
    ) -> Optional[Dict[str, object]]:
        """GET a JSON payload; ``None`` on any non-200 answer."""
        status, body = self._request("GET", path, None, headers)
        if status != 200:
            return None
        return json.loads(body)

    def post_json(
        self, path: str, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> int:
        """POST a JSON body; returns the response status."""
        status, _body = self._request("POST", path, body, headers)
        return status


class LocalPeer:
    """A peer that dispatches straight into an in-process service.

    Lets tests and benchmarks exercise the exact scatter-gather code path
    -- query-string building, partial parsing, digest guards -- against N
    :class:`DiversityService` instances in one process, with no sockets
    and no spawn latency.
    """

    def __init__(self, app: DiversityService) -> None:
        self.app = app

    def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        parts = urlsplit(path)
        query = {
            name: tuple(values)
            for name, values in parse_qs(
                parts.query, keep_blank_values=True
            ).items()
        }
        sent = {"content-type": "application/json"} if body else {}
        for name, value in (headers or {}).items():
            sent[name.lower()] = value
        response = self.app.dispatch(
            HttpRequest(
                method=method, path=parts.path, query=query,
                headers=sent, body=body,
            )
        )
        return response.status, response.body

    def get_json(
        self, path: str, headers: Optional[Dict[str, str]] = None
    ) -> Optional[Dict[str, object]]:
        status, body = self._dispatch("GET", path, b"", headers)
        if status != 200:
            return None
        return json.loads(body)

    def post_json(
        self, path: str, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> int:
        status, _body = self._dispatch("POST", path, body, headers)
        return status


def local_shard_fleet(
    config: ServiceConfig, shards: int, provider=None
) -> List[DiversityService]:
    """N sharded services wired together with :class:`LocalPeer` rows.

    The in-process twin of a real cluster: every service owns a shard
    index and scatters to the others through direct dispatch.  Providers
    may be shared (static datasets are immutable; snapshot providers open
    per-call connections), so all N answer for the same dataset state.
    """
    configs = [
        dataclasses.replace(config, shards=shards, shard_index=index, peers=())
        for index in range(shards)
    ]
    services = [DiversityService(c, provider=provider) for c in configs]
    peers = [LocalPeer(service) for service in services]
    for service in services:
        service.peers = list(peers)
    return services


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _host_port(url: str) -> Tuple[str, int]:
    parts = urlsplit(url)
    if parts.hostname is None or parts.port is None:
        raise ServiceConfigError(f"URL {url!r} needs an explicit host and port")
    return parts.hostname, parts.port


def _reuseport_socket(host: str, port: int) -> socket.socket:
    """A listening socket the kernel load-balances with the other workers'."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
        sock.setblocking(False)
    except BaseException:  # repro: noqa[GEN301] -- re-raised: only the leaked fd is cleaned up
        sock.close()
        raise
    return sock


async def _worker_serve(
    app: DiversityService,
    config: ServiceConfig,
    public: Optional[Tuple[str, int]],
) -> int:
    """One worker's event loop: internal listener, optional public listener."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    def handler(reader, writer):
        return _handle_connection(app, reader, writer)

    internal_host, internal_port = _host_port(config.peers[config.shard_index])
    internal = await asyncio.start_server(
        handler, host=internal_host, port=internal_port
    )
    servers = [internal]
    if public is not None:
        servers.append(
            await asyncio.start_server(
                handler, sock=_reuseport_socket(public[0], public[1])
            )
        )
    app.obs_log.log(
        "worker.up",
        shard=config.shard_index,
        shards=config.shards,
        internal=f"http://{internal_host}:{internal_port}",
        public=f"http://{public[0]}:{public[1]}" if public else None,
    )
    await stop.wait()
    for server in servers:
        server.close()
        await server.wait_closed()
    drained = await app.drain_async(config.drain_grace)
    app.shutdown()
    return 0 if drained else 1


def worker_main(
    config: ServiceConfig, public: Optional[Tuple[str, int]]
) -> None:
    """Spawn target for one worker process (must stay module-level)."""
    app = DiversityService(config)
    sys.exit(asyncio.run(_worker_serve(app, config, public)))


# ---------------------------------------------------------------------------
# front-router fallback (platforms without SO_REUSEPORT, or --front-router)
# ---------------------------------------------------------------------------


async def _pump(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            writer.write(chunk)
            await writer.drain()
        if writer.can_write_eof():
            writer.write_eof()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass


class FrontRouter:
    """A round-robin TCP proxy from the public address to worker listeners.

    Deliberately layer-4: it never parses HTTP, so keep-alive pipelining,
    chunked 501s and half-closed streams all behave exactly as if the
    client had dialled the worker directly.  Runs its own event loop on a
    daemon thread so :class:`ServiceCluster` can drive it synchronously.
    """

    def __init__(
        self, host: str, port: int, backends: Sequence[Tuple[str, int]]
    ) -> None:
        if not backends:
            raise ServiceConfigError("the front-router needs at least one backend")
        self._host = host
        self._port = port
        self._backends = list(backends)
        self._next = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.bound_port: Optional[int] = None

    async def _relay(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        backend = self._backends[self._next % len(self._backends)]
        self._next += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(*backend)
        except OSError:
            writer.close()
            return
        try:
            await asyncio.gather(
                _pump(reader, upstream_writer),
                _pump(upstream_reader, writer),
                return_exceptions=True,
            )
        finally:
            for stream in (writer, upstream_writer):
                stream.close()
                try:
                    await stream.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    def start(self) -> int:
        """Bind and proxy on a background thread; returns the bound port."""
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def main() -> None:
                self._stop = asyncio.Event()
                try:
                    server = await asyncio.start_server(
                        self._relay, host=self._host, port=self._port
                    )
                except OSError as error:
                    failure["error"] = error
                    ready.set()
                    return
                self.bound_port = server.sockets[0].getsockname()[1]
                ready.set()
                await self._stop.wait()
                server.close()
                await server.wait_closed()

            loop.run_until_complete(main())
            # Reap in-flight relay tasks before closing the loop, so no
            # half-open transport is garbage-collected against a dead loop.
            pending = [
                task for task in asyncio.all_tasks(loop) if not task.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-front-router", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=10) or self.bound_port is None:
            raise RuntimeError(
                f"front-router failed to start: {failure.get('error', 'timeout')}"
            )
        return self.bound_port

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)


# ---------------------------------------------------------------------------
# the cluster
# ---------------------------------------------------------------------------


def _reserve_ports(host: str, count: int) -> List[int]:
    """Distinct free ports, reserved simultaneously so none repeats."""
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class ServiceCluster:
    """An N-worker deployment, drivable from tests and the CLI.

    ``start()`` derives one sharded config per worker, spawns the
    processes (``spawn`` context: workers rebuild state from config, so
    behaviour matches a cold ``repro serve`` exactly), waits for every
    internal health check, and returns the public base URL.  ``stop()``
    SIGTERMs the fleet and reaps it.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.mode = (
            "front-router"
            if config.front_router or not reuseport_available()
            else "reuseport"
        )
        self.processes: List[multiprocessing.process.BaseProcess] = []
        self.worker_configs: List[ServiceConfig] = []
        self.internal_urls: List[str] = []
        self.base_url: Optional[str] = None
        self._router: Optional[FrontRouter] = None

    def start(self, ready_timeout: float = READY_TIMEOUT) -> str:
        workers = self.config.workers
        host = self.config.host
        ports = _reserve_ports(host, workers + (0 if self.config.port else 1))
        internal_ports, spare = ports[:workers], ports[workers:]
        public_port = self.config.port or spare[0]
        peers = tuple(f"http://{host}:{port}" for port in internal_ports)
        self.internal_urls = list(peers)
        public = (host, public_port) if self.mode == "reuseport" else None
        context = multiprocessing.get_context("spawn")
        for index in range(workers):
            worker_config = dataclasses.replace(
                self.config,
                port=public_port,
                shards=workers,
                shard_index=index,
                peers=peers,
                front_router=False,
            )
            self.worker_configs.append(worker_config)
            process = context.Process(
                target=worker_main,
                args=(worker_config, public),
                name=f"repro-worker-{index}",
            )
            process.start()
            self.processes.append(process)
        try:
            self._await_ready(ready_timeout)
            if self.mode == "front-router":
                self._router = FrontRouter(
                    host, public_port, [_host_port(url) for url in peers]
                )
                self._router.start()
        except BaseException:  # repro: noqa[GEN301] -- re-raised: a half-started fleet must not outlive the failure
            self.stop()
            raise
        self.base_url = f"http://{host}:{public_port}"
        return self.base_url

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for index, url in enumerate(self.internal_urls):
            peer = HttpPeer(url, timeout=2.0)
            while True:
                process = self.processes[index]
                if not process.is_alive():
                    raise RuntimeError(
                        f"worker {index} exited with code {process.exitcode} "
                        "before becoming healthy"
                    )
                try:
                    if peer.get_json("/healthz") is not None:
                        break
                except OSError:
                    pass
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {index} ({url}) not healthy after {timeout}s"
                    )
                time.sleep(0.05)

    def healthz(self) -> List[Dict[str, object]]:
        """Every worker's health, in shard order -- dead peers included.

        Each record is ``{"url", "ok", "payload", "error"}``: a healthy
        worker carries its ``/healthz`` payload and ``error: None``; a
        dead or unhealthy one reports ``ok: False`` with the failure text
        instead of silently contributing a ``None`` entry.
        """
        report: List[Dict[str, object]] = []
        for url in self.internal_urls:
            record: Dict[str, object] = {
                "url": url, "ok": False, "payload": None, "error": None,
            }
            try:
                payload = HttpPeer(url).get_json("/healthz")
            except OSError as error:
                record["error"] = f"{type(error).__name__}: {error}"
            else:
                if payload is None:
                    record["error"] = "non-200 health response"
                else:
                    record["ok"] = True
                    record["payload"] = payload
            report.append(record)
        return report

    def stop(self, grace: float = 15.0) -> bool:
        """SIGTERM the fleet, reap it, stop the router; True if all drained."""
        if self._router is not None:
            self._router.stop()
            self._router = None
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        clean = True
        deadline = time.monotonic() + grace
        for process in self.processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover -- drain overran its grace
                process.kill()
                process.join(timeout=5)
                clean = False
            elif process.exitcode != 0:
                clean = False
        self.processes = []
        return clean

    def __enter__(self) -> "ServiceCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_cluster(config: ServiceConfig) -> int:
    """Run an N-worker deployment until SIGTERM/SIGINT (CLI entry point)."""
    cluster = ServiceCluster(config)
    stop = threading.Event()

    def on_signal(_signum, _frame):
        stop.set()

    previous = {
        signum: signal.signal(signum, on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        base_url = cluster.start()
        print(
            f"repro cluster listening on {base_url} "
            f"({config.workers} workers, {cluster.mode} mode)",
            file=sys.stderr,
        )
        stop.wait()
        print("signal received; draining workers ...", file=sys.stderr)
        clean = cluster.stop(grace=config.drain_grace + 5.0)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(
        "shutdown complete" if clean else "shutdown with unfinished workers",
        file=sys.stderr,
    )
    return 0 if clean else 1
