"""Digest-keyed corpus compilation: providers, artifacts and the registry.

The serving layer's core promise is **compile once per dataset state,
answer from memory**.  Three pieces deliver it:

* a *dataset provider* names the current dataset state cheaply
  (:class:`StaticDatasetProvider` for fixed entry sets,
  :class:`SnapshotDatasetProvider` for a PR-4 snapshot store, where the
  state is the ledger head's content digest -- one SQL row, no entry
  loads) and materialises the entries only when a compile is actually
  needed;
* :class:`CorpusArtifacts` wraps one compiled
  :class:`~repro.analysis.dataset.VulnerabilityDataset` together with
  memoized derived artefacts (pair matrices, k-set totals, selectors,
  scoped digests) so repeated queries never recompute;
* :class:`ArtifactRegistry` memoizes artifacts **by dataset digest** with
  per-digest locks: N concurrent identical requests trigger exactly one
  compile (``compile_count`` counts them, which the concurrency tests
  assert), and an LRU bound keeps at most ``max_datasets`` corpora live
  across rolling snapshot deltas.

Scoped digests are the PR-3/PR-4 content addresses
(:func:`repro.runner.cache.scoped_corpus_digest`): the digest of the
sub-corpus a query can observe.  They are what response ``ETag``\\ s derive
from, so a snapshot delta that never touches a query's OSes leaves its
ETag -- and every conditional revalidation against it -- intact.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.enums import ServerConfiguration
from repro.core.models import VulnerabilityEntry
from repro.obs.clock import CLOCK, Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.runner.cache import scoped_corpus_digest
from repro.service.errors import Conflict, NotFound
from repro.snapshots.digests import entry_digest
from repro.snapshots.diff import SnapshotDiff
from repro.snapshots.store import SnapshotRecord

#: Scoped digests memoized per compiled corpus; scopes are client-chosen
#: (each distinct ``os=`` combination is one), so the memo is LRU-bounded.
#: A miss only costs one pass over the precomputed entry digests.
MAX_SCOPE_DIGESTS = 1024


@dataclass(frozen=True)
class DatasetState:
    """A cheap name for one dataset state: its digest plus provenance."""

    digest: str
    snapshot: Optional[SnapshotRecord] = None


class StaticDatasetProvider:
    """A fixed entry set (synthetic corpus, feeds directory, test fixture)."""

    def __init__(
        self,
        entries: Sequence[VulnerabilityEntry],
        os_names: Optional[Sequence[str]] = None,
        engine: str = "bitset",
        label: str = "static",
    ) -> None:
        self._entries = list(entries)
        self._os_names = tuple(os_names) if os_names is not None else None
        self._engine = engine
        self.label = label
        self._digest: Optional[str] = None

    @property
    def source(self) -> str:
        return self.label

    def current(self) -> DatasetState:
        """The (memoized) content digest of the fixed entry set."""
        if self._digest is None:
            from repro.snapshots.digests import dataset_digest_of

            self._digest = dataset_digest_of(self._entries)
        return DatasetState(digest=self._digest)

    def load(self, state: DatasetState) -> VulnerabilityDataset:
        if self._os_names is not None:
            return VulnerabilityDataset(
                self._entries, self._os_names, engine=self._engine
            )
        return VulnerabilityDataset(self._entries, engine=self._engine)

    # Ledger operations are meaningless without a snapshot store.

    def store(self):
        raise Conflict(
            "this server is not database-backed; snapshot and delta "
            "operations need `repro serve --db PATH`"
        )


class SnapshotDatasetProvider:
    """A PR-4 snapshot store: the state is the (pinned or head) ledger row.

    Every call opens a fresh SQLite connection and closes it before
    returning, so provider methods are safe from any thread -- the asyncio
    loop, the request executor and the job workers never share a
    connection.  ``current()`` reads one ledger row; entries are only
    loaded (``load``) when the registry actually needs to compile.
    """

    def __init__(
        self,
        db_path: str,
        snapshot: Optional[str] = None,
        engine: str = "bitset",
    ) -> None:
        if not Path(db_path).exists():
            raise NotFound(
                f"database {db_path} does not exist; run `repro ingest` first"
            )
        self._db_path = str(db_path)
        self._pin = snapshot
        self._engine = engine

    @property
    def source(self) -> str:
        pin = f"@{self._pin}" if self._pin else ""
        return f"db:{self._db_path}{pin}"

    @property
    def db_path(self) -> str:
        return self._db_path

    def _open(self):
        from repro.db.database import VulnerabilityDatabase

        return VulnerabilityDatabase(self._db_path)

    def _resolve(self, store) -> SnapshotRecord:
        from repro.core.exceptions import DatabaseError

        if self._pin is None:
            head = store.head()
            if head is None:
                raise Conflict(
                    f"database {self._db_path} has no snapshots; "
                    "run `repro ingest` first"
                )
            return head
        try:
            return store.resolve(self._pin)
        except DatabaseError as error:
            raise NotFound(str(error)) from error

    def current(self) -> DatasetState:
        """The ledger row the server currently serves (head unless pinned)."""
        from repro.snapshots.store import SnapshotStore

        database = self._open()
        try:
            record = self._resolve(SnapshotStore(database))
        finally:
            database.close()
        return DatasetState(digest=record.digest, snapshot=record)

    def load(self, state: DatasetState) -> VulnerabilityDataset:
        from repro.snapshots.store import SnapshotStore

        database = self._open()
        try:
            store = SnapshotStore(database)
            snapshot_id = (
                state.snapshot.snapshot_id
                if state.snapshot is not None
                else self._resolve(store).snapshot_id
            )
            return store.dataset_at(snapshot_id, engine=self._engine)
        finally:
            database.close()

    def store(self):
        """A fresh (database, SnapshotStore) pair; the caller closes it."""
        from repro.snapshots.store import SnapshotStore

        database = self._open()
        return database, SnapshotStore(database)


class CorpusArtifacts:
    """One compiled dataset plus memoized derived artefacts.

    Everything here is immutable-after-compute and guarded by one lock, so
    artefacts can be shared freely across request threads.  The compile
    itself (incidence bitmasks) happens in :meth:`compile`, which the
    registry calls exactly once per digest.
    """

    def __init__(self, dataset: VulnerabilityDataset, state: DatasetState) -> None:
        self.dataset = dataset
        self.state = state
        self._lock = threading.RLock()
        self._valid: Optional[VulnerabilityDataset] = None
        self._views: Dict[ServerConfiguration, VulnerabilityDataset] = {}
        self._entry_digests: Optional[Dict[int, str]] = None
        #: LRU-bounded: clients choose the scope (the OS set of a query),
        #: so an unbounded memo would grow with every distinct os=
        #: combination ever requested.
        self._scoped: "OrderedDict[Tuple[Optional[FrozenSet[str]], ServerConfiguration], str]" = (
            OrderedDict()
        )
        self._pair_matrices: Dict[ServerConfiguration, Dict[Tuple[str, str], int]] = {}
        self._selectors: Dict[ServerConfiguration, ReplicaSetSelector] = {}
        self._ksets: Dict[ServerConfiguration, KSetAnalysis] = {}

    @property
    def digest(self) -> str:
        return self.state.digest

    @property
    def os_names(self) -> Tuple[str, ...]:
        return self.dataset.os_names

    def compile(self) -> "CorpusArtifacts":
        """Build the bitset incidence index eagerly (the expensive step)."""
        self.dataset.compile()
        return self

    def valid_dataset(self) -> VulnerabilityDataset:
        """The valid-entry view most analyses run on (compiled lazily)."""
        with self._lock:
            if self._valid is None:
                self._valid = self.dataset.valid().compile()
            return self._valid

    def filtered_valid(
        self, configuration: ServerConfiguration
    ) -> VulnerabilityDataset:
        """The valid entries admitted by one server configuration, compiled
        once per configuration and shared by every query that needs it."""
        with self._lock:
            if configuration not in self._views:
                self._views[configuration] = (
                    self.valid_dataset().filtered(configuration).compile()
                )
            return self._views[configuration]

    # -- scoped content addresses ---------------------------------------------

    def scope_digest(
        self,
        os_names: Optional[Sequence[str]] = None,
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
    ) -> str:
        """Digest of the sub-corpus a query over ``os_names`` can observe.

        ``None`` means the whole catalogue (global queries).  Stable across
        snapshot deltas that do not touch the scope -- the property response
        ETags inherit.
        """
        scope = frozenset(os_names) if os_names is not None else None
        key = (scope, configuration)
        with self._lock:
            if key not in self._scoped:
                if self._entry_digests is None:
                    self._entry_digests = {
                        id(entry): entry_digest(entry)
                        for entry in self.dataset.entries
                    }
                self._scoped[key] = scoped_corpus_digest(
                    self.dataset.entries,
                    sorted(scope) if scope is not None else None,
                    configuration,
                    digests=self._entry_digests,
                )
            self._scoped.move_to_end(key)
            while len(self._scoped) > MAX_SCOPE_DIGESTS:
                self._scoped.popitem(last=False)
            return self._scoped[key]

    # -- derived analyses -----------------------------------------------------

    def pair_matrix(
        self, configuration: ServerConfiguration
    ) -> Dict[Tuple[str, str], int]:
        """The full pairwise shared matrix under one configuration."""
        with self._lock:
            if configuration not in self._pair_matrices:
                view = self.filtered_valid(configuration)
                self._pair_matrices[configuration] = view.query_index().pair_matrix(
                    self.os_names
                )
            return self._pair_matrices[configuration]

    def selector(self, configuration: ServerConfiguration) -> ReplicaSetSelector:
        """A replica-set selector over this corpus (pair matrix compiled once)."""
        with self._lock:
            if configuration not in self._selectors:
                self._selectors[configuration] = ReplicaSetSelector(
                    pair_matrix=self.pair_matrix(configuration),
                    candidates=self.os_names,
                )
            return self._selectors[configuration]

    def ksets(self, configuration: ServerConfiguration) -> KSetAnalysis:
        """The k-set analysis under one configuration."""
        with self._lock:
            if configuration not in self._ksets:
                # Reuses the memoized filtered view (and its compiled
                # index) rather than letting KSetAnalysis rebuild it.
                self._ksets[configuration] = KSetAnalysis(
                    self.filtered_valid(configuration),
                    configuration=configuration,
                    os_names=self.os_names,
                    prefiltered=True,
                )
            return self._ksets[configuration]

    def shared_count(
        self,
        os_names: Sequence[str],
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
    ) -> int:
        """Vulnerabilities common to every named OS under a configuration."""
        return self.filtered_valid(configuration).shared_count(os_names)


class ArtifactRegistry:
    """Memoizes compiled corpora by dataset digest, one compile per digest.

    ``get(state, loader)`` returns the compiled artifacts for a dataset
    state, compiling at most once per digest even under concurrent callers:
    a per-digest lock serialises the compile while other digests proceed in
    parallel.  ``compile_count`` is the total number of compiles performed
    -- the concurrency test drives N identical requests through a live
    server and asserts it stays at one.
    """

    def __init__(
        self,
        max_datasets: int = 4,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if max_datasets < 1:
            raise ValueError("the registry must hold at least one dataset")
        self._max = max_datasets
        self._artifacts: "OrderedDict[str, CorpusArtifacts]" = OrderedDict()
        self._locks: Dict[str, threading.Lock] = {}
        self._mutex = threading.Lock()
        # Tallies live in the (possibly shared) metrics registry; the int
        # properties below keep the original counter attribute API, so
        # /healthz and /metrics report from the same source.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer
        self._clock = clock if clock is not None else CLOCK
        self._events = self._metrics.counter(
            "registry_events_total",
            "Artifact registry compiles, warm hits and incremental patches.",
            labels=("event",),
        )
        self._compile_seconds = self._metrics.histogram(
            "registry_compile_seconds",
            "Wall time of full corpus compiles.",
        )
        self._patch_seconds = self._metrics.histogram(
            "registry_patch_seconds",
            "Wall time of incremental diff patches (compile avoided).",
        )

    @property
    def compile_count(self) -> int:
        return int(self._events.value(event="compile"))

    @property
    def hit_count(self) -> int:
        return int(self._events.value(event="hit"))

    @property
    def patched_count(self) -> int:
        return int(self._events.value(event="patch"))

    def _record_span(self, name: str, started: float, elapsed: float) -> None:
        """Attach a compile/patch span to the active request trace, if any."""
        if self._tracer is None:
            return
        trace = self._tracer.current()
        if trace is not None:
            trace.record(name, started, elapsed)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._artifacts)

    def digests(self) -> List[str]:
        """Digests currently compiled, least recently used first."""
        with self._mutex:
            return list(self._artifacts)

    def get(
        self,
        state: DatasetState,
        loader: Callable[[DatasetState], VulnerabilityDataset],
    ) -> CorpusArtifacts:
        """The compiled artifacts for ``state``, compiling once if needed."""
        with self._mutex:
            artifacts = self._artifacts.get(state.digest)
            if artifacts is not None:
                self._artifacts.move_to_end(state.digest)
                self._events.inc(event="hit")
                return artifacts
            lock = self._locks.setdefault(state.digest, threading.Lock())
        with lock:
            # Double-checked: another thread may have compiled while this
            # one waited on the per-digest lock.
            with self._mutex:
                artifacts = self._artifacts.get(state.digest)
                if artifacts is not None:
                    self._events.inc(event="hit")
                    return artifacts
            started = self._clock.perf()
            compiled = CorpusArtifacts(loader(state), state).compile()
            elapsed = self._clock.perf() - started
            self._compile_seconds.observe(elapsed)
            self._record_span("registry.compile", started, elapsed)
            with self._mutex:
                self._events.inc(event="compile")
                self._artifacts[state.digest] = compiled
                self._artifacts.move_to_end(state.digest)
                while len(self._artifacts) > self._max:
                    evicted, _ = self._artifacts.popitem(last=False)
                    self._locks.pop(evicted, None)
            return compiled

    def patch(
        self,
        parent_state: DatasetState,
        state: DatasetState,
        diff: SnapshotDiff,
    ) -> Optional[CorpusArtifacts]:
        """Derive ``state``'s artifacts from its parent's packed index.

        The incremental serving path: when a snapshot delta lands and the
        parent digest's corpus is already compiled on the ``"packed"``
        engine, :meth:`~repro.analysis.engine.PackedIndex.apply_diff`
        patches only the touched entry columns instead of recompiling the
        whole corpus, and the result is registered under the new digest so
        the next request hits warm.  Returns ``None`` (and the next ``get``
        compiles from scratch) whenever patching does not apply: the parent
        is not cached, the cached dataset is not packed, or the new digest
        is already compiled.  Both paths produce byte-identical datasets,
        scoped digests and ETags -- ``apply_diff`` is bit-for-bit equal to a
        recompile -- so patching is purely a latency optimisation,
        observable only through ``patched_count``.
        """
        with self._mutex:
            if state.digest in self._artifacts:
                self._artifacts.move_to_end(state.digest)
                self._events.inc(event="hit")
                return self._artifacts[state.digest]
            parent = self._artifacts.get(parent_state.digest)
        if parent is None or parent.dataset.engine != "packed":
            return None
        started = self._clock.perf()
        patched_index = parent.dataset.packed.apply_diff(diff)
        dataset = VulnerabilityDataset.from_packed_index(
            patched_index, snapshot=state.snapshot
        )
        artifacts = CorpusArtifacts(dataset, state).compile()
        elapsed = self._clock.perf() - started
        with self._mutex:
            existing = self._artifacts.get(state.digest)
            if existing is not None:
                self._events.inc(event="hit")
                return existing
            self._patch_seconds.observe(elapsed)
            self._record_span("registry.patch", started, elapsed)
            self._events.inc(event="patch")
            self._artifacts[state.digest] = artifacts
            self._artifacts.move_to_end(state.digest)
            while len(self._artifacts) > self._max:
                evicted, _ = self._artifacts.popitem(last=False)
                self._locks.pop(evicted, None)
        return artifacts

    def clear(self) -> None:
        """Drop every compiled dataset (the benchmark's cold-path reset)."""
        with self._mutex:
            self._artifacts.clear()
            self._locks.clear()
