"""Background simulation jobs: submit, poll, drain.

Long-running work (Monte-Carlo sweeps) never executes inside a request:
``POST /v1/simulations`` validates the grid, registers a :class:`Job` and
returns ``202 Accepted`` with the job id; a worker thread then drives the
PR-3 :class:`~repro.runner.runner.GridRunner` (which fans the grid out to
its own process pool) and stores the deterministic
:meth:`~repro.runner.runner.SweepReport.to_json_payload` as the job
result.  Clients poll ``GET /v1/jobs/<id>`` through the
``queued -> running -> done | failed`` lifecycle.

Submission is idempotent per client-supplied id: resubmitting the same id
with the same request body returns the existing job; the same id with a
*different* body is a 409 conflict.  :meth:`JobTable.drain` flips the
table into drain mode (new submissions fail with 503) and waits for
running jobs -- the SIGTERM path of the server.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.runner.grid import ExperimentGrid
from repro.service.errors import BadRequest, Conflict, Draining, NotFound

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Client-supplied job ids: conservative token charset only, so an id can
#: never smuggle header-breaking bytes into the ``Location`` header or
#: path separators into ``GET /v1/jobs/<id>`` routing.
JOB_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def request_fingerprint(payload: Mapping[str, object]) -> str:
    """Content address of a simulation request body (id excluded).

    Two bodies with the same fingerprint describe the same work, which is
    what makes resubmission under one client id idempotent.
    """
    material = {key: value for key, value in payload.items() if key != "id"}
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One background simulation job and its lifecycle record."""

    job_id: str
    fingerprint: str
    grid: ExperimentGrid
    seed: int
    dataset_digest: str
    #: The exact dataset the job was submitted against -- captured at
    #: submit time so a later snapshot delta (or registry eviction) cannot
    #: change what the job computes.
    dataset: object = field(default=None, repr=False, compare=False)
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    def payload(self) -> Dict[str, object]:
        """The JSON view polled via ``GET /v1/jobs/<id>``.

        Reads ``state`` exactly once: the executor writes result/error
        *before* flipping the state to a terminal value, so a payload that
        says ``done`` always carries its result (and the body never mixes
        two lifecycle stages), even though pollers read without a lock.
        """
        state = self.state
        body: Dict[str, object] = {
            "job_id": self.job_id,
            "state": state,
            "cells": len(self.grid),
            "runs_per_cell": self.grid.runs,
            "seed": self.seed,
            "dataset_digest": self.dataset_digest,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if state == DONE:
            body["result"] = self.result
        if state == FAILED:
            body["error"] = self.error
        return body


class JobTable:
    """Registers, executes and drains background simulation jobs.

    ``runner_factory(job)`` must return the sweep report payload for one
    job; the table owns a small thread pool that invokes it.  The factory runs off the event loop, so it may block for minutes
    -- the process pool inside :class:`~repro.runner.runner.GridRunner`
    provides the actual parallelism.
    """

    def __init__(
        self,
        runner_factory: Callable[[Job], Dict[str, object]],
        executor_threads: int = 2,
        max_jobs: int = 128,
    ) -> None:
        if max_jobs < 1:
            raise ValueError("the job table needs room for at least one job")
        self._runner_factory = runner_factory
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-job"
        )
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._draining = False
        self._idle = threading.Condition(self._lock)
        self._max_jobs = max_jobs

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for ``/healthz``)."""
        with self._lock:
            counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        grid: ExperimentGrid,
        seed: int,
        dataset_digest: str,
        fingerprint: str,
        job_id: Optional[str] = None,
        dataset: object = None,
    ) -> Job:
        """Register a job and schedule it; idempotent per client id.

        Returns the (new or existing) job.  Raises
        :class:`~repro.service.errors.Conflict` when ``job_id`` names an
        existing job with a different fingerprint, and
        :class:`~repro.service.errors.Draining` after :meth:`drain`.
        """
        with self._lock:
            if self._draining:
                raise Draining("the server is draining and accepts no new jobs")
            if job_id is not None:
                if not JOB_ID_PATTERN.match(job_id):
                    raise BadRequest(
                        f"invalid job id {job_id!r}; expected 1-64 characters "
                        "from [A-Za-z0-9._-]",
                        detail={"job_id": job_id},
                    )
                existing = self._jobs.get(job_id)
                if existing is not None:
                    if existing.fingerprint != fingerprint:
                        raise Conflict(
                            f"job {job_id!r} already exists with a different "
                            "request body",
                            detail={"job_id": job_id},
                        )
                    return existing
            else:
                # Generated ids skip over anything a client already claimed.
                while True:
                    job_id = f"job-{next(self._counter)}"
                    if job_id not in self._jobs:
                        break
            job = Job(
                job_id=job_id,
                fingerprint=fingerprint,
                grid=grid,
                seed=seed,
                dataset_digest=dataset_digest,
                dataset=dataset,
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._evict_finished()
            # Scheduled under the lock so a concurrent drain() cannot shut
            # the executor down between the draining check and this call.
            self._executor.submit(self._execute, job)
        return job

    def _evict_finished(self) -> None:
        """Drop the oldest *terminal* jobs beyond the table bound.

        Called with the lock held.  Queued/running jobs are never evicted,
        so a long-lived server under periodic submissions holds a bounded
        history (a client that polls promptly always sees its result; one
        that returns after ``max_jobs`` newer submissions gets a 404, the
        same contract as any expiring job store).
        """
        if len(self._jobs) <= self._max_jobs:
            return
        for job_id in list(self._order):
            if len(self._jobs) <= self._max_jobs:
                break
            if self._jobs[job_id].state in (DONE, FAILED):
                del self._jobs[job_id]
                self._order.remove(job_id)

    def _execute(self, job: Job) -> None:
        with self._lock:
            job.state = RUNNING
            job.started_at = time.time()
        try:
            result = self._runner_factory(job)
        except Exception as error:  # repro: noqa[GEN301] -- worker-thread boundary: every failure is reported via the job record
            with self._idle:
                # Pollers read job fields without the lock, so the payload
                # (error/result) must be in place *before* the state flips
                # to a terminal value -- state is always written last.
                job.error = f"{type(error).__name__}: {error}"
                job.finished_at = time.time()
                job.dataset = None  # release the compiled corpus
                job.state = FAILED
                self._evict_finished()
                self._idle.notify_all()
            return
        with self._idle:
            job.result = result
            job.finished_at = time.time()
            job.dataset = None  # release the compiled corpus
            job.state = DONE
            self._evict_finished()
            self._idle.notify_all()

    # -- queries --------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise NotFound(f"no job named {job_id!r}", detail={"job_id": job_id})
        return job

    def list(self) -> List[Job]:
        """Jobs in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    # -- shutdown -------------------------------------------------------------

    def drain(self, grace: float = 10.0) -> bool:
        """Refuse new jobs, wait up to ``grace`` seconds for running ones.

        Returns ``True`` when every job reached a terminal state in time.
        Idempotent; the executor is shut down either way (a job still
        running after the grace keeps its non-terminal state, which the
        caller can log).
        """
        deadline = time.monotonic() + grace
        with self._idle:
            self._draining = True
            while any(
                job.state in (QUEUED, RUNNING) for job in self._jobs.values()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=remaining)
            drained = all(
                job.state in (DONE, FAILED) for job in self._jobs.values()
            )
        # Queued-but-never-started jobs are cancelled; a job still running
        # past the grace is left to finish in the background (wait=False)
        # rather than blocking shutdown indefinitely.
        self._executor.shutdown(wait=drained, cancel_futures=not drained)
        return drained
