"""Request parsing and response payload schemas for the API.

The *parse* half turns raw query parameters and JSON bodies into validated
values, raising :class:`~repro.service.errors.BadRequest` (malformed
values) or :class:`~repro.service.errors.NotFound` (unknown OS names) with
the offending parameter in the error detail.  The *build* half renders
response payloads as plain dicts and serialises them with :func:`dumps` --
canonical JSON (sorted keys, two-space indent, trailing newline), so
payload bytes are deterministic for a given dataset state and the golden
tests can pin them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.ksets import KSetAnalysis
from repro.analysis.selection import ReplicaSetSelector, SelectionResult
from repro.core.constants import get_os
from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.runner.grid import ADVERSARY_MODES, ArrivalSpec, ExperimentGrid
from repro.service.errors import BadRequest, NotFound

#: Query-string slugs for the paper's server configurations.
CONFIGURATIONS: Mapping[str, ServerConfiguration] = {
    "fat": ServerConfiguration.FAT,
    "thin": ServerConfiguration.THIN,
    "isolated-thin": ServerConfiguration.ISOLATED_THIN,
}

#: Selection strategies the selection endpoint exposes.
SELECTION_STRATEGIES: Tuple[str, ...] = ("exhaustive", "greedy", "graph")

#: Hard ceiling on simulation-job size, so one request cannot wedge the
#: worker pool for hours.  (runs x cells, not wall-clock.)
MAX_JOB_RUNS = 1_000_000

#: Hard ceiling on the C(n, k) combination space a *synchronous* query may
#: touch: k-set totals materialize every combination, and exhaustive
#: selection enumerates the space in the worst (dense-matrix) case.  The
#: bound admits every paper-sized request and the 100-OS scaled-catalogue
#: workloads the benchmarks gate, while rejecting requests that would pin
#: a request thread for minutes (e.g. k=10 over 100 OSes ~ 1.7e13).
MAX_QUERY_COMBINATIONS = 5_000_000


def check_combination_budget(candidates: int, k: int, parameter: str) -> None:
    """Reject synchronous queries whose C(candidates, k) space is unpayable."""
    import math

    combinations = math.comb(candidates, k)
    if combinations > MAX_QUERY_COMBINATIONS:
        raise BadRequest(
            f"C({candidates}, {k}) = {combinations} combinations exceeds the "
            f"synchronous query ceiling of {MAX_QUERY_COMBINATIONS}",
            detail={"parameter": parameter, "combinations": combinations},
        )

Params = Dict[str, Tuple[str, ...]]


def dumps(payload: object) -> bytes:
    """Canonical JSON bytes: sorted keys, stable indentation, one newline."""
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


# ---------------------------------------------------------------------------
# query-parameter parsing
# ---------------------------------------------------------------------------


def single(params: Params, name: str, default: Optional[str] = None) -> Optional[str]:
    """The single value of a parameter; repeating it is a client error."""
    values = params.get(name, ())
    if not values:
        return default
    if len(values) > 1:
        raise BadRequest(
            f"parameter {name!r} given {len(values)} times; expected once",
            detail={"parameter": name},
        )
    return values[0]


def parse_int(
    params: Params,
    name: str,
    default: int,
    minimum: int,
    maximum: Optional[int] = None,
) -> int:
    """A bounded integer query parameter."""
    raw = single(params, name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise BadRequest(
            f"parameter {name!r} must be an integer, not {raw!r}",
            detail={"parameter": name},
        )
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
        raise BadRequest(
            f"parameter {name!r} must be {bound}, not {value}",
            detail={"parameter": name},
        )
    return value


def parse_configuration(params: Params) -> ServerConfiguration:
    """The ``configuration`` parameter (default: the isolated thin server)."""
    slug = single(params, "configuration", "isolated-thin")
    try:
        return CONFIGURATIONS[slug]
    except KeyError:
        raise BadRequest(
            f"unknown configuration {slug!r}; expected one of "
            f"{sorted(CONFIGURATIONS)}",
            detail={"parameter": "configuration"},
        )


def configuration_slug(configuration: ServerConfiguration) -> str:
    """The inverse of :func:`parse_configuration`."""
    for slug, value in CONFIGURATIONS.items():
        if value is configuration:
            return slug
    raise ValueError(f"unmapped configuration {configuration!r}")


def parse_os_names(
    params: Params, catalogue: Sequence[str], minimum: int = 2
) -> Tuple[str, ...]:
    """The ``os`` parameter(s): repeatable, each a name or comma list.

    Names are validated against the serving catalogue; unknown ones are a
    404 (the resource a shared-count query addresses *is* the OS set).
    Order is preserved -- it is part of the response identity.
    """
    names: List[str] = []
    for value in params.get("os", ()):
        names.extend(token.strip() for token in value.split(",") if token.strip())
    if len(names) < minimum:
        raise BadRequest(
            f"expected at least {minimum} OS names via os=A&os=B or os=A,B",
            detail={"parameter": "os"},
        )
    known = set(catalogue)
    for name in names:
        if name not in known:
            raise NotFound(
                f"unknown operating system {name!r}",
                detail={"parameter": "os", "os": name},
            )
    if len(set(names)) != len(names):
        raise BadRequest(
            "OS names must be distinct", detail={"parameter": "os"}
        )
    return tuple(names)


# ---------------------------------------------------------------------------
# response payloads
# ---------------------------------------------------------------------------


def dataset_block(artifacts) -> Dict[str, object]:
    """The provenance block every data-bearing payload carries."""
    block: Dict[str, object] = {
        "digest": artifacts.digest,
        "entries": len(artifacts.dataset),
        "os_count": len(artifacts.os_names),
    }
    snapshot = artifacts.state.snapshot
    if snapshot is not None:
        block["snapshot_id"] = snapshot.snapshot_id
        block["snapshot_source"] = snapshot.source
    return block


def catalogue_payload(artifacts) -> Dict[str, object]:
    return {
        "dataset": dataset_block(artifacts),
        "os_names": list(artifacts.os_names),
        "years": artifacts.dataset.years(),
    }


def shared_payload(
    artifacts,
    os_names: Sequence[str],
    configuration: ServerConfiguration,
    scope_digest: str,
) -> Dict[str, object]:
    return {
        "dataset": dataset_block(artifacts),
        "os_names": list(os_names),
        "configuration": configuration_slug(configuration),
        "shared_count": artifacts.shared_count(os_names, configuration),
        "scope_digest": scope_digest,
    }


def pair_matrix_payload(
    artifacts, configuration: ServerConfiguration, scope_digest: str
) -> Dict[str, object]:
    matrix = artifacts.pair_matrix(configuration)
    return {
        "dataset": dataset_block(artifacts),
        "configuration": configuration_slug(configuration),
        "pairs": [
            {"os_a": os_a, "os_b": os_b, "shared": shared}
            for (os_a, os_b), shared in sorted(matrix.items())
        ],
        "scope_digest": scope_digest,
    }


def ksets_payload(
    artifacts,
    configuration: ServerConfiguration,
    k: int,
    top: int,
    scope_digest: str,
) -> Dict[str, object]:
    analysis: KSetAnalysis = artifacts.ksets(configuration)
    totals = analysis.per_combination_totals(k)
    return {
        "dataset": dataset_block(artifacts),
        "configuration": configuration_slug(configuration),
        "k": k,
        "combinations": len(totals),
        "fully_covered": sum(1 for count in totals.values() if count > 0),
        "best": [
            {"os_names": list(combo), "shared": count}
            for combo, count in analysis.best_combinations(k, top)
        ],
        "worst": [
            {"os_names": list(combo), "shared": count}
            for combo, count in analysis.worst_combinations(k, top)
        ],
        "scope_digest": scope_digest,
    }


def widest_payload(
    artifacts,
    configuration: ServerConfiguration,
    top: int,
    scope_digest: str,
) -> Dict[str, object]:
    analysis: KSetAnalysis = artifacts.ksets(configuration)
    return {
        "dataset": dataset_block(artifacts),
        "configuration": configuration_slug(configuration),
        "widest": [
            {
                "cve_id": wide.cve_id,
                "breadth": wide.breadth,
                "affected_os": sorted(wide.affected_os),
            }
            for wide in analysis.widest(top)
        ],
        "scope_digest": scope_digest,
    }


def selection_payload(
    artifacts,
    configuration: ServerConfiguration,
    n: int,
    top: int,
    strategy: str,
    scope_digest: str,
) -> Dict[str, object]:
    selector: ReplicaSetSelector = artifacts.selector(configuration)
    if strategy == "exhaustive":
        results = selector.exhaustive(n, top=top)
    elif strategy == "greedy":
        results = [selector.greedy(n)]
    else:
        results = [selector.graph_based(n)]
    return {
        "dataset": dataset_block(artifacts),
        "configuration": configuration_slug(configuration),
        "n": n,
        "strategy": strategy,
        "groups": [_selection_result(result) for result in results],
        "scope_digest": scope_digest,
    }


def _selection_result(result: SelectionResult) -> Dict[str, object]:
    return {
        "os_names": list(result.os_names),
        "pairwise_shared": result.pairwise_shared,
        "compromising": result.compromising,
        "strategy": result.strategy,
    }


def snapshot_payload(record) -> Dict[str, object]:
    return {
        "snapshot_id": record.snapshot_id,
        "digest": record.digest,
        "parent_digest": record.parent_digest,
        "created": record.created,
        "source": record.source,
        "entry_count": record.entry_count,
        "added": record.added,
        "modified": record.modified,
        "removed": record.removed,
    }


def diff_payload(diff) -> Dict[str, object]:
    return {
        "from_snapshot": snapshot_payload(diff.from_snapshot),
        "to_snapshot": snapshot_payload(diff.to_snapshot),
        "added": list(diff.added),
        "modified": list(diff.modified),
        "removed": list(diff.removed),
        "affected_os_names": sorted(diff.affected_os_names()),
        "affected_pairs": [list(pair) for pair in sorted(diff.affected_pairs())],
    }


# ---------------------------------------------------------------------------
# simulation-job request body
# ---------------------------------------------------------------------------


def parse_json_body(body: bytes) -> Dict[str, object]:
    """The request body as a JSON object (4xx on anything else)."""
    if not body:
        raise BadRequest("expected a JSON request body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise BadRequest(f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise BadRequest("the JSON request body must be an object")
    return payload


def simulation_grid(
    payload: Mapping[str, object], catalogue: Sequence[str]
) -> Tuple[ExperimentGrid, int]:
    """Validate a ``POST /v1/simulations`` body into a grid plus seed.

    The body mirrors the ``repro sweep`` axes::

        {"configurations": {"Set1": ["Debian", "OpenBSD", ...]},
         "runs": 100, "exploit_rate": 1.0, "horizon": 5.0,
         "quorum_models": ["3f+1"], "recovery_intervals": [null, 2.0],
         "arrivals": ["poisson"], "shape": 1.0,
         "adversaries": ["standard"], "seed": 7}

    Unknown keys, unknown OS names, malformed axes and grids whose total
    Monte-Carlo run count exceeds :data:`MAX_JOB_RUNS` are all rejected
    with a 400 naming the offending field.
    """
    known_keys = {
        "configurations", "runs", "exploit_rate", "horizon", "quorum_models",
        "recovery_intervals", "arrivals", "shape", "adversaries", "seed", "id",
    }
    unknown = sorted(set(payload) - known_keys)
    if unknown:
        raise BadRequest(
            f"unknown field(s) {', '.join(unknown)} in simulation request",
            detail={"fields": unknown},
        )
    configurations = payload.get("configurations")
    if not isinstance(configurations, dict) or not configurations:
        raise BadRequest(
            "field 'configurations' must map group names to OS lists",
            detail={"field": "configurations"},
        )
    known_os = set(catalogue)
    normalised: Dict[str, Tuple[str, ...]] = {}
    for name, os_names in configurations.items():
        if not isinstance(os_names, (list, tuple)) or not os_names:
            raise BadRequest(
                f"configuration {name!r} must be a non-empty OS list",
                detail={"field": "configurations", "configuration": name},
            )
        for os_name in os_names:
            if os_name not in known_os:
                try:
                    get_os(str(os_name))
                except KeyError:
                    raise BadRequest(
                        f"unknown operating system {os_name!r} in "
                        f"configuration {name!r}",
                        detail={"field": "configurations", "os": os_name},
                    )
                raise BadRequest(
                    f"operating system {os_name!r} is outside this server's "
                    f"catalogue",
                    detail={"field": "configurations", "os": os_name},
                )
        normalised[str(name)] = tuple(str(os_name) for os_name in os_names)

    def number(field: str, default: float) -> float:
        value = payload.get(field, default)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise BadRequest(
                f"field {field!r} must be a number", detail={"field": field}
            )
        return float(value)

    def str_list(field: str, default: List[str]) -> Tuple[str, ...]:
        value = payload.get(field, default)
        if not isinstance(value, (list, tuple)) or not all(
            isinstance(item, str) for item in value
        ):
            raise BadRequest(
                f"field {field!r} must be a list of strings",
                detail={"field": field},
            )
        return tuple(value)

    runs = payload.get("runs", 100)
    if not isinstance(runs, int) or isinstance(runs, bool) or runs < 1:
        raise BadRequest(
            "field 'runs' must be a positive integer", detail={"field": "runs"}
        )
    seed = payload.get("seed", 7)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BadRequest(
            "field 'seed' must be an integer", detail={"field": "seed"}
        )
    intervals_raw = payload.get("recovery_intervals", [None])
    if not isinstance(intervals_raw, (list, tuple)) or not all(
        item is None or (isinstance(item, (int, float)) and not isinstance(item, bool))
        for item in intervals_raw
    ):
        raise BadRequest(
            "field 'recovery_intervals' must be a list of numbers and nulls",
            detail={"field": "recovery_intervals"},
        )
    intervals = tuple(
        None if item is None else float(item) for item in intervals_raw
    )
    shape = number("shape", 1.0)
    arrival_names = str_list("arrivals", ["poisson"])
    adversaries = str_list("adversaries", ["standard"])
    for adversary in adversaries:
        if adversary not in ADVERSARY_MODES:
            raise BadRequest(
                f"unknown adversary mode {adversary!r}; expected one of "
                f"{sorted(ADVERSARY_MODES)}",
                detail={"field": "adversaries"},
            )
    try:
        grid = ExperimentGrid(
            configurations=normalised,
            quorum_models=str_list("quorum_models", ["3f+1"]),
            recovery_intervals=intervals,
            arrivals=tuple(
                ArrivalSpec(process, shape if process == "aging" else 1.0)
                for process in arrival_names
            ),
            adversaries=adversaries,
            runs=runs,
            exploit_rate=number("exploit_rate", 1.0),
            horizon=number("horizon", 5.0),
        )
    except SimulationError as error:
        raise BadRequest(f"invalid simulation grid: {error}")
    total_runs = len(grid) * grid.runs
    if total_runs > MAX_JOB_RUNS:
        raise BadRequest(
            f"grid totals {total_runs} Monte-Carlo runs; the server caps "
            f"jobs at {MAX_JOB_RUNS}",
            detail={"field": "runs", "total_runs": total_runs},
        )
    return grid, seed
