"""The asyncio diversity-query API server (``repro serve``).

Two layers live here:

* :class:`DiversityService` -- the transport-free application: the route
  table, the request handlers, and the wiring between the
  :class:`~repro.service.registry.ArtifactRegistry` (compile once per
  dataset digest), the :class:`~repro.service.cache.ResponseCache`
  (scoped-digest ETags, ``If-None-Match`` -> 304) and the
  :class:`~repro.service.jobs.JobTable` (``202`` + poll for simulations).
  ``dispatch`` is synchronous and thread-safe, so tests and benchmarks can
  drive it directly.
* the **asyncio HTTP/1.1 front end** -- a stdlib-only
  ``asyncio.start_server`` loop that parses requests, runs ``dispatch``
  on a small thread pool (compiles and SQLite reads never block the event
  loop) and writes JSON responses with keep-alive support.
  :func:`serve` is the blocking CLI entry point with graceful
  SIGTERM/SIGINT drain; :class:`ServiceServer` runs the same loop on a
  background thread for tests, benchmarks and the worked example.

Endpoints (all payloads are canonical JSON, see ``docs/service.md``)::

    GET  /healthz                 version, dataset digest, uptime, stats
    GET  /metrics                 Prometheus text exposition (cluster view)
    GET  /v1/traces               recent request traces / one gathered trace
    GET  /v1/catalogue            OS names, years, dataset provenance
    GET  /v1/shared?os=A&os=B     vulnerabilities common to the named OSes
    GET  /v1/matrix/pairs         full pairwise shared matrix
    GET  /v1/matrix/ksets?k=3     k-set totals (best/worst combinations)
    GET  /v1/widest?top=3         widest-reaching vulnerabilities
    GET  /v1/selection?n=4        replica-set selection (b&b/greedy/graph)
    GET  /v1/snapshots            snapshot ledger        (db-backed only)
    GET  /v1/snapshots/{id}       one ledger record      (db-backed only)
    GET  /v1/snapshots/diff       blast radius between snapshots
    POST /v1/ingest/delta         apply a modified feed  (db-backed only)
    POST /v1/simulations          submit a sweep job -> 202 + job id
    GET  /v1/jobs                 job table
    GET  /v1/jobs/{job_id}        poll one job
"""

from __future__ import annotations

import asyncio
import functools
import signal
import sys
import tempfile
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.enums import ServerConfiguration
from repro.obs import (
    CLOCK,
    TRACE_HEADER,
    JsonLogger,
    MetricsRegistry,
    Tracer,
    render_exposition,
    trace_sink,
    valid_trace_id,
)
from repro.runner.runner import GridRunner
from repro.service.cache import (
    CachedResponse,
    ResponseCache,
    canonical_query,
    make_etag,
)
from repro.service.config import ServiceConfig
from repro.service.errors import (
    ApiError,
    BadRequest,
    Conflict,
    NotFound,
    NotImplementedFeature,
    PayloadTooLarge,
    internal_error,
)
from repro.service.jobs import Job, JobTable, request_fingerprint
from repro.service.registry import (
    ArtifactRegistry,
    CorpusArtifacts,
    DatasetState,
    SnapshotDatasetProvider,
    StaticDatasetProvider,
)
from repro.service.routing import Router
from repro.service import schemas, sharding

#: Largest accepted request body (modified feeds are well under this).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Idle keep-alive connections are closed after this many seconds.
IDLE_TIMEOUT = 30.0

_STATUS_REASONS = {
    200: "OK", 202: "Accepted", 304: "Not Modified", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, Tuple[str, ...]]
    headers: Dict[str, str]
    body: bytes = b""


@dataclass
class HttpResponse:
    """One response ready for serialisation."""

    status: int = 200
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"


def _default_provider(config: ServiceConfig):
    """Resolve the dataset provider the CLI flags describe."""
    if config.db:
        return SnapshotDatasetProvider(
            config.db, snapshot=config.snapshot, engine=config.engine
        )
    shape = config.scaled_catalogue_shape()
    if shape is not None:
        from repro.synthetic.generator import generate_scaled_catalogue

        catalogue = generate_scaled_catalogue(
            n_families=shape[0], releases_per_family=shape[1], seed=config.seed
        )
        return StaticDatasetProvider(
            catalogue.entries,
            engine=config.engine,
            os_names=catalogue.os_names,
            label=f"catalogue:{config.catalogue} (seed {config.seed})",
        )
    if config.feeds:
        from repro.db.ingest import IngestPipeline

        paths = sorted(Path(config.feeds).glob("*.xml"))
        if not paths:
            raise NotFound(f"no .xml feeds found in {config.feeds}")
        pipeline = IngestPipeline()
        pipeline.ingest_xml_feeds(paths)
        entries = pipeline.database.load_entries()
        pipeline.database.close()
        return StaticDatasetProvider(
            entries, engine=config.engine, label=f"feeds:{config.feeds}"
        )
    from repro.synthetic.corpus import build_corpus

    corpus = build_corpus(seed=config.seed)
    return StaticDatasetProvider(
        corpus.entries,
        engine=config.engine,
        label=f"synthetic corpus (seed {config.seed})",
    )


class DiversityService:
    """The transport-free application behind ``repro serve``."""

    def __init__(self, config: ServiceConfig, provider=None, peers=None) -> None:
        self.config = config
        self.provider = provider if provider is not None else _default_provider(config)
        # One metrics registry and one tracer per worker: every component
        # (artifact registry, response cache, ingest pipeline, grid runner)
        # reports into the same instruments, so /healthz, /metrics and the
        # trace spans can never disagree about a tally.
        self.clock = CLOCK
        self.obs_log = JsonLogger(clock=self.clock)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            buffer_size=config.trace_buffer,
            shard=config.shard_index,
            clock=self.clock,
            sink=trace_sink(self.obs_log) if config.trace_log else None,
        )
        self.registry = ArtifactRegistry(
            max_datasets=config.registry_size,
            metrics=self.metrics,
            tracer=self.tracer,
            clock=self.clock,
        )
        self.responses = ResponseCache(
            max_entries=config.cache_size, metrics=self.metrics
        )
        self.jobs = JobTable(self._run_job)
        self.started = self.clock.wall()
        self._request_pool = ThreadPoolExecutor(
            max_workers=config.request_threads, thread_name_prefix="repro-http"
        )
        self.peers = self._resolve_peers(peers)
        # Fan-out runs on its own small pool: a scatter blocking on peer
        # responses must never occupy the request threads those peers (or
        # concurrent clients) need to make progress.
        self._scatter_pool = (
            ThreadPoolExecutor(
                max_workers=max(2, config.shards), thread_name_prefix="repro-scatter"
            )
            if config.shards > 1
            else None
        )
        self._request_counter = self.metrics.counter(
            "http_requests_total",
            "Requests dispatched, by method, route template and status.",
            labels=("method", "route", "status"),
        )
        self._request_latency = self.metrics.histogram(
            "http_request_seconds",
            "Request dispatch wall time, by route template.",
            labels=("route",),
        )
        self._scatter_counter = self.metrics.counter(
            "scatter_partials_total",
            "Scatter-gather span partials, by compute mode.",
            labels=("mode",),
        )
        self._broadcast_counter = self.metrics.counter(
            "invalidation_broadcasts_total",
            "Invalidation broadcast deliveries to peer workers.",
            labels=("outcome",),
        )
        self._uptime_gauge = self.metrics.gauge(
            "uptime_seconds", "Seconds since this worker started."
        )
        self._jobs_gauge = self.metrics.gauge(
            "jobs", "Jobs in the table, by state.", labels=("state",)
        )
        self._registry_gauge = self.metrics.gauge(
            "registry_datasets",
            "Datasets currently compiled in the artifact registry.",
        )
        self._responses_gauge = self.metrics.gauge(
            "response_cache_entries",
            "Entries currently held in the response cache.",
        )
        self.router = Router()
        add = self.router.add
        add("GET", "/internal/v1/shards/pairs", self._shard_pairs)
        add("GET", "/internal/v1/shards/ksets", self._shard_ksets)
        add("POST", "/internal/v1/invalidate", self._internal_invalidate)
        add("GET", "/internal/v1/metrics", self._internal_metrics)
        add("GET", "/internal/v1/traces", self._internal_traces)
        add("GET", "/healthz", self._healthz)
        if config.metrics:
            add("GET", "/metrics", self._metrics_endpoint)
            add("GET", "/v1/traces", self._traces_endpoint)
        add("GET", "/v1/catalogue", self._catalogue)
        add("GET", "/v1/shared", self._shared)
        add("GET", "/v1/matrix/pairs", self._matrix_pairs)
        add("GET", "/v1/matrix/ksets", self._matrix_ksets)
        add("GET", "/v1/widest", self._widest)
        add("GET", "/v1/selection", self._selection)
        add("GET", "/v1/snapshots", self._snapshots)
        add("GET", "/v1/snapshots/diff", self._snapshot_diff)
        add("GET", "/v1/snapshots/{snapshot_id}", self._snapshot)
        add("POST", "/v1/ingest/delta", self._ingest_delta)
        add("POST", "/v1/simulations", self._submit_simulation)
        add("GET", "/v1/jobs", self._jobs)
        add("GET", "/v1/jobs/{job_id}", self._job)

    # -- plumbing -------------------------------------------------------------

    def artifacts(self) -> CorpusArtifacts:
        """The compiled artifacts for the current dataset state.

        Cheap when the state is already compiled: one provider ``current()``
        call (a single ledger row for snapshot providers) plus a registry
        lookup.  A state the registry has never seen compiles exactly once,
        even under concurrent requests.
        """
        state = self.provider.current()
        return self.registry.get(state, self.provider.load)

    def reset_caches(self) -> None:
        """Drop every compiled dataset and cached response (benchmarks)."""
        self.registry.clear()
        self.responses.clear()

    def shutdown(self) -> None:
        """Release the request pool (the job table is drained separately)."""
        self._request_pool.shutdown(wait=False, cancel_futures=True)
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=False, cancel_futures=True)

    def _resolve_peers(self, peers):
        """The peer clients scatter-gather and invalidation fan out to.

        An explicit ``peers`` sequence wins (tests inject
        :class:`~repro.service.cluster.LocalPeer` rows to exercise the
        merge path in-process); otherwise ``config.peers`` URLs become
        HTTP clients.  Without either, a sharded config still works --
        every span is computed locally, which keeps single-process
        deployments and byte-identity tests honest.
        """
        if peers is not None:
            return list(peers)
        if not self.config.peers:
            return []
        from repro.service.cluster import HttpPeer

        return [HttpPeer(url) for url in self.config.peers]

    # -- scatter-gather -------------------------------------------------------

    @property
    def scatter_remote(self) -> int:
        return int(self._scatter_counter.value(mode="remote"))

    @property
    def scatter_local(self) -> int:
        return int(self._scatter_counter.value(mode="local"))

    @property
    def scatter_fallback(self) -> int:
        return int(self._scatter_counter.value(mode="fallback"))

    def _scatter_partials(
        self,
        kind: str,
        artifacts: CorpusArtifacts,
        configuration: ServerConfiguration,
        k: int,
        top: int,
    ):
        """One partial per span, remote where a peer owns it.

        Every remote failure -- peer down, non-200, or a digest mismatch
        because the peer already serves a newer snapshot -- falls back to
        computing that span locally, so the merge below always sees a
        single-digest, fully-covering partial set.  ``None`` means the
        query is not sharded at all.
        """
        if self.config.shards <= 1:
            return None
        plan = sharding.plan_spans(
            artifacts.digest, len(artifacts.os_names), k, self.config.shards
        )
        # Captured on the dispatch thread: the scatter pool's threads have
        # no thread-local current trace, so partial spans attach explicitly.
        trace = self.tracer.current()

        def compute(span: sharding.Span, owner: int):
            with self.tracer.span(
                "scatter.partial", trace=trace, owner=owner
            ) as handle:
                mode = "local"
                if owner != self.config.shard_index and owner < len(self.peers):
                    partial = self._fetch_partial(
                        owner, kind, configuration, k, top, span,
                        artifacts.digest, trace,
                    )
                    if partial is not None:
                        handle.tag(mode="remote")
                        self._scatter_counter.inc(mode="remote")
                        return partial
                    mode = "fallback"
                handle.tag(mode=mode)
                self._scatter_counter.inc(mode=mode)
                if kind == "pairs":
                    return sharding.pairs_span_payload(artifacts, configuration, span)
                return sharding.ksets_span_payload(
                    artifacts, configuration, k, top, span
                )

        with self.tracer.span("scatter", trace=trace, kind=kind, spans=len(plan)):
            if self._scatter_pool is None or len(plan) <= 1:
                return [compute(span, owner) for span, owner in plan]
            futures = [
                self._scatter_pool.submit(compute, span, owner)
                for span, owner in plan
            ]
            return [future.result() for future in futures]

    def _fetch_partial(
        self,
        owner: int,
        kind: str,
        configuration: ServerConfiguration,
        k: int,
        top: int,
        span: sharding.Span,
        digest: str,
        trace=None,
    ):
        """Ask the owning peer for one span partial; ``None`` on any miss."""
        query = (
            f"configuration={schemas.configuration_slug(configuration)}"
            f"&span={sharding.format_span(span)}&digest={digest}"
        )
        if kind == "ksets":
            query += f"&k={k}&top={top}"
        headers = {TRACE_HEADER: trace.trace_id} if trace is not None else None
        try:
            partial = self.peers[owner].get_json(
                f"/internal/v1/shards/{kind}?{query}", headers=headers
            )
        except Exception:  # repro: noqa[GEN301] -- peer churn degrades to local compute, never to a failed request
            return None
        if partial is None or partial.get("digest") != digest:
            return None
        return partial

    def dispatch(
        self,
        request: HttpRequest,
        parse_seconds: Optional[float] = None,
    ) -> HttpResponse:
        """Route one request; every failure renders the error envelope.

        Every dispatch runs under a :class:`~repro.obs.tracing.Trace` --
        joining the id an ``X-Repro-Trace`` header carries (how spans from
        a scatter-gather's peer workers land in the same trace) or minting
        a fresh one -- and increments the request counter labelled by the
        matched route *template*, so metric cardinality stays bounded no
        matter what paths clients probe.
        """
        trace = self.tracer.begin(
            f"{request.method} {request.path}",
            request.headers.get(TRACE_HEADER.lower()),
        )
        if parse_seconds is not None:
            trace.record("parse", trace.started, parse_seconds)
        route_label = "unrouted"
        with self.tracer.activate(trace):
            try:
                route, params = self.router.match(request.method, request.path)
                route_label = route.template
                response = route.handler(request, params)
            except ApiError as error:
                response = self._render_error(error)
            except Exception:  # repro: noqa[GEN301] -- dispatch boundary: the error envelope hides the traceback from clients
                traceback.print_exc(file=sys.stderr)
                response = self._render_error(internal_error())
        response.headers.setdefault(TRACE_HEADER, trace.trace_id)
        self.tracer.finish(trace, status=response.status)
        self._request_counter.inc(
            method=request.method, route=route_label, status=response.status
        )
        if trace.duration is not None:
            self._request_latency.observe(trace.duration, route=route_label)
        return response

    async def dispatch_async(
        self,
        request: HttpRequest,
        parse_seconds: Optional[float] = None,
    ) -> HttpResponse:
        """Route one request on the request pool, off the event loop.

        ``dispatch`` touches sqlite-backed providers and the result cache,
        so the asyncio protocol code must never call it directly; this
        coroutine is the only sanctioned bridge (ASY104 enforces it).
        """
        loop = asyncio.get_running_loop()
        call = (
            self.dispatch
            if parse_seconds is None
            else functools.partial(self.dispatch, parse_seconds=parse_seconds)
        )
        return await loop.run_in_executor(self._request_pool, call, request)

    async def drain_async(self, grace: float) -> bool:
        """Wait for running jobs to finish without blocking the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._request_pool, self.jobs.drain, grace)

    @staticmethod
    def _render_error(error: ApiError) -> HttpResponse:
        response = HttpResponse(status=error.status, body=schemas.dumps(error.envelope()))
        if error.detail and "allow" in error.detail:
            response.headers["Allow"] = ", ".join(error.detail["allow"])
        return response

    def _cached_json(
        self,
        request: HttpRequest,
        artifacts: CorpusArtifacts,
        scope: Optional[Sequence[str]],
        configuration: Optional[ServerConfiguration],
        build: Callable[[str], Dict[str, object]],
        query: Optional[str] = None,
    ) -> HttpResponse:
        """Serve a data query through the ETag + response-cache pipeline.

        ``scope`` is the OS set the response depends on (``None`` = the
        whole catalogue); ``build(scope_digest)`` renders the payload on a
        cache miss.  The ETag derives from the *scoped* corpus digest, so
        it survives snapshot deltas that cannot change the answer.
        ``configuration=None`` keys by the full dataset digest instead
        (for payloads no configuration filter can change), and ``query``
        overrides the canonical query (pass ``""`` when no parameter can
        change the payload, so every variant shares one entry and ETag).
        """
        if configuration is None:
            scope_digest = artifacts.digest
        else:
            scope_digest = artifacts.scope_digest(scope, configuration)
        if query is None:
            query = canonical_query(request.query)
        etag = make_etag(scope_digest, request.path, query)
        if _etag_matches(request.headers.get("if-none-match"), etag):
            return HttpResponse(status=304, headers={"ETag": etag})
        key = ResponseCache.key(scope_digest, request.path, query)
        headers = {"ETag": etag, "Cache-Control": "no-cache"}
        # The 304 path above short-circuits before the cache is consulted,
        # so revalidations show up as a trace with no cache.lookup span.
        with self.tracer.span("cache.lookup") as lookup:
            hit = self.responses.get(key)
            lookup.tag(result="hit" if hit is not None else "miss")
        if hit is not None:
            headers["X-Cache"] = "hit"
            return HttpResponse(body=hit.body, headers=headers)
        body = schemas.dumps(build(scope_digest))
        self.responses.put(
            key,
            CachedResponse(
                body=body,
                scope=frozenset(scope) if scope is not None else None,
            ),
        )
        headers["X-Cache"] = "miss"
        return HttpResponse(body=body, headers=headers)

    # -- meta handlers --------------------------------------------------------

    def _healthz(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        from repro import __version__

        artifacts = self.artifacts()
        payload = {
            "service": "repro",
            "version": __version__,
            "engine": self.config.engine,
            "uptime_seconds": round(self.clock.wall() - self.started, 3),
            "source": self.provider.source,
            "dataset": schemas.dataset_block(artifacts),
            "jobs": self.jobs.counts(),
            "draining": self.jobs.draining,
            "registry": {
                "datasets": len(self.registry),
                "compiles": self.registry.compile_count,
                "hits": self.registry.hit_count,
                "patches": self.registry.patched_count,
            },
            "response_cache": self.responses.stats(),
            "shard": {
                "index": self.config.shard_index,
                "count": self.config.shards,
                "peers": len(self.peers),
                "scatter": {
                    "remote": self.scatter_remote,
                    "local": self.scatter_local,
                    "fallback": self.scatter_fallback,
                },
            },
        }
        return HttpResponse(body=schemas.dumps(payload))

    # -- observability handlers -----------------------------------------------

    def _refresh_gauges(self) -> None:
        """Point-in-time gauges, refreshed at scrape time (never on hot paths)."""
        self._uptime_gauge.set(round(self.clock.wall() - self.started, 3))
        for state, count in self.jobs.counts().items():
            self._jobs_gauge.set(count, state=state)
        self._registry_gauge.set(len(self.registry))
        self._responses_gauge.set(self.responses.stats()["entries"])

    def _metrics_endpoint(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        """Prometheus text exposition; cluster-aggregated by default.

        ``?scope=worker`` restricts the scrape to this worker.  The cluster
        view scatter-gathers every peer's ``/internal/v1/metrics`` JSON
        snapshot -- the same fan-out path matrix queries use -- and renders
        all samples side by side under per-shard labels (no cross-worker
        summing: sums are wrong for gauges and hide skew).
        """
        scope = schemas.single(request.query, "scope", "cluster")
        if scope not in ("cluster", "worker"):
            raise BadRequest(
                f"unknown scope {scope!r}; expected 'cluster' or 'worker'",
                detail={"parameter": "scope"},
            )
        self._refresh_gauges()
        parts = [(self.metrics.snapshot(), {"shard": str(self.config.shard_index)})]
        if scope == "cluster" and self.config.shards > 1 and self.peers:
            parts.extend(self._gather_peer_metrics())
        return HttpResponse(
            body=render_exposition(parts).encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _gather_peer_metrics(self):
        """Peer metric snapshots as exposition parts; dead peers are omitted."""
        trace = self.tracer.current()
        headers = {TRACE_HEADER: trace.trace_id} if trace is not None else None

        def fetch(index: int, peer):
            try:
                payload = peer.get_json("/internal/v1/metrics", headers=headers)
            except Exception:  # repro: noqa[GEN301] -- a dead peer drops out of the aggregate; the scrape itself must not fail
                return None
            if not isinstance(payload, dict) or "metrics" not in payload:
                return None
            return payload["metrics"], {"shard": str(payload.get("shard", index))}

        targets = [
            (index, peer)
            for index, peer in enumerate(self.peers)
            if index != self.config.shard_index
        ]
        with self.tracer.span("metrics.gather", trace=trace, peers=len(targets)):
            if self._scatter_pool is None:
                results = [fetch(index, peer) for index, peer in targets]
            else:
                futures = [
                    self._scatter_pool.submit(fetch, index, peer)
                    for index, peer in targets
                ]
                results = [future.result() for future in futures]
        return [part for part in results if part is not None]

    def _internal_metrics(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        """This worker's metric snapshot as JSON (the aggregation transport)."""
        self._refresh_gauges()
        payload = {
            "shard": self.config.shard_index,
            "metrics": self.metrics.snapshot(),
        }
        return HttpResponse(body=schemas.dumps(payload))

    def _traces_endpoint(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        """Recent traces, or one trace gathered across the whole cluster.

        Without ``?id=`` this lists this worker's ring buffer, newest
        first.  With an id, peer workers' rings are consulted too and the
        response carries every record plus one flattened, shard-stamped
        span list -- a scatter-gather request viewed end to end.
        """
        trace_id = schemas.single(request.query, "id")
        if trace_id is None:
            limit = schemas.parse_int(
                request.query, "limit", default=20, minimum=1,
                maximum=self.tracer.buffer_size,
            )
            payload = {
                "shard": self.config.shard_index,
                "traces": [
                    record.to_json() for record in self.tracer.recent(limit)
                ],
            }
            return HttpResponse(body=schemas.dumps(payload))
        if not valid_trace_id(trace_id):
            raise BadRequest(
                "malformed trace id", detail={"parameter": "id"}
            )
        records = [record.to_json() for record in self.tracer.find(trace_id)]
        records.extend(self._gather_peer_traces(trace_id))
        spans = [
            dict(span, shard=record["shard"])
            for record in records
            for span in record["spans"]
        ]
        spans.sort(key=lambda span: (span["shard"], span["start_ms"], span["name"]))
        payload = {"trace_id": trace_id, "records": records, "spans": spans}
        return HttpResponse(body=schemas.dumps(payload))

    def _gather_peer_traces(self, trace_id: str):
        """Peer workers' records for one trace id; dead peers contribute none."""
        gathered = []
        for index, peer in enumerate(self.peers):
            if index == self.config.shard_index:
                continue
            try:
                payload = peer.get_json(f"/internal/v1/traces?id={trace_id}")
            except Exception:  # repro: noqa[GEN301] -- a dead peer just contributes no spans to the gathered trace
                continue
            if isinstance(payload, dict):
                gathered.extend(payload.get("traces", ()))
        return gathered

    def _internal_traces(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        """This worker's ring buffer only (what trace gathering fans out to)."""
        trace_id = schemas.single(request.query, "id")
        if trace_id is not None:
            records = self.tracer.find(trace_id)
        else:
            limit = schemas.parse_int(
                request.query, "limit", default=20, minimum=1,
                maximum=self.tracer.buffer_size,
            )
            records = self.tracer.recent(limit)
        payload = {
            "shard": self.config.shard_index,
            "traces": [record.to_json() for record in records],
        }
        return HttpResponse(body=schemas.dumps(payload))

    # -- data handlers --------------------------------------------------------

    def _catalogue(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        # No parameter changes this payload, so every variant shares one
        # cache entry and one ETag, keyed by the full dataset digest.
        return self._cached_json(
            request, artifacts, None, None,
            lambda digest: schemas.catalogue_payload(artifacts),
            query="",
        )

    def _shared(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        configuration = schemas.parse_configuration(request.query)
        os_names = schemas.parse_os_names(request.query, artifacts.os_names)
        return self._cached_json(
            request, artifacts, os_names, configuration,
            lambda digest: schemas.shared_payload(
                artifacts, os_names, configuration, digest
            ),
        )

    def _matrix_pairs(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        configuration = schemas.parse_configuration(request.query)
        return self._cached_json(
            request, artifacts, None, configuration,
            lambda digest: self._pairs_payload(artifacts, configuration, digest),
        )

    def _pairs_payload(
        self,
        artifacts: CorpusArtifacts,
        configuration: ServerConfiguration,
        scope_digest: str,
    ) -> Dict[str, object]:
        partials = self._scatter_partials("pairs", artifacts, configuration, 2, 0)
        if partials is not None:
            try:
                with self.tracer.span("merge", kind="pairs", partials=len(partials)):
                    return sharding.merged_pair_matrix_payload(
                        artifacts, configuration, partials, scope_digest
                    )
            except ValueError:  # pragma: no cover -- local fallbacks make merges total
                pass
        return schemas.pair_matrix_payload(artifacts, configuration, scope_digest)

    def _matrix_ksets(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        configuration = schemas.parse_configuration(request.query)
        k = schemas.parse_int(
            request.query, "k", default=3, minimum=2,
            maximum=len(artifacts.os_names),
        )
        schemas.check_combination_budget(len(artifacts.os_names), k, "k")
        top = schemas.parse_int(request.query, "top", default=5, minimum=1, maximum=100)
        return self._cached_json(
            request, artifacts, None, configuration,
            lambda digest: self._ksets_payload(
                artifacts, configuration, k, top, digest
            ),
        )

    def _ksets_payload(
        self,
        artifacts: CorpusArtifacts,
        configuration: ServerConfiguration,
        k: int,
        top: int,
        scope_digest: str,
    ) -> Dict[str, object]:
        partials = self._scatter_partials("ksets", artifacts, configuration, k, top)
        if partials is not None:
            try:
                with self.tracer.span("merge", kind="ksets", partials=len(partials)):
                    return sharding.merged_ksets_payload(
                        artifacts, configuration, k, top, partials, scope_digest
                    )
            except ValueError:  # pragma: no cover -- local fallbacks make merges total
                pass
        return schemas.ksets_payload(artifacts, configuration, k, top, scope_digest)

    def _widest(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        configuration = schemas.parse_configuration(request.query)
        top = schemas.parse_int(request.query, "top", default=3, minimum=1, maximum=100)
        return self._cached_json(
            request, artifacts, None, configuration,
            lambda digest: schemas.widest_payload(
                artifacts, configuration, top, digest
            ),
        )

    def _selection(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        configuration = schemas.parse_configuration(request.query)
        n = schemas.parse_int(
            request.query, "n", default=4, minimum=1,
            maximum=len(artifacts.os_names),
        )
        top = schemas.parse_int(request.query, "top", default=5, minimum=1, maximum=100)
        strategy = schemas.single(request.query, "strategy", "exhaustive")
        if strategy not in schemas.SELECTION_STRATEGIES:
            raise BadRequest(
                f"unknown strategy {strategy!r}; expected one of "
                f"{list(schemas.SELECTION_STRATEGIES)}",
                detail={"parameter": "strategy"},
            )
        if strategy == "exhaustive":
            # Branch-and-bound usually prunes hard, but its worst (dense-
            # matrix) case is full enumeration -- same budget as k-sets.
            schemas.check_combination_budget(len(artifacts.os_names), n, "n")
        return self._cached_json(
            request, artifacts, None, configuration,
            lambda digest: schemas.selection_payload(
                artifacts, configuration, n, top, strategy, digest
            ),
        )

    # -- snapshot handlers (db-backed providers only) -------------------------

    def _snapshots(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        database, store = self.provider.store()
        try:
            payload = {
                "snapshots": [
                    schemas.snapshot_payload(record) for record in store.list()
                ]
            }
        finally:
            database.close()
        return HttpResponse(body=schemas.dumps(payload))

    def _snapshot(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        database, store = self.provider.store()
        try:
            record = _resolve_snapshot(store, params["snapshot_id"])
            payload = schemas.snapshot_payload(record)
        finally:
            database.close()
        return HttpResponse(body=schemas.dumps(payload))

    def _snapshot_diff(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        database, store = self.provider.store()
        try:
            to_spec = schemas.single(request.query, "to")
            to_record = (
                _resolve_snapshot(store, to_spec)
                if to_spec is not None
                else _head_or_conflict(store)
            )
            from_spec = schemas.single(request.query, "from")
            if from_spec is not None:
                from_record = _resolve_snapshot(store, from_spec)
            elif to_record.parent_digest is not None:
                from_record = store.by_digest(to_record.parent_digest)
            else:
                raise BadRequest(
                    f"snapshot #{to_record.snapshot_id} has no parent; "
                    "pass from= explicitly",
                    detail={"parameter": "from"},
                )
            diff = store.diff(from_record.snapshot_id, to_record.snapshot_id)
            payload = schemas.diff_payload(diff)
        finally:
            database.close()
        return HttpResponse(body=schemas.dumps(payload))

    def _ingest_delta(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        from repro.db.ingest import IngestPipeline
        from repro.snapshots.delta import DeltaIngestPipeline

        if not request.body:
            raise BadRequest("expected a modified feed as the request body")
        suffix = ".json" if _is_json_feed(request) else ".xml"
        database, store = self.provider.store()
        try:
            pipeline = DeltaIngestPipeline(
                IngestPipeline(database=database),
                store,
                metrics=self.metrics,
                tracer=self.tracer,
                clock=self.clock,
            )
            pipeline.subscribe(self._on_delta_snapshot)
            with tempfile.NamedTemporaryFile(
                suffix=suffix, prefix="repro-delta-", delete=False
            ) as handle:
                handle.write(request.body)
                feed_path = Path(handle.name)
            try:
                source = schemas.single(request.query, "source", "http-delta")
                report = pipeline.apply_feed(feed_path, source=source)
            finally:
                feed_path.unlink(missing_ok=True)
            payload = {
                "parsed_entries": report.parsed_entries,
                "added": report.added,
                "modified": report.modified,
                "removed": report.removed,
                "unchanged": report.unchanged,
                "skipped_no_os": report.skipped_no_os,
                "snapshot": (
                    schemas.snapshot_payload(report.snapshot)
                    if report.snapshot is not None
                    else None
                ),
            }
        finally:
            database.close()
        return HttpResponse(body=schemas.dumps(payload))

    def _on_delta_snapshot(self, report) -> None:
        """Invalidate cached responses a freshly-landed delta can touch.

        Subscribed to the :class:`~repro.snapshots.delta
        .DeltaIngestPipeline` so any in-process delta (the HTTP ingest
        endpoint, or library code sharing this service's store) evicts
        exactly the response-cache entries whose OS scope the snapshot
        diff names, then extends the same subscription across process
        boundaries by broadcasting the digest pair to every peer worker's
        ``/internal/v1/invalidate``.  A worker that misses the broadcast
        stays correct: the shared ledger is the source of truth, so its
        next request reads the new head digest and scoped keys miss
        naturally -- the broadcast only makes eviction (and the packed-
        engine registry patch below) eager instead of lazy.
        """
        snapshot = getattr(report, "snapshot", None)
        if snapshot is None or report.changed == 0:
            return
        self._apply_delta_invalidation(snapshot.parent_digest, snapshot.digest)
        self._broadcast_invalidation(snapshot.parent_digest, snapshot.digest)

    def _apply_delta_invalidation(
        self, parent_digest: Optional[str], digest: str
    ) -> int:
        """Evict scoped caches for the ledger transition ``parent -> digest``.

        Returns how many response-cache entries were evicted.  On the
        ``packed`` engine the same diff also *warms* the registry:
        :meth:`~repro.service.registry.ArtifactRegistry.patch` derives the
        new head's index from the parent's by patching only the touched
        entry columns, so the first request against the new digest skips
        the full corpus recompile.
        """
        if parent_digest is None:
            evicted = self.responses.stats()["entries"]
            self.responses.clear()
            return evicted
        database, store = self.provider.store()
        try:
            parent = store.by_digest(parent_digest)
            snapshot = store.by_digest(digest)
            diff = store.diff(parent.snapshot_id, snapshot.snapshot_id)
            evicted = self.responses.invalidate_scope(diff.affected_os_names())
            self.registry.patch(
                DatasetState(digest=parent.digest, snapshot=parent),
                DatasetState(
                    digest=diff.to_snapshot.digest, snapshot=diff.to_snapshot
                ),
                diff,
            )
        finally:
            database.close()
        return evicted

    def _broadcast_invalidation(
        self, parent_digest: Optional[str], digest: str
    ) -> None:
        """Tell every peer worker about a landed snapshot, synchronously.

        Runs before the ingest response is written, so by the time the
        client sees the new snapshot digest every worker has already
        dropped the scoped entries (and their ETags) the delta touched --
        the zero-stale-reads discipline the bench gate measures.  Peer
        failures are swallowed: the ledger re-read keeps them correct.
        """
        payload = schemas.dumps(
            {"parent_digest": parent_digest, "digest": digest}
        )
        trace = self.tracer.current()
        headers = {TRACE_HEADER: trace.trace_id} if trace is not None else None
        with self.tracer.span(
            "ingest.broadcast", trace=trace, peers=len(self.peers)
        ):
            for index, peer in enumerate(self.peers):
                if index == self.config.shard_index:
                    continue
                try:
                    peer.post_json(
                        "/internal/v1/invalidate", payload, headers=headers
                    )
                    self._broadcast_counter.inc(outcome="delivered")
                except Exception:  # repro: noqa[GEN301] -- a dead peer re-reads the ledger on its next request
                    self._broadcast_counter.inc(outcome="failed")
                    continue

    # -- internal cluster handlers (never routed through the public merge) ----

    def _shard_pairs(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self._shard_artifacts(request)
        configuration = schemas.parse_configuration(request.query)
        span = sharding.parse_span(
            request.query, sharding.combination_space(len(artifacts.os_names), 2)
        )
        return self._cached_json(
            request, artifacts, None, configuration,
            lambda digest: sharding.pairs_span_payload(
                artifacts, configuration, span
            ),
        )

    def _shard_ksets(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self._shard_artifacts(request)
        configuration = schemas.parse_configuration(request.query)
        k = schemas.parse_int(
            request.query, "k", default=3, minimum=2,
            maximum=len(artifacts.os_names),
        )
        schemas.check_combination_budget(len(artifacts.os_names), k, "k")
        top = schemas.parse_int(request.query, "top", default=5, minimum=1, maximum=100)
        span = sharding.parse_span(
            request.query, sharding.combination_space(len(artifacts.os_names), k)
        )
        return self._cached_json(
            request, artifacts, None, configuration,
            lambda digest: sharding.ksets_span_payload(
                artifacts, configuration, k, top, span
            ),
        )

    def _shard_artifacts(self, request: HttpRequest) -> CorpusArtifacts:
        """Current artifacts, digest-guarded for span partial requests.

        A 409 here tells the gatherer its dataset state and ours diverged
        mid-scatter (a delta landed between its ``current()`` and this
        request); it computes the span locally instead of merging two
        snapshots into one payload.
        """
        artifacts = self.artifacts()
        expected = schemas.single(request.query, "digest")
        if expected is not None and expected != artifacts.digest:
            raise Conflict(
                "shard serves a different dataset state",
                detail={"expected": expected, "current": artifacts.digest},
            )
        return artifacts

    def _internal_invalidate(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        payload = schemas.parse_json_body(request.body)
        digest = payload.get("digest")
        if not isinstance(digest, str) or not digest:
            raise BadRequest(
                "field 'digest' must be a snapshot digest",
                detail={"field": "digest"},
            )
        parent = payload.get("parent_digest")
        if parent is not None and not isinstance(parent, str):
            raise BadRequest(
                "field 'parent_digest' must be a digest or null",
                detail={"field": "parent_digest"},
            )
        evicted = self._apply_delta_invalidation(parent, digest)
        return HttpResponse(body=schemas.dumps({"digest": digest, "evicted": evicted}))

    # -- job handlers ---------------------------------------------------------

    def _run_job(self, job: Job) -> Dict[str, object]:
        """Execute one simulation job on the PR-3 grid runner."""
        from repro.core.constants import OS_NAMES

        # Paper-catalogue datasets get alias-tolerant OS-name normalisation;
        # scaled catalogues (release names outside the 11-OS study) must
        # skip it or every replica-group lookup fails.
        catalogued = set(job.dataset.os_names) <= set(OS_NAMES)
        runner = GridRunner.for_dataset(
            job.dataset,
            seed=job.seed,
            engine=self.config.engine,
            workers=self.config.workers,
            catalogued=catalogued,
            metrics=self.metrics,
        )
        return runner.run(job.grid).to_json_payload()

    def _submit_simulation(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        artifacts = self.artifacts()
        payload = schemas.parse_json_body(request.body)
        grid, seed = schemas.simulation_grid(payload, artifacts.os_names)
        job_id = payload.get("id")
        if job_id is not None and not isinstance(job_id, str):
            raise BadRequest("field 'id' must be a string", detail={"field": "id"})
        job = self.jobs.submit(
            grid,
            seed,
            artifacts.digest,
            fingerprint=request_fingerprint(payload),
            job_id=job_id,
            dataset=artifacts.dataset,
        )
        return HttpResponse(
            status=202,
            body=schemas.dumps(job.payload()),
            headers={"Location": f"/v1/jobs/{job.job_id}"},
        )

    def _jobs(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        listing = []
        for job in self.jobs.list():
            compact = job.payload()
            compact.pop("result", None)
            listing.append(compact)
        return HttpResponse(body=schemas.dumps({"jobs": listing}))

    def _job(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        job = self.jobs.get(params["job_id"])
        return HttpResponse(body=schemas.dumps(job.payload()))


def _etag_matches(header: Optional[str], etag: str) -> bool:
    """``If-None-Match`` comparison: a token list or ``*``."""
    if header is None:
        return False
    if header.strip() == "*":
        return True
    candidates = {token.strip() for token in header.split(",")}
    return etag in candidates


def _is_json_feed(request: HttpRequest) -> bool:
    content_type = request.headers.get("content-type", "")
    if "json" in content_type:
        return True
    if "xml" in content_type:
        return False
    return request.body.lstrip()[:1] in (b"{", b"[")


def _resolve_snapshot(store, spec: str):
    """The shared ledger selector, as a 404 instead of a DatabaseError."""
    from repro.core.exceptions import DatabaseError

    try:
        return store.resolve(spec)
    except DatabaseError as error:
        raise NotFound(str(error)) from error


def _head_or_conflict(store):
    head = store.head()
    if head is None:
        raise Conflict("the database has no snapshots yet")
    return head


# ---------------------------------------------------------------------------
# the asyncio HTTP/1.1 front end
# ---------------------------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[HttpRequest, float]]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Returns the request together with the seconds spent parsing it (header
    split + body read).  The clock starts *after* the head arrives, so
    keep-alive idle time between requests never counts as parse time.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=IDLE_TIMEOUT
        )
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    except asyncio.TimeoutError:
        return None
    except asyncio.LimitOverrunError:
        raise BadRequest("request headers too large")
    parse_started = CLOCK.perf()
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise BadRequest("malformed request line")
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = {
        name: tuple(values)
        for name, values in parse_qs(
            parts.query, keep_blank_values=True
        ).items()
    }
    body = b""
    encoding = headers.get("transfer-encoding")
    if encoding is not None and encoding.lower() != "identity":
        # We cannot parse chunked framing; accepting the request anyway
        # would leave the chunk bytes unread in the stream to desync the
        # next keep-alive request, so the connection is closed after the
        # 501 envelope (the ApiError path below breaks the loop).
        raise NotImplementedFeature(
            f"Transfer-Encoding {encoding!r} is not supported; "
            "send a Content-Length body",
            detail={"header": "transfer-encoding"},
        )
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise BadRequest("malformed Content-Length header")
        if size < 0:
            raise BadRequest(
                f"Content-Length must be non-negative, got {size}",
                detail={"header": "content-length"},
            )
        if size > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"request body of {size} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        if size:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(size), timeout=IDLE_TIMEOUT
                )
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                return None
    request = HttpRequest(
        method=method.upper(),
        path=unquote(parts.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )
    return request, CLOCK.perf() - parse_started


def _serialise(response: HttpResponse, keep_alive: bool, version: str) -> bytes:
    reason = _STATUS_REASONS.get(response.status, "Unknown")
    headers = dict(response.headers)
    headers.setdefault("Server", f"repro/{version}")
    if response.status != 304:
        headers.setdefault("Content-Type", response.content_type)
    headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n" + response.body


async def _handle_connection(
    app: DiversityService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    from repro import __version__

    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except ApiError as error:
                body = _serialise(
                    DiversityService._render_error(error), False, __version__
                )
                writer.write(body)
                await writer.drain()
                break
            if parsed is None:
                break
            request, parse_seconds = parsed
            response = await app.dispatch_async(request, parse_seconds)
            keep_alive = request.headers.get("connection", "keep-alive") != "close"
            writer.write(_serialise(response, keep_alive, __version__))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _serve_forever(
    app: DiversityService, config: ServiceConfig, log=print
) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    server = await asyncio.start_server(
        lambda reader, writer: _handle_connection(app, reader, writer),
        host=config.host,
        port=config.port,
    )
    bound = server.sockets[0].getsockname()
    log(
        f"repro service listening on http://{bound[0]}:{bound[1]} "
        f"(dataset: {app.provider.source})",
        file=sys.stderr,
    )
    await stop.wait()
    log("signal received; draining ...", file=sys.stderr)
    server.close()
    await server.wait_closed()
    drained = await app.drain_async(config.drain_grace)
    app.shutdown()
    log(
        "shutdown complete" if drained else "shutdown with unfinished jobs",
        file=sys.stderr,
    )
    return 0 if drained else 1


def serve(config: ServiceConfig, provider=None) -> int:
    """Run the server until SIGTERM/SIGINT; the ``repro serve`` entry point."""
    app = DiversityService(config, provider)
    return asyncio.run(_serve_forever(app, config))


class ServiceServer:
    """The same asyncio server, on a background thread (tests/benchmarks).

    ``start()`` binds (port 0 picks a free port), returns the base URL and
    leaves the loop running on a daemon thread; ``stop()`` closes the
    listener, drains jobs and joins the thread.  The wrapped
    :class:`DiversityService` stays accessible as ``.app`` so harnesses
    can assert on registry/cache counters while requests fly.
    """

    def __init__(
        self,
        app: DiversityService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.app = app
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.base_url: Optional[str] = None

    def start(self) -> str:
        """Bind and serve on a background thread; returns the base URL."""
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def main() -> None:
                self._stop = asyncio.Event()
                try:
                    server = await asyncio.start_server(
                        lambda reader, writer: _handle_connection(
                            self.app, reader, writer
                        ),
                        host=self._host,
                        port=self._port,
                    )
                except OSError as error:
                    failure["error"] = error
                    ready.set()
                    return
                bound = server.sockets[0].getsockname()
                self.base_url = f"http://{bound[0]}:{bound[1]}"
                ready.set()
                await self._stop.wait()
                server.close()
                await server.wait_closed()

            loop.run_until_complete(main())
            loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=10) or self.base_url is None:
            raise RuntimeError(
                f"service failed to start: {failure.get('error', 'timeout')}"
            )
        return self.base_url

    def stop(self, drain_grace: Optional[float] = None) -> bool:
        """Close the listener, drain jobs, join the loop thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        grace = (
            drain_grace if drain_grace is not None else self.app.config.drain_grace
        )
        drained = self.app.jobs.drain(grace)
        self.app.shutdown()
        return drained

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
