"""Configuration of the diversity-query API server.

One frozen dataclass carries every knob ``repro serve`` exposes, validated
at construction so a misconfigured server fails before it binds a socket.
The defaults serve the calibrated synthetic corpus on localhost -- the
zero-setup path used by the CI smoke test and the worked examples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.dataset import ENGINES
from repro.core.exceptions import ReproError

#: ``--catalogue`` spec: ``scaled:<families>x<releases>`` (e.g. 10x10 for
#: the 100-OS benchmark catalogue the scaling gates run on).
_CATALOGUE_SPEC = re.compile(r"^scaled:(\d+)x(\d+)$")


class ServiceConfigError(ReproError):
    """The service was configured inconsistently."""


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of one ``repro serve`` instance.

    ``workers`` is the number of serving **processes** the deployment runs
    (each also sizing the process pool its background simulation jobs fan
    out to, via :class:`~repro.runner.runner.GridRunner`);
    ``request_threads`` sizes each worker's HTTP dispatch thread pool;
    ``cache_size`` caps the LRU response cache in entries; ``drain_grace``
    bounds how long a SIGTERM waits for running jobs before the loop
    stops.

    The sharding block (``shards``, ``shard_index``, ``peers``) is filled
    in by :mod:`repro.service.cluster` when it derives one per-worker
    config from the deployment config: ``shards`` partitions the
    combination space of pair/k-set matrix queries, ``shard_index`` names
    this worker's own partition, and ``peers`` lists every worker's
    internal base URL (indexed by shard) for scatter-gather and
    cross-process cache invalidation.
    """

    host: str = "127.0.0.1"
    port: int = 8142
    workers: int = 1
    cache_size: int = 256
    engine: str = "bitset"
    seed: int = 20110627
    db: Optional[str] = None
    snapshot: Optional[str] = None
    feeds: Optional[str] = None
    drain_grace: float = 10.0
    #: Datasets kept compiled in the artifact registry at once (the current
    #: head plus a few recent snapshots during rolling deltas).
    registry_size: int = 4
    #: Threads per worker that run ``dispatch`` off the event loop.
    request_threads: int = 8
    #: Serve a generated catalogue instead of the calibrated corpus
    #: (``scaled:10x10`` = 100 OS releases); deterministic per ``seed``, so
    #: every worker process rebuilds the identical dataset digest.
    catalogue: Optional[str] = None
    #: Force the stdlib front-router even where ``SO_REUSEPORT`` exists.
    front_router: bool = False
    #: Combination-space partitions (the cluster sets this to ``workers``).
    shards: int = 1
    #: This worker's partition index in ``[0, shards)``.
    shard_index: int = 0
    #: Internal base URLs of every worker, indexed by shard.
    peers: Tuple[str, ...] = ()
    #: Expose the public observability surface (``GET /metrics`` and
    #: ``GET /v1/traces``).  The internal scrape/trace endpoints stay up
    #: regardless, so a cluster keeps aggregating even when the public
    #: surface is off.
    metrics: bool = True
    #: Log every finished trace as one JSON line on stderr.
    trace_log: bool = False
    #: Finished traces retained per worker in the tracing ring buffer.
    trace_buffer: int = 256

    def __post_init__(self) -> None:
        if not self.host:
            raise ServiceConfigError("the server needs a host to bind")
        if not 0 <= self.port <= 65535:
            raise ServiceConfigError(f"port {self.port} is outside 0-65535")
        if self.workers < 1:
            raise ServiceConfigError("the job runner needs at least one worker")
        if self.cache_size < 1:
            raise ServiceConfigError("the response cache needs at least one entry")
        if self.registry_size < 1:
            raise ServiceConfigError("the registry must hold at least one dataset")
        if self.engine not in ENGINES:
            raise ServiceConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.drain_grace < 0:
            raise ServiceConfigError("the drain grace period must be non-negative")
        if self.request_threads < 1:
            raise ServiceConfigError(
                "the request executor needs at least one thread"
            )
        if self.trace_buffer < 1:
            raise ServiceConfigError(
                "the trace ring buffer needs at least one slot"
            )
        if self.shards < 1:
            raise ServiceConfigError("the query space needs at least one shard")
        if not 0 <= self.shard_index < self.shards:
            raise ServiceConfigError(
                f"shard index {self.shard_index} is outside [0, {self.shards})"
            )
        if self.peers and len(self.peers) != self.shards:
            raise ServiceConfigError(
                f"{len(self.peers)} peer URLs for {self.shards} shards; "
                "peers must be indexed by shard"
            )
        if self.catalogue is not None:
            if self.db or self.feeds:
                raise ServiceConfigError(
                    "--catalogue is mutually exclusive with --db/--feeds"
                )
            if self.scaled_catalogue_shape() is None:
                raise ServiceConfigError(
                    f"unknown catalogue spec {self.catalogue!r}; expected "
                    "scaled:<families>x<releases>, e.g. scaled:10x10"
                )
        if self.db and self.feeds:
            raise ServiceConfigError("--db and --feeds are mutually exclusive")
        if self.snapshot and not self.db:
            raise ServiceConfigError("--snapshot requires --db")

    def scaled_catalogue_shape(self) -> Optional[Tuple[int, int]]:
        """The ``(families, releases)`` of a ``scaled:FxR`` catalogue spec."""
        if self.catalogue is None:
            return None
        match = _CATALOGUE_SPEC.match(self.catalogue)
        if match is None or int(match.group(1)) < 1 or int(match.group(2)) < 1:
            return None
        return int(match.group(1)), int(match.group(2))
