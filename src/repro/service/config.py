"""Configuration of the diversity-query API server.

One frozen dataclass carries every knob ``repro serve`` exposes, validated
at construction so a misconfigured server fails before it binds a socket.
The defaults serve the calibrated synthetic corpus on localhost -- the
zero-setup path used by the CI smoke test and the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dataset import ENGINES
from repro.core.exceptions import ReproError


class ServiceConfigError(ReproError):
    """The service was configured inconsistently."""


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of one ``repro serve`` instance.

    ``workers`` sizes the process pool background simulation jobs fan out
    to (via :class:`~repro.runner.runner.GridRunner`); ``cache_size`` caps
    the LRU response cache in entries; ``drain_grace`` bounds how long a
    SIGTERM waits for running jobs before the loop stops.
    """

    host: str = "127.0.0.1"
    port: int = 8142
    workers: int = 1
    cache_size: int = 256
    engine: str = "bitset"
    seed: int = 20110627
    db: Optional[str] = None
    snapshot: Optional[str] = None
    feeds: Optional[str] = None
    drain_grace: float = 10.0
    #: Datasets kept compiled in the artifact registry at once (the current
    #: head plus a few recent snapshots during rolling deltas).
    registry_size: int = 4

    def __post_init__(self) -> None:
        if not self.host:
            raise ServiceConfigError("the server needs a host to bind")
        if not 0 <= self.port <= 65535:
            raise ServiceConfigError(f"port {self.port} is outside 0-65535")
        if self.workers < 1:
            raise ServiceConfigError("the job runner needs at least one worker")
        if self.cache_size < 1:
            raise ServiceConfigError("the response cache needs at least one entry")
        if self.registry_size < 1:
            raise ServiceConfigError("the registry must hold at least one dataset")
        if self.engine not in ENGINES:
            raise ServiceConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.drain_grace < 0:
            raise ServiceConfigError("the drain grace period must be non-negative")
        if self.db and self.feeds:
            raise ServiceConfigError("--db and --feeds are mutually exclusive")
        if self.snapshot and not self.db:
            raise ServiceConfigError("--snapshot requires --db")
