"""Method + path-template routing for the API server.

A :class:`Router` maps ``(method, "/v1/jobs/{job_id}")`` templates onto
handler callables.  Resolution distinguishes *unknown path* (404) from
*known path, wrong method* (405, with the ``Allow`` set in the error
detail), which is what the structured error contract requires.

Templates are static segments plus ``{name}`` captures; a capture matches
one non-empty path segment and is handed to the handler as a string in the
``params`` mapping.  Matching is deterministic: routes are tried in
registration order and templates never overlap in practice (the route
table is small and hand-written in :mod:`repro.service.server`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.service.errors import MethodNotAllowed, NotFound

#: ``{name}`` captures inside a route template.
_CAPTURE = re.compile(r"\{([a-z_]+)\}")


def _compile(template: str) -> re.Pattern:
    """Turn ``/v1/jobs/{job_id}`` into an anchored regex with named groups."""
    pattern = "".join(
        f"(?P<{part[1:-1]}>[^/]+)" if part.startswith("{") else re.escape(part)
        for part in re.split(r"(\{[a-z_]+\})", template)
    )
    return re.compile(f"^{pattern}$")


@dataclass(frozen=True)
class Route:
    """One registered route: method, template, compiled matcher, handler."""

    method: str
    template: str
    pattern: re.Pattern
    handler: Callable


class Router:
    """Orders routes and resolves requests to (handler, path params)."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, method: str, template: str, handler: Callable) -> None:
        """Register a handler for one method + path template."""
        if not template.startswith("/"):
            raise ValueError(f"route template {template!r} must start with '/'")
        for name in _CAPTURE.findall(template):
            if template.count(f"{{{name}}}") > 1:
                raise ValueError(f"duplicate capture {name!r} in {template!r}")
        self._routes.append(
            Route(method.upper(), template, _compile(template), handler)
        )

    def routes(self) -> List[Tuple[str, str]]:
        """(method, template) pairs in registration order (for docs/tests)."""
        return [(route.method, route.template) for route in self._routes]

    def match(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        """The matching :class:`Route` and path params for a request.

        Raises :class:`~repro.service.errors.NotFound` when no template
        matches the path, and :class:`~repro.service.errors
        .MethodNotAllowed` (carrying the allowed method set) when templates
        match but none under the requested method.  Exposing the
        :class:`Route` (not just its handler) lets the metrics layer label
        request counters by *template* -- bounded cardinality, unlike raw
        paths with ids in them.
        """
        allowed = set()
        for route in self._routes:
            match = route.pattern.match(path)
            if match is None:
                continue
            if route.method == method.upper():
                return route, match.groupdict()
            allowed.add(route.method)
        if allowed:
            raise MethodNotAllowed(
                f"{path} does not support {method.upper()}",
                detail={"allow": sorted(allowed)},
            )
        raise NotFound(f"no route matches {path}")

    def resolve(self, method: str, path: str) -> Tuple[Callable, Dict[str, str]]:
        """The handler and path params for a request (see :meth:`match`)."""
        route, params = self.match(method, path)
        return route.handler, params
