"""The long-lived diversity-query serving layer (``repro serve``).

A stdlib-only asyncio HTTP/1.1 server exposing the paper's artefacts --
shared-vulnerability counts, pair/k-set matrices, replica-set selection,
snapshot ledger queries and background Monte-Carlo simulation jobs -- as
JSON endpoints that **compile each dataset state once and answer from
memory**:

* :mod:`repro.service.registry` -- dataset providers plus the
  digest-keyed :class:`~repro.service.registry.ArtifactRegistry` (one
  compile per content digest, even under concurrent requests);
* :mod:`repro.service.cache` -- the LRU response cache and scoped-digest
  ``ETag`` scheme (``If-None-Match`` -> 304 across unrelated deltas);
* :mod:`repro.service.jobs` -- background sweep jobs over the PR-3
  :class:`~repro.runner.runner.GridRunner` (``202`` + poll);
* :mod:`repro.service.server` -- the application, the asyncio front end,
  :func:`~repro.service.server.serve` and the embeddable
  :class:`~repro.service.server.ServiceServer`;
* :mod:`repro.service.sharding` / :mod:`repro.service.cluster` -- the
  deterministic combination-space partitioning behind sharded matrix
  queries, and the multi-process deployment (``--workers N``:
  ``SO_REUSEPORT`` or front-router, scatter-gather over internal
  listeners, cross-process cache invalidation);
* :mod:`repro.service.routing` / :mod:`~repro.service.schemas` /
  :mod:`~repro.service.errors` / :mod:`~repro.service.config` -- routing,
  payload schemas, the structured error envelope and configuration.

See ``docs/service.md`` for the endpoint reference and cache semantics.
"""

from repro.service.cache import CachedResponse, ResponseCache, make_etag
from repro.service.cluster import (
    FrontRouter,
    HttpPeer,
    LocalPeer,
    ServiceCluster,
    local_shard_fleet,
    serve_cluster,
)
from repro.service.config import ServiceConfig, ServiceConfigError
from repro.service.errors import (
    ApiError,
    BadRequest,
    Conflict,
    Draining,
    MethodNotAllowed,
    NotFound,
    NotImplementedFeature,
)
from repro.service.jobs import Job, JobTable
from repro.service.registry import (
    ArtifactRegistry,
    CorpusArtifacts,
    DatasetState,
    SnapshotDatasetProvider,
    StaticDatasetProvider,
)
from repro.service.routing import Router
from repro.service.server import (
    DiversityService,
    HttpRequest,
    HttpResponse,
    ServiceServer,
    serve,
)

__all__ = [
    "ApiError",
    "ArtifactRegistry",
    "BadRequest",
    "CachedResponse",
    "Conflict",
    "CorpusArtifacts",
    "DatasetState",
    "DiversityService",
    "Draining",
    "FrontRouter",
    "HttpPeer",
    "HttpRequest",
    "HttpResponse",
    "Job",
    "JobTable",
    "LocalPeer",
    "MethodNotAllowed",
    "NotFound",
    "NotImplementedFeature",
    "ResponseCache",
    "Router",
    "ServiceCluster",
    "ServiceConfig",
    "ServiceConfigError",
    "ServiceServer",
    "SnapshotDatasetProvider",
    "StaticDatasetProvider",
    "local_shard_fleet",
    "make_etag",
    "serve",
    "serve_cluster",
]
