"""``repro.obs``: stdlib-only observability for the serving stack.

Four seams, threaded through every hot layer (see ``docs/observability.md``):

* :mod:`repro.obs.clock` -- the injectable timing seam (the only
  sanctioned wall-clock reads in the instrumented tree; DET002-clean);
* :mod:`repro.obs.metrics` -- thread-safe Counter/Gauge/Histogram with
  labels and fixed buckets, rendered as Prometheus text exposition
  (``GET /metrics``, per worker and cluster-aggregated);
* :mod:`repro.obs.tracing` -- per-request traces with span records,
  propagated across shard scatter calls via ``X-Repro-Trace`` and
  retained in a bounded ring buffer (``GET /v1/traces``);
* :mod:`repro.obs.logging` -- the structured JSON-lines logger that
  OBS401 steers library diagnostics through.

Everything here is observe-only: no metric, span or log line may change
a payload byte.
"""

from repro.obs.clock import CLOCK, Clock, ManualClock
from repro.obs.logging import JsonLogger, trace_sink
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_exposition,
)
from repro.obs.tracing import (
    TRACE_HEADER,
    Span,
    SpanHandle,
    Trace,
    Tracer,
    new_trace_id,
    valid_trace_id,
)

__all__ = [
    "CLOCK",
    "Clock",
    "ManualClock",
    "JsonLogger",
    "trace_sink",
    "DEFAULT_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_exposition",
    "TRACE_HEADER",
    "Span",
    "SpanHandle",
    "Trace",
    "Tracer",
    "new_trace_id",
    "valid_trace_id",
]
