"""The injectable clock seam every observability timing read goes through.

Determinism discipline (ROADMAP: golden payloads are byte-identical, merges
are pure functions of their inputs) bans ad-hoc wall-clock reads from the
digest/merge paths -- the DET002 lint rule enforces it.  Observability
still needs durations, so this module concentrates **all** of them behind
one seam: production code holds a :class:`Clock` (usually the module
singleton :data:`CLOCK`) and calls ``clock.perf()`` / ``clock.wall()``;
tests inject a :class:`ManualClock` to make timings exact and goldens
reproducible.  The two ``time`` reads below are the only sanctioned ones
in the instrumented tree, each carrying its own ``noqa`` rationale.
"""

from __future__ import annotations

import time


class Clock:
    """Real clocks behind an injectable interface.

    ``perf()`` is monotonic and only ever used for *durations* (span
    lengths, histogram observations); ``wall()`` is the epoch clock used
    for log-line timestamps and uptime.  Neither reading may enter a
    digest, a merge, or a golden payload -- observability is observe-only.
    """

    def perf(self) -> float:
        """Monotonic seconds, for durations."""
        return time.perf_counter()  # repro: noqa[DET002] -- the single sanctioned monotonic read: every span/histogram duration funnels through this seam

    def wall(self) -> float:
        """Epoch seconds, for log timestamps and uptime."""
        return time.time()  # repro: noqa[DET002] -- the single sanctioned epoch read: log-line timestamps are provenance, never data


class ManualClock(Clock):
    """A hand-cranked clock for deterministic tests and golden files."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def perf(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move both clocks forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("a clock cannot run backwards")
        self._now += seconds


#: The process-wide real clock, injected by default everywhere.
CLOCK = Clock()
