"""Request tracing: trace ids, spans, and the bounded per-worker ring.

Every HTTP request the service dispatches gets a :class:`Trace` -- either
joining the id a client (or a coordinating peer worker) supplied in the
``X-Repro-Trace`` header, or minting a fresh one.  Handlers hang
:class:`Span` records off the active trace (``parse``, ``cache.lookup``,
``registry.compile``, ``scatter`` fan-out, ``merge``, ``ingest.apply``,
``ingest.broadcast``); finished traces land in a bounded ring buffer
(``collections.deque(maxlen=...)``) queryable at ``GET /v1/traces``.

Thread model: dispatch runs on a thread pool, so the "current trace" is
``threading.local`` per :class:`Tracer` (contextvars do not survive
``loop.run_in_executor`` hops).  Scatter fan-out submits work to a
*different* pool; the scatter code captures ``tracer.current()`` on the
dispatch thread and passes it to ``tracer.span(..., trace=...)``
explicitly, which is the one sanctioned way to record spans from a
foreign thread (``Trace.record`` takes a lock).

Tracing is observe-only: ``span()`` with no active trace yields an inert
handle and records nothing, and no payload byte ever depends on a trace.
"""

from __future__ import annotations

import re
import threading
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import CLOCK, Clock

#: The propagation header, echoed on every response.
TRACE_HEADER = "X-Repro-Trace"

#: Accepted externally-supplied trace ids (anything else is replaced).
_TRACE_ID = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (entropy is fine here: ids are not data)."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(value: Optional[str]) -> bool:
    """Whether a client-supplied id is safe to adopt verbatim."""
    return value is not None and _TRACE_ID.match(value) is not None


class Span:
    """One timed step inside a trace (offsets relative to the trace start)."""

    __slots__ = ("name", "start", "duration", "tags")

    def __init__(
        self, name: str, start: float, duration: float, tags: Dict[str, str]
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.tags = tags

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_ms": round(self.start * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 3),
            "tags": dict(self.tags),
        }


class SpanHandle:
    """The mutable handle yielded by ``tracer.span(...)`` context blocks."""

    __slots__ = ("name", "tags")

    def __init__(self, name: str, tags: Dict[str, str]) -> None:
        self.name = name
        self.tags = tags

    def tag(self, **tags: object) -> None:
        """Attach (string-coerced) tags to the span being recorded."""
        for name, value in tags.items():
            self.tags[name] = str(value)


class Trace:
    """One request's spans, safe to append to from any thread."""

    def __init__(
        self,
        trace_id: str,
        name: str,
        shard: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        clock = clock if clock is not None else CLOCK
        self.trace_id = trace_id
        self.name = name
        self.shard = shard
        self.started = clock.perf()
        self.status: Optional[int] = None
        self.duration: Optional[float] = None
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def record(
        self,
        name: str,
        started_perf: float,
        duration: float,
        tags: Optional[Dict[str, str]] = None,
    ) -> None:
        """Append a span timed against this trace's clock origin."""
        span = Span(
            name=name,
            start=max(0.0, started_perf - self.started),
            duration=max(0.0, duration),
            tags=dict(tags or {}),
        )
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def to_json(self) -> Dict[str, object]:
        with self._lock:
            spans = sorted(self._spans, key=lambda span: (span.start, span.name))
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "shard": self.shard,
            "status": self.status,
            "duration_ms": (
                None if self.duration is None
                else round(self.duration * 1000.0, 3)
            ),
            "spans": [span.to_json() for span in spans],
        }


class Tracer:
    """Mints, activates and retains traces for one worker."""

    def __init__(
        self,
        buffer_size: int = 256,
        shard: int = 0,
        clock: Optional[Clock] = None,
        sink=None,
    ) -> None:
        if buffer_size < 1:
            raise ValueError("the trace ring buffer needs at least one slot")
        self.buffer_size = buffer_size
        self.shard = shard
        self._clock = clock if clock is not None else CLOCK
        self._sink = sink
        self._records: "deque[Trace]" = deque(maxlen=buffer_size)
        self._lock = threading.Lock()
        self._local = threading.local()

    def begin(self, name: str, trace_id: Optional[str] = None) -> Trace:
        """A new trace, adopting ``trace_id`` when it is propagation-safe."""
        adopted = trace_id if valid_trace_id(trace_id) else new_trace_id()
        return Trace(adopted, name, shard=self.shard, clock=self._clock)

    def current(self) -> Optional[Trace]:
        """The trace active on this thread, if any."""
        return getattr(self._local, "trace", None)

    @contextmanager
    def activate(self, trace: Trace) -> Iterator[Trace]:
        """Make ``trace`` current on this thread for the block's duration."""
        previous = self.current()
        self._local.trace = trace
        try:
            yield trace
        finally:
            self._local.trace = previous

    @contextmanager
    def span(
        self,
        name: str,
        trace: Optional[Trace] = None,
        **tags: object,
    ) -> Iterator[SpanHandle]:
        """Record a span on ``trace`` (or the current one); no-op without one.

        Passing ``trace`` explicitly is how scatter-pool threads -- which
        have no thread-local current trace -- attach their spans to the
        coordinating request.
        """
        target = trace if trace is not None else self.current()
        handle = SpanHandle(name, {key: str(value) for key, value in tags.items()})
        if target is None:
            yield handle
            return
        started = self._clock.perf()
        try:
            yield handle
        finally:
            target.record(
                handle.name, started, self._clock.perf() - started, handle.tags
            )

    def finish(self, trace: Trace, status: Optional[int] = None) -> None:
        """Stamp the outcome, retain the trace, and feed the log sink."""
        trace.status = status
        trace.duration = self._clock.perf() - trace.started
        with self._lock:
            self._records.append(trace)
        if self._sink is not None:
            self._sink(trace.to_json())

    def recent(self, limit: int = 20) -> List[Trace]:
        """The most recently finished traces, newest first."""
        with self._lock:
            records = list(self._records)
        return records[::-1][: max(0, limit)]

    def find(self, trace_id: str) -> List[Trace]:
        """Every retained trace with this id, oldest first."""
        with self._lock:
            return [
                trace for trace in self._records if trace.trace_id == trace_id
            ]
