"""Structured JSON-lines logging: the sanctioned sink for library output.

The OBS401 lint rule bans bare ``print()`` in ``src/repro`` library code
(CLI/``__main__`` entry points excepted): unstructured text on a stream
the caller does not control corrupts JSON stdout contracts and cannot be
scraped.  Library diagnostics instead go through :class:`JsonLogger`,
which writes one JSON object per line to stderr (or an injected stream),
each stamped through the clock seam.  ``repro serve --trace-log`` wires a
logger as the tracer sink, so every finished trace becomes one
``{"event": "trace", ...}`` line.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Callable, Dict, Optional, TextIO

from repro.obs.clock import CLOCK, Clock


class JsonLogger:
    """One JSON object per line, machine-parseable, thread-safe.

    ``stream=None`` resolves ``sys.stderr`` at *call* time, so tests that
    swap ``sys.stderr`` (pytest's ``capsys``) observe the lines.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, clock: Optional[Clock] = None
    ) -> None:
        self._stream = stream
        self._clock = clock if clock is not None else CLOCK
        self._lock = threading.Lock()

    def log(self, event: str, **fields: object) -> None:
        """Emit one log line: ``{"ts": ..., "event": event, **fields}``."""
        record: Dict[str, object] = {
            "ts": round(self._clock.wall(), 6),
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            print(line, file=stream, flush=True)  # repro: noqa[OBS401] -- the one sanctioned print: every structured log line funnels through this sink


def trace_sink(logger: JsonLogger) -> Callable[[Dict[str, object]], None]:
    """A tracer sink that logs each finished trace as one JSON line."""

    def sink(record: Dict[str, object]) -> None:
        logger.log("trace", **record)

    return sink
