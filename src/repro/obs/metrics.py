"""Thread-safe metrics primitives and the Prometheus text exposition.

Three instrument types -- :class:`Counter`, :class:`Gauge` and
:class:`Histogram` -- live in a :class:`MetricsRegistry`.  All of them
support labels; a labelled instrument keeps one independent series per
label-value tuple, created lazily on first touch.  Histogram bucket
boundaries are **fixed at construction** (no adaptive resizing: two
workers must always expose merge-compatible buckets).

Every mutation takes the instrument's lock, so concurrent dispatch
threads never lose updates -- ``tests/obs/test_metrics.py`` hammers this
with a thread pool.  Reads (``snapshot``) take the same locks briefly per
instrument; a scrape never blocks the hot path for long.

Two render paths share one code point:

* ``registry.render()`` -- this worker's samples as Prometheus text
  exposition format (``GET /metrics`` on a single worker);
* :func:`render_exposition` over several ``(snapshot, extra_labels)``
  parts -- the cluster-aggregated view: the coordinating worker
  scatter-gathers peer ``/internal/v1/metrics`` JSON snapshots and
  renders every shard's samples side by side under a ``shard`` label
  (no cross-worker summing: sums are wrong for gauges and hide skew
  for histograms; per-shard series keep scrapes honest).

Snapshots are plain JSON-safe structures (finite floats only -- the
implicit ``+Inf`` bucket is rendered from ``count``), so they travel the
internal HTTP hop through the canonical JSON encoder unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Fixed latency buckets in seconds (sub-millisecond cache hits through
#: multi-second sweeps); the implicit ``+Inf`` bucket is always appended.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed size buckets for entry/blast-radius counts (not seconds).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


def _check_name(name: str) -> str:
    if not name or not all(
        ch.isalnum() or ch in "_:" for ch in name
    ) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Metric:
    """Base: one named instrument holding one series per label tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()
        self._series: "OrderedDict[Tuple[str, ...], object]" = OrderedDict()

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_map(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe description of this instrument and all its series."""
        with self._lock:
            samples = [
                self._sample(key, value) for key, value in self._series.items()
            ]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": samples,
        }

    def _sample(self, key: Tuple[str, ...], value: object) -> Dict[str, object]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (per label series)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one series (0.0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def total(self) -> float:
        """Sum over every series (all label combinations)."""
        with self._lock:
            return float(sum(self._series.values()))

    def _sample(self, key, value) -> Dict[str, object]:
        return {"labels": self._label_map(key), "value": value}


class Gauge(Metric):
    """A value that can go up and down (per label series)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _sample(self, key, value) -> Dict[str, object]:
        return {"labels": self._label_map(key), "value": value}


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, buckets: int) -> None:
        self.bucket_counts = [0] * buckets
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Observations binned into fixed cumulative buckets (per series)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
                    break
            series.sum += value
            series.count += 1

    def count(self, **labels: object) -> int:
        """Observations recorded in one series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return 0 if series is None else series.count

    def _sample(self, key, series) -> Dict[str, object]:
        cumulative: List[List[object]] = []
        running = 0
        for bound, count in zip(self.buckets, series.bucket_counts):
            running += count
            cumulative.append([bound, running])
        return {
            "labels": self._label_map(key),
            "buckets": cumulative,
            "sum": series.sum,
            "count": series.count,
        }


class MetricsRegistry:
    """Named instruments under one namespace, with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (validating that the type and
    label set agree), so independently-constructed components --
    the artifact registry, the response cache, the ingest pipeline --
    can share one worker-wide registry without coordination.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()
        self._lock = threading.Lock()

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs) -> Metric:
        full = self._full_name(name)
        with self._lock:
            existing = self._metrics.get(full)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {full} already registered as "
                        f"{existing.kind}{list(existing.label_names)}"
                    )
                return existing
            metric = cls(full, help, labels=labels, **kwargs)
            self._metrics[full] = metric
            return metric

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def snapshot(self) -> List[Dict[str, object]]:
        """Every instrument's JSON-safe snapshot, in registration order."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.snapshot() for metric in metrics]

    def render(self, extra_labels: Optional[Mapping[str, str]] = None) -> str:
        """This registry alone, as Prometheus text exposition format."""
        return render_exposition([(self.snapshot(), dict(extra_labels or {}))])


# ---------------------------------------------------------------------------
# text exposition rendering
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _sample_sort_key(sample: Mapping[str, object]) -> str:
    return _format_labels(sample.get("labels", {}) or {})


def render_exposition(parts: Sequence[Tuple[List[Dict[str, object]], Mapping[str, str]]]) -> str:
    """Prometheus text format over one or more ``(snapshot, extra_labels)``.

    Metrics with the same name across parts are merged under one
    ``HELP``/``TYPE`` header (first part wins the metadata) with each
    part's ``extra_labels`` -- typically ``{"shard": "<i>"}`` -- applied
    to its samples.  Sample order is deterministic: metrics keep first-
    seen order, samples sort by their rendered label string.
    """
    merged: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    for snapshot, extra in parts:
        extra = {name: str(value) for name, value in (extra or {}).items()}
        for metric in snapshot:
            entry = merged.setdefault(
                str(metric["name"]),
                {"type": metric["type"], "help": metric["help"], "samples": []},
            )
            for sample in metric["samples"]:
                labels = dict(sample.get("labels", {}) or {})
                labels.update(extra)
                merged_sample = dict(sample)
                merged_sample["labels"] = labels
                entry["samples"].append(merged_sample)
    lines: List[str] = []
    for name, entry in merged.items():
        lines.append(f"# HELP {name} {_escape_help(str(entry['help']))}")
        lines.append(f"# TYPE {name} {entry['type']}")
        samples = sorted(entry["samples"], key=_sample_sort_key)
        if entry["type"] == "histogram":
            for sample in samples:
                labels = sample["labels"]
                for bound, cumulative in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} "
                    f"{_format_value(sample['count'])}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{_format_value(sample['count'])}"
                )
        else:
            for sample in samples:
                lines.append(
                    f"{name}{_format_labels(sample['labels'])} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""
