"""Parallel experiment-grid runner.

The paper's evaluation is a family of sweeps; this subpackage turns "run the
simulator over a parameter grid" into a first-class, parallel, cached
operation:

* :mod:`repro.runner.grid` -- declarative grids
  (:class:`~repro.runner.grid.ExperimentGrid`) expanding deterministically
  into cells;
* :mod:`repro.runner.runner` -- :class:`~repro.runner.runner.GridRunner`,
  which chunks each cell's runs, executes chunks across a process pool and
  merges them so ``workers=1`` and ``workers=N`` agree bit for bit;
* :mod:`repro.runner.cache` -- a content-addressed JSON result cache keyed
  by the cell's *scoped* corpus digest (the sub-corpus the cell can
  observe) + cell parameters + seed + engine, so incremental corpus deltas
  invalidate only the cells whose OSes they touch.

Surfaced on the command line as ``python -m repro sweep`` (see
``docs/cli.md``) and benchmarked by ``benchmarks/bench_sweep.py``.
"""

from repro.runner.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cell_key,
    corpus_digest,
    result_from_json,
    result_to_json,
    scoped_corpus_digest,
    scoped_pool,
)
from repro.runner.grid import (
    ADVERSARY_MODES,
    ArrivalSpec,
    ExperimentGrid,
    GridCell,
)
from repro.runner.runner import CellResult, GridRunner, SweepReport, chunk_ranges

__all__ = [
    "ADVERSARY_MODES",
    "ArrivalSpec",
    "CACHE_SCHEMA",
    "CellResult",
    "ExperimentGrid",
    "GridCell",
    "GridRunner",
    "ResultCache",
    "SweepReport",
    "cell_key",
    "chunk_ranges",
    "corpus_digest",
    "result_from_json",
    "result_to_json",
    "scoped_corpus_digest",
    "scoped_pool",
]
