"""Parallel experiment-grid runner with deterministic merging.

:class:`GridRunner` executes every cell of an
:class:`~repro.runner.grid.ExperimentGrid` and guarantees that the merged
output is **bit-for-bit identical for workers=1 and workers=N**:

* each cell's ``runs`` are split into chunked run ranges
  (``CompromiseSimulation.run_range``), every run drawing from its own
  ``Random(seed + 7919 * run_index)`` stream regardless of chunking;
* chunks are executed inline (``workers=1``) or across a
  ``ProcessPoolExecutor`` whose workers compile the corpus **once per
  process** (pool filtering and bitmask compilation are the expensive parts,
  so they ride in the executor initializer, not in every task);
* completed chunks are merged with
  :func:`~repro.itsys.simulation.merge_run_ranges`, which sorts partials by
  run-range start -- worker completion order cannot influence the result;
* with a :class:`~repro.runner.cache.ResultCache` attached, cell results are
  looked up by content address before any simulation work is scheduled, so a
  warm sweep performs **zero** simulation calls.

``benchmarks/bench_sweep.py`` gates the speedup and the determinism;
``tests/runner/`` property-tests both against random corpora.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.core.models import VulnerabilityEntry
from repro.obs.clock import CLOCK
from repro.obs.metrics import MetricsRegistry
from repro.itsys.simulation import (
    CompromiseSimulation,
    RunRangeTallies,
    SimulationResult,
    merge_run_ranges,
    result_from_tallies,
)
from repro.runner.cache import (
    ResultCache,
    cell_key,
    corpus_digest,
    result_to_json,
    scoped_corpus_digest,
)
from repro.runner.grid import ExperimentGrid, GridCell

#: Chunks scheduled per worker per cell; >1 keeps the pool busy when chunk
#: durations vary, while staying coarse enough that per-chunk compilation of
#: the cell's victim bitmasks stays negligible.
_CHUNKS_PER_WORKER = 2

# -- worker-process state -----------------------------------------------------
#
# The executor initializer builds one CompromiseSimulation per worker process;
# its compiled exploitable pool is shared by every chunk the worker executes.
_WORKER_SIMULATION: Optional[CompromiseSimulation] = None


def _init_worker(
    entries: Sequence[VulnerabilityEntry],
    configuration: ServerConfiguration,
    seed: int,
    engine: str,
    catalogued: bool,
) -> None:
    global _WORKER_SIMULATION
    _WORKER_SIMULATION = CompromiseSimulation(
        entries,
        configuration=configuration,
        seed=seed,
        engine=engine,
        catalogued=catalogued,
    )


def _run_chunk(
    cell_index: int, cell: GridCell, run_start: int, run_stop: int
) -> Tuple[int, RunRangeTallies, float]:
    """Execute one run range of one cell inside a worker process.

    The elapsed seconds ride back with the tallies so the parent process
    can feed its chunk-timing histogram without cross-process metric state;
    timings are observability only and never reach the merged results.
    """
    assert _WORKER_SIMULATION is not None, "worker initializer did not run"
    started = CLOCK.perf()
    tallies = _WORKER_SIMULATION.run_range(
        cell.os_names, run_start, run_stop, **cell.campaign_kwargs()
    )
    return cell_index, tallies, CLOCK.perf() - started


def chunk_ranges(runs: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``[0, runs)`` into at most ``chunks`` contiguous ranges.

    Earlier ranges get the remainder, so sizes differ by at most one.  The
    split has **no** effect on merged results (each run is independently
    seeded); it only controls scheduling granularity.
    """
    if runs <= 0:
        raise SimulationError("the number of runs must be positive")
    chunks = max(1, min(chunks, runs))
    base, remainder = divmod(runs, chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < remainder else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) cell of a sweep."""

    cell: GridCell
    result: SimulationResult
    cached: bool
    #: Digest of the sub-corpus the cell can observe (its cache-key scope);
    #: unchanged across corpus deltas that do not touch the cell's OSes.
    scope_digest: str = ""


@dataclass(frozen=True)
class SweepReport:
    """The merged outcome of one grid sweep.

    ``cells`` is in grid-expansion order, independent of worker scheduling
    and cache state.  The payload produced by :meth:`to_json_payload` is
    fully deterministic (no timings, no paths), which is what the golden CLI
    tests pin down.
    """

    cells: Tuple[CellResult, ...]
    seed: int
    engine: str
    workers: int
    corpus_digest: str
    elapsed_seconds: float

    @property
    def cached_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def simulated_cells(self) -> int:
        return len(self.cells) - self.cached_cells

    def results(self) -> List[SimulationResult]:
        return [cell.result for cell in self.cells]

    def to_json_payload(self) -> Dict[str, object]:
        """Deterministic JSON payload (excludes timings by design).

        ``corpus_digest`` addresses the exact entry set the sweep ran over;
        each cell additionally carries its ``scope_digest`` (the sub-corpus
        it can observe, i.e. its cache-key scope), so every number in the
        payload is traceable to a dataset state.
        """
        return {
            "engine": self.engine,
            "seed": self.seed,
            "corpus_digest": self.corpus_digest,
            "cells": [
                {
                    "cell_id": cell.cell.cell_id,
                    "params": cell.cell.params(),
                    "scope_digest": cell.scope_digest,
                    "result": result_to_json(cell.result),
                }
                for cell in self.cells
            ],
        }

    # CSV view ---------------------------------------------------------------

    CSV_HEADERS: Tuple[str, ...] = (
        "cell_id", "configuration", "os_names", "quorum_model",
        "recovery_interval", "arrival", "shape", "adversary", "runs",
        "exploit_rate", "horizon", "safety_violation_probability",
        "safety_ci_low", "safety_ci_high", "mean_compromised",
        "mean_time_to_violation", "liveness_loss_probability", "cached",
        "corpus_digest", "scope_digest", "scenario",
    )

    def csv_rows(self) -> List[Tuple[object, ...]]:
        """One row per cell, aligned with :attr:`CSV_HEADERS`."""
        rows: List[Tuple[object, ...]] = []
        for cell_result in self.cells:
            cell, result = cell_result.cell, cell_result.result
            rows.append(
                (
                    cell.cell_id,
                    cell.configuration,
                    "+".join(cell.os_names),
                    cell.quorum_model,
                    "" if cell.recovery_interval is None else cell.recovery_interval,
                    cell.arrival.process,
                    cell.arrival.shape,
                    cell.adversary,
                    cell.runs,
                    cell.exploit_rate,
                    cell.horizon,
                    result.safety_violation_probability,
                    result.safety_violation_ci[0],
                    result.safety_violation_ci[1],
                    result.mean_compromised,
                    "" if result.mean_time_to_violation is None
                    else result.mean_time_to_violation,
                    result.liveness_loss_probability,
                    int(cell_result.cached),
                    self.corpus_digest,
                    cell_result.scope_digest,
                    "" if cell.scenario is None else cell.scenario.label,
                )
            )
        return rows


class GridRunner:
    """Executes experiment grids over a corpus, in parallel, deterministically.

    ``workers=1`` runs every chunk inline in this process (the reference
    path); ``workers>1`` fans chunks out to a ``ProcessPoolExecutor``.  Both
    paths merge chunk tallies sorted by run-range start, so they produce the
    same :class:`~repro.itsys.simulation.SimulationResult` per cell bit for
    bit.
    """

    def __init__(
        self,
        entries: Iterable[VulnerabilityEntry],
        seed: int = 7,
        engine: str = "bitset",
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
        catalogued: bool = True,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise SimulationError("the runner needs at least one worker")
        self._entries = list(entries)
        self._seed = seed
        self._engine = engine
        self._configuration = configuration
        self._catalogued = catalogued
        self._workers = workers
        self._cache = cache
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._cells_counter = self._metrics.counter(
            "sweep_cells_total",
            "Sweep cells completed, by origin (cache-served vs simulated).",
            labels=("origin",),
        )
        self._chunk_seconds = self._metrics.histogram(
            "sweep_chunk_seconds",
            "Per-chunk simulation wall time, inline or per worker process.",
        )
        self._digest = corpus_digest(self._entries)
        #: Scoped digests memoized per (targeted, group OS set) -- many grid
        #: cells share a configuration, and the scope only depends on it.
        self._scope_digests: Dict[Tuple[bool, frozenset], str] = {}
        #: Normalized per-entry digests (id(entry) -> digest), computed once
        #: and shared by every scope digest over this corpus.
        self._entry_digests: Optional[Dict[int, str]] = None
        self._local: Optional[CompromiseSimulation] = None

    @classmethod
    def for_dataset(cls, dataset, **kwargs) -> "GridRunner":
        """A runner over a dataset's valid entries (the job-safe handle).

        The simulator only ever sees valid entries; this constructor
        applies that filter once so callers holding a
        :class:`~repro.analysis.dataset.VulnerabilityDataset` (the serving
        layer's job table, notebooks) cannot accidentally feed excluded
        entries into a sweep.  ``kwargs`` pass through to ``__init__``.
        """
        return cls([entry for entry in dataset if entry.is_valid], **kwargs)

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry sweep instrumentation reports into (shared or private)."""
        return self._metrics

    @property
    def corpus_digest(self) -> str:
        return self._digest

    def scope_digest(self, cell: GridCell) -> str:
        """Digest of the sub-corpus the cell can observe (its cache scope).

        Targeted cells observe only configuration-admitted entries affecting
        their OSes; untargeted cells observe the whole admitted pool.  Cells
        whose scope a corpus delta leaves untouched keep their digest -- and
        therefore their cache key -- across the delta.
        """
        scope = (cell.targeted, frozenset(cell.os_names) if cell.targeted else frozenset())
        if scope not in self._scope_digests:
            if self._entry_digests is None:
                from repro.snapshots.digests import entry_digest

                self._entry_digests = {
                    id(entry): entry_digest(entry) for entry in self._entries
                }
            self._scope_digests[scope] = scoped_corpus_digest(
                self._entries,
                cell.os_names if cell.targeted else None,
                self._configuration,
                digests=self._entry_digests,
            )
        return self._scope_digests[scope]

    def _local_simulation(self) -> CompromiseSimulation:
        if self._local is None:
            self._local = CompromiseSimulation(
                self._entries,
                configuration=self._configuration,
                seed=self._seed,
                engine=self._engine,
                catalogued=self._catalogued,
            )
        return self._local

    # -- execution -----------------------------------------------------------

    def run(self, grid: ExperimentGrid) -> SweepReport:
        """Execute every cell of the grid and return the merged report."""
        started = CLOCK.perf()
        cells = grid.expand()
        merged: Dict[int, SimulationResult] = {}
        cached: Dict[int, bool] = {}
        pending: List[Tuple[int, GridCell]] = []
        keys: Dict[int, str] = {}
        scopes: Dict[int, str] = {}
        for index, cell in enumerate(cells):
            scopes[index] = self.scope_digest(cell)
            if self._cache is not None:
                keys[index] = cell_key(
                    scopes[index],
                    cell,
                    self._seed,
                    self._engine,
                    configuration=self._configuration.value,
                    catalogued=self._catalogued,
                )
                hit = self._cache.get(keys[index])
                if hit is not None:
                    merged[index] = hit
                    cached[index] = True
                    continue
            pending.append((index, cell))
            cached[index] = False
        if pending:
            if self._workers == 1:
                self._run_inline(pending, merged)
            else:
                self._run_pooled(pending, merged)
            if self._cache is not None:
                for index, cell in pending:
                    self._cache.put(keys[index], cell, merged[index])
        served = sum(1 for was_cached in cached.values() if was_cached)
        if served:
            self._cells_counter.inc(served, origin="cached")
        if pending:
            self._cells_counter.inc(len(pending), origin="simulated")
        return SweepReport(
            cells=tuple(
                CellResult(
                    cell=cell,
                    result=merged[index],
                    cached=cached[index],
                    scope_digest=scopes[index],
                )
                for index, cell in enumerate(cells)
            ),
            seed=self._seed,
            engine=self._engine,
            workers=self._workers,
            corpus_digest=self._digest,
            elapsed_seconds=CLOCK.perf() - started,
        )

    def _run_inline(
        self,
        pending: Sequence[Tuple[int, GridCell]],
        merged: Dict[int, SimulationResult],
    ) -> None:
        simulation = self._local_simulation()
        for index, cell in pending:
            partials = []
            for start, stop in chunk_ranges(cell.runs, _CHUNKS_PER_WORKER):
                chunk_started = CLOCK.perf()
                partials.append(
                    simulation.run_range(
                        cell.os_names, start, stop, **cell.campaign_kwargs()
                    )
                )
                self._chunk_seconds.observe(CLOCK.perf() - chunk_started)
            merged[index] = result_from_tallies(
                cell.cell_id, cell.os_names, merge_run_ranges(partials)
            )

    def _run_pooled(
        self,
        pending: Sequence[Tuple[int, GridCell]],
        merged: Dict[int, SimulationResult],
    ) -> None:
        chunks_per_cell = self._workers * _CHUNKS_PER_WORKER
        by_cell: Dict[int, GridCell] = dict(pending)
        partials: Dict[int, List[RunRangeTallies]] = {index: [] for index in by_cell}
        with ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=_init_worker,
            initargs=(
                self._entries,
                self._configuration,
                self._seed,
                self._engine,
                self._catalogued,
            ),
        ) as pool:
            futures: List[Future] = [
                pool.submit(_run_chunk, index, cell, start, stop)
                for index, cell in pending
                for start, stop in chunk_ranges(cell.runs, chunks_per_cell)
            ]
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    index, tallies, elapsed = future.result()
                    self._chunk_seconds.observe(elapsed)
                    partials[index].append(tallies)
        for index, cell in by_cell.items():
            merged[index] = result_from_tallies(
                cell.cell_id, cell.os_names, merge_run_ranges(partials[index])
            )
