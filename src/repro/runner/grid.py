"""Declarative parameter grids for simulation sweeps.

The paper's headline results are sweeps: safety-violation probability across
replica configurations, quorum models, proactive-recovery intervals, arrival
processes and adversary behaviours.  :class:`ExperimentGrid` captures such a
sweep declaratively as the cartesian product of its axes and expands it into
:class:`GridCell` values -- one fully-specified Monte-Carlo campaign each --
that the :class:`~repro.runner.runner.GridRunner` executes and the
:class:`~repro.runner.cache.ResultCache` keys results by.

Expansion order is deterministic (configurations x quorum models x recovery
intervals x arrivals x adversaries x scenarios, each axis in declaration
order), so cell lists, cache keys and report rows are stable across
processes and runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import SimulationError
from repro.itsys.scenarios import ScenarioSpec
from repro.itsys.simulation import ARRIVALS

#: Adversary behaviours the grid understands, mapped onto the simulator's
#: ``targeted`` / ``smart`` campaign switches.
ADVERSARY_MODES: Mapping[str, Tuple[bool, bool]] = {
    # name: (targeted, smart)
    "standard": (True, False),
    "smart": (True, True),
    "untargeted": (False, False),
}


@dataclass(frozen=True)
class ArrivalSpec:
    """An exploit inter-arrival process: the process name plus its shape.

    ``shape`` is only meaningful for the Weibull ``"aging"`` process and is
    normalised to ``1.0`` for ``"poisson"`` so equivalent specs compare (and
    cache) equal.
    """

    process: str = "poisson"
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVALS:
            raise SimulationError(
                f"unknown arrival process {self.process!r}; expected one of {ARRIVALS}"
            )
        if self.shape <= 0:
            raise SimulationError("the inter-arrival shape must be positive")
        if self.process == "poisson":
            object.__setattr__(self, "shape", 1.0)

    @property
    def label(self) -> str:
        if self.process == "aging":
            return f"aging(k={self.shape:g})"
        return self.process


@dataclass(frozen=True)
class GridCell:
    """One fully-specified Monte-Carlo campaign of a sweep.

    ``cell_id`` is a human-readable deterministic label built from the cell's
    coordinates; ``params()`` is the canonical parameter mapping used both
    for cache keys and for JSON/CSV reporting.
    """

    configuration: str
    os_names: Tuple[str, ...]
    quorum_model: str
    recovery_interval: Optional[float]
    arrival: ArrivalSpec
    adversary: str
    runs: int
    exploit_rate: float
    horizon: float
    #: Optional adversary scenario (``None`` keeps the classic single
    #: adversary).  Appended last so legacy positional construction and the
    #: pre-scenario cache keys stay valid.
    scenario: Optional[ScenarioSpec] = None

    @property
    def cell_id(self) -> str:
        recovery = (
            f"recovery={self.recovery_interval:g}"
            if self.recovery_interval is not None
            else "no-recovery"
        )
        cell_id = (
            f"{self.configuration}|{self.quorum_model}|{recovery}"
            f"|{self.arrival.label}|{self.adversary}"
        )
        if self.scenario is not None:
            cell_id += f"|{self.scenario.label}"
        return cell_id

    @property
    def targeted(self) -> bool:
        return ADVERSARY_MODES[self.adversary][0]

    @property
    def smart(self) -> bool:
        return ADVERSARY_MODES[self.adversary][1]

    def campaign_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for ``CompromiseSimulation.run_range``."""
        return dict(
            exploit_rate=self.exploit_rate,
            horizon=self.horizon,
            quorum_model=self.quorum_model,
            targeted=self.targeted,
            recovery_interval=self.recovery_interval,
            arrival=self.arrival.process,
            shape=self.arrival.shape,
            smart=self.smart,
            scenario=self.scenario,
        )

    def params(self) -> Dict[str, object]:
        """Canonical JSON-serialisable parameter mapping for the cell.

        The ``"scenario"`` key is present only when a scenario is set, so
        classic cells keep their exact pre-scenario mapping -- and therefore
        their exact :func:`repro.runner.cache.cell_key` digests: a warmed
        cache stays warm across this upgrade.
        """
        params: Dict[str, object] = {
            "configuration": self.configuration,
            "os_names": list(self.os_names),
            "quorum_model": self.quorum_model,
            "recovery_interval": self.recovery_interval,
            "arrival": self.arrival.process,
            "shape": self.arrival.shape,
            "adversary": self.adversary,
            "runs": self.runs,
            "exploit_rate": self.exploit_rate,
            "horizon": self.horizon,
        }
        if self.scenario is not None:
            params["scenario"] = self.scenario.params()
        return params


@dataclass(frozen=True)
class ExperimentGrid:
    """A declarative sweep: campaign scalars plus the axes to cross.

    ``configurations`` maps a display name to the OS of each replica
    (repetition models homogeneous deployments).  The remaining axes default
    to single points, so the smallest grid is one cell per configuration.
    """

    configurations: Mapping[str, Sequence[str]]
    quorum_models: Tuple[str, ...] = ("3f+1",)
    recovery_intervals: Tuple[Optional[float], ...] = (None,)
    arrivals: Tuple[ArrivalSpec, ...] = (ArrivalSpec(),)
    adversaries: Tuple[str, ...] = ("standard",)
    #: Adversary scenario axis; ``None`` entries are classic campaigns.
    scenarios: Tuple[Optional[ScenarioSpec], ...] = (None,)
    runs: int = 200
    exploit_rate: float = 1.0
    horizon: float = 5.0
    #: Normalised (name, os_names) pairs, fixed at construction time.
    _configuration_items: Tuple[Tuple[str, Tuple[str, ...]], ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        items = tuple(
            (name, tuple(os_names)) for name, os_names in self.configurations.items()
        )
        if not items:
            raise SimulationError("a grid needs at least one replica configuration")
        for name, os_names in items:
            if not os_names:
                raise SimulationError(f"configuration {name!r} has no replicas")
        if self.runs <= 0:
            raise SimulationError("the number of runs must be positive")
        if self.exploit_rate <= 0:
            raise SimulationError("the exploit arrival rate must be positive")
        if self.horizon <= 0:
            raise SimulationError("the campaign horizon must be positive")
        for axis_name, axis in (
            ("quorum_models", self.quorum_models),
            ("recovery_intervals", self.recovery_intervals),
            ("arrivals", self.arrivals),
            ("adversaries", self.adversaries),
            ("scenarios", self.scenarios),
        ):
            if not axis:
                raise SimulationError(f"grid axis {axis_name!r} is empty")
            if len(set(axis)) != len(axis):
                raise SimulationError(f"grid axis {axis_name!r} has duplicates")
        for model in self.quorum_models:
            if model not in ("3f+1", "2f+1"):
                raise SimulationError(f"unknown quorum model {model!r}")
        for interval in self.recovery_intervals:
            if interval is not None and interval <= 0:
                raise SimulationError("recovery intervals must be positive or None")
        for adversary in self.adversaries:
            if adversary not in ADVERSARY_MODES:
                raise SimulationError(
                    f"unknown adversary mode {adversary!r}; "
                    f"expected one of {tuple(ADVERSARY_MODES)}"
                )
        for scenario in self.scenarios:
            if scenario is not None and not isinstance(scenario, ScenarioSpec):
                raise SimulationError(
                    "scenario axis entries must be ScenarioSpec or None, "
                    f"got {scenario!r}"
                )
        object.__setattr__(self, "_configuration_items", items)

    def __len__(self) -> int:
        """Number of cells the grid expands to."""
        return (
            len(self._configuration_items)
            * len(self.quorum_models)
            * len(self.recovery_intervals)
            * len(self.arrivals)
            * len(self.adversaries)
            * len(self.scenarios)
        )

    def expand(self) -> List[GridCell]:
        """Expand into cells, in deterministic axis order."""
        cells: List[GridCell] = []
        for name, os_names in self._configuration_items:
            for quorum_model in self.quorum_models:
                for interval in self.recovery_intervals:
                    for arrival in self.arrivals:
                        for adversary in self.adversaries:
                            for scenario in self.scenarios:
                                cells.append(
                                    GridCell(
                                        configuration=name,
                                        os_names=os_names,
                                        quorum_model=quorum_model,
                                        recovery_interval=interval,
                                        arrival=arrival,
                                        adversary=adversary,
                                        runs=self.runs,
                                        exploit_rate=self.exploit_rate,
                                        horizon=self.horizon,
                                        scenario=scenario,
                                    )
                                )
        return cells
