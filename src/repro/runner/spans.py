"""Contiguous half-open spans and the shared merge-ordering discipline.

Two subsystems partition an ordered space into half-open ``[start, stop)``
ranges, farm the ranges out to workers, and merge the partial results back
deterministically:

* the PR-3 grid runner splits a cell's Monte-Carlo **runs** into run
  ranges (:func:`repro.itsys.simulation.merge_run_ranges`);
* the serving layer's scatter-gather splits the **C(n, k) combination
  space** of pair/k-set matrix queries into shard spans
  (:mod:`repro.service.sharding`).

Both owe the same guarantee -- ``workers=1`` and ``workers=N`` produce
bit-for-bit identical merged results, independent of worker completion
order -- and both earn it the same way: partials are sorted by span start
before merging, and gaps, overlaps and duplicated spans are an error
rather than silent corruption.  This module is that shared discipline.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def partition_spans(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``[0, total)`` into ``parts`` contiguous half-open spans.

    Spans are as even as possible (sizes differ by at most one, larger
    spans first), cover the space exactly, and are a pure function of the
    inputs -- every worker derives the identical partition locally.  When
    ``total`` is smaller than ``parts``, the surplus spans are empty.
    """
    if total < 0:
        raise ValueError(f"cannot partition a negative space ({total})")
    if parts < 1:
        raise ValueError(f"need at least one part, got {parts}")
    base, remainder = divmod(total, parts)
    spans: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        width = base + (1 if index < remainder else 0)
        spans.append((start, start + width))
        start += width
    return spans


def order_contiguous(
    partials: Sequence[T],
    span_of: Callable[[T], Tuple[int, int]],
) -> List[T]:
    """Sort partials by span start and verify they tile one contiguous range.

    This is the merge-ordering discipline: sorting first makes the merge
    independent of worker completion order, and the walk then demands that
    each span begins exactly where the previous one stopped.  Empty spans
    (``start == stop``) are permitted and simply contribute nothing.
    Returns the ordered partials; raises :class:`ValueError` (message
    containing ``"not contiguous"``) on gaps, overlaps or duplicates, and
    on an empty partial list.
    """
    if not partials:
        raise ValueError("cannot merge an empty list of spans")
    ordered = sorted(partials, key=lambda partial: span_of(partial)[0])
    expected = span_of(ordered[0])[0]
    for partial in ordered:
        start, stop = span_of(partial)
        if stop < start:
            raise ValueError(f"invalid span [{start}, {stop})")
        if start != expected and start != stop:
            raise ValueError(
                f"spans are not contiguous: expected a span starting at "
                f"{expected}, got [{start}, {stop})"
            )
        expected = max(expected, stop)
    return ordered
